"""Domain example: generate the C translation of a MATLAB program.

Emits the paper's Figure-1-style C (fixed stack buffers for static
groups, resizable heap buffers for symbolic ones, scalar/array
dispatch for elementwise operators), writes it next to this script,
and — when a C compiler is on PATH — compiles and runs it, checking
the output against the mat2c VM.

Run:  python examples/emit_c.py
"""

from pathlib import Path

from repro.backend.cc import compile_and_run, find_compiler
from repro.compiler.pipeline import compile_source
from repro.runtime.builtins import RuntimeContext

SOURCE = """
% Gaussian blur of a ramp, accumulated in place.
n = 24;
img = zeros(n, n);
for i = 1:n
  for j = 1:n
    img(i, j) = i + 2 * j;
  end
end
acc = zeros(n, n);
for t = 1:4
  acc = acc + img;
end
disp(sum(sum(acc)));
disp(acc(3, 5));
"""


def main() -> None:
    result = compile_source(SOURCE)
    c_source = result.generate_c()

    out_path = Path(__file__).parent / "emitted_program.c"
    out_path.write_text(c_source)
    print(f"wrote {out_path} ({len(c_source.splitlines())} lines of C)")

    stack_buffers = [
        line.strip()
        for line in c_source.splitlines()
        if "static double g" in line and "_buf[" in line
    ]
    print("\nstack group buffers (one per coalesced group):")
    for line in stack_buffers:
        print(f"  {line}")

    vm = result.run_mat2c(RuntimeContext())
    print(f"\nVM output:\n{vm.output}")

    if find_compiler() is None:
        print("no C compiler on PATH; skipping native run")
        return
    native = compile_and_run(c_source)
    print(f"native output:\n{native.stdout}")
    status = "MATCH" if native.stdout == vm.output else "MISMATCH"
    print(f"native vs VM: {status}")


if __name__ == "__main__":
    main()
