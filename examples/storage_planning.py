"""Walk through the paper's two worked examples programmatically.

Example 1 (§3.2.2): an elementwise chain over an array of *unknown*
shape — all four variables share one heap group and none of their
definitions needs a resize (the paper's ∘ annotation).

Example 2 (§3.2.2): an identity matrix grown through L-indexing — the
grown array shares the original's storage, marked grow-only (+).

Run:  python examples/storage_planning.py
"""

from repro.compiler.pipeline import compile_program
from repro.core.allocation import GROW_ONLY, MAY_RESIZE, NO_RESIZE

MARK_SYMBOL = {NO_RESIZE: "∘", GROW_ONLY: "+", MAY_RESIZE: "±"}

EXAMPLE1 = {
    "main.m": """
t0 = mystery();
t1 = t0 - 1.345;
t2 = 2.788 * t1;
t3 = tan(t2);
disp(t3);
""",
    "mystery.m": """
function y = mystery()
n = floor(rand(1) * 5) + 1;
y = rand(n, n) * 4i;
""",
}

EXAMPLE2 = {
    "main.m": """
x = mystery();
y = mystery();
a = eye(x, y);
a(1, 2) = 1;
disp(a);
""",
    "mystery.m": """
function v = mystery()
v = floor(rand(1) * 9) + 2;
""",
}


def describe(title: str, sources: dict) -> None:
    print(f"=== {title} ===")
    result = compile_program(sources)
    plan = result.plan
    for group in plan.groups:
        if len(group.members) < 2:
            continue
        kind = group.storage.value
        print(
            f"  group {group.gid} ({kind}, {group.intrinsic.name}): "
            f"{len(group.members)} variables share one buffer"
        )
        for member in group.members:
            mark = plan.resize_marks.get(member)
            symbol = MARK_SYMBOL.get(mark, " ") if mark else " "
            vartype = result.env.of(member)
            print(f"     {symbol} {member:16s} {vartype}")
    print()


def main() -> None:
    describe("Paper Example 1: nonresized symbolic chain", EXAMPLE1)
    describe("Paper Example 2: expandable array", EXAMPLE2)
    print(
        "∘ = defined array never resized; + = grown if resized;\n"
        "± = may need an arbitrary resize (paper §3.2.2 superscripts)"
    )


if __name__ == "__main__":
    main()
