"""Quickstart: compile a MATLAB program and inspect what GCTD did.

Run:  python examples/quickstart.py
"""

from repro import compile_source
from repro.runtime.builtins import RuntimeContext

SOURCE = """
% An elementwise chain over a 100x100 array: every temporary below has
% the same shape and type, so GCTD coalesces the whole cascade into a
% couple of stack buffers.
a = rand(100);
b = a + 1.5;
c = b .* b;
d = sqrt(c);
e = d - a;
disp(sum(sum(e)));
"""


def main() -> None:
    result = compile_source(SOURCE)

    stats = result.report
    print("=== GCTD storage coalescing ===")
    print(f"variables on entry to GCTD : {stats.original_variable_count}")
    print(
        "subsumed (static/dynamic)  : "
        f"{stats.static_subsumed}/{stats.dynamic_subsumed}"
    )
    print(f"storage reduction          : {stats.storage_reduction_kb:.1f} KB")
    print(f"colors used                : {stats.color_count}")
    print(f"storage groups             : {stats.group_count}")
    print(f"stack frame                : {result.plan.stack_frame_bytes()} B")

    print("\n=== storage groups ===")
    for group in result.plan.groups:
        size = (
            f"{group.static_size} B"
            if group.static_size is not None
            else "symbolic"
        )
        members = ", ".join(group.members[:4])
        more = "…" if len(group.members) > 4 else ""
        print(
            f"  group {group.gid:2d} [{group.storage.value:5s}] "
            f"{group.intrinsic.name:7s} {size:>9s}  {{{members}{more}}}"
        )

    print("\n=== execution under the three models ===")
    mat2c = result.run_mat2c(RuntimeContext(seed=1))
    mcc = result.run_mcc(RuntimeContext(seed=1))
    interp = result.run_interpreter(RuntimeContext(seed=1))
    assert mat2c.output == mcc.output == interp.output
    print(f"program output    : {mat2c.output.strip()}")
    print(f"mat2c  (GCTD)     : {mat2c.report.execution_seconds * 1e6:8.1f} µs"
          f"  dyn {mat2c.report.avg_dynamic_kb:6.1f} KB")
    print(f"mcc model         : {mcc.report.execution_seconds * 1e6:8.1f} µs"
          f"  dyn {mcc.report.avg_dynamic_kb:6.1f} KB")
    print(f"interpreter       : {interp.report.execution_seconds * 1e6:8.1f} µs")


if __name__ == "__main__":
    main()
