"""Domain example: the fiff wave-equation benchmark end to end.

Compiles the FALCON-style finite-difference wave solver, compares the
three execution models, and shows what disabling GCTD costs — a
single-benchmark slice of the paper's Figures 2, 5 and 6.

Run:  python examples/wave_equation.py
"""

from repro.bench.suite import compile_benchmark
from repro.compiler.pipeline import CompilerOptions
from repro.core.gctd import GCTDOptions
from repro.runtime.builtins import RuntimeContext


def main() -> None:
    print("compiling fiff (finite-difference wave equation)…")
    with_gctd = compile_benchmark("fiff")
    without = compile_benchmark(
        "fiff", options=CompilerOptions(gctd=GCTDOptions(enabled=False))
    )

    stats = with_gctd.report
    print(
        f"GCTD subsumed {stats.static_subsumed} static variables, "
        f"saving {stats.storage_reduction_kb:.1f} KB of stack storage"
    )

    runs = {
        "mat2c with GCTD": with_gctd.run_mat2c(RuntimeContext(seed=3)),
        "mat2c without GCTD": without.run_mat2c(RuntimeContext(seed=3)),
        "mcc model": with_gctd.run_mcc(RuntimeContext(seed=3)),
    }
    interp = with_gctd.run_interpreter(RuntimeContext(seed=3))

    outputs = {r.output for r in runs.values()} | {interp.output}
    assert len(outputs) == 1, "all models must agree"
    print(f"\nprogram output: {interp.output.strip()}\n")

    print(f"{'model':22s} {'time':>12s} {'avg dynamic':>12s}")
    for name, run in runs.items():
        report = run.report
        print(
            f"{name:22s} {report.execution_seconds * 1e3:9.3f} ms "
            f"{report.avg_dynamic_kb:9.1f} KB"
        )
    print(
        f"{'interpreter':22s} "
        f"{interp.report.execution_seconds * 1e3:9.3f} ms"
    )

    base = runs["mat2c with GCTD"].report.execution_seconds
    print(
        f"\nspeedup over mcc      : "
        f"{runs['mcc model'].report.execution_seconds / base:.1f}x"
    )
    print(
        f"speedup from GCTD     : "
        f"{runs['mat2c without GCTD'].report.execution_seconds / base:.1f}x"
    )


if __name__ == "__main__":
    main()
