function nb3d_drv()
% Driver for nb3d: three-dimensional N-body simulation (modified from
% nb1d; uses rank-3 history arrays).
n = setsize3(8);
steps = 8;
r = nb3d(n, steps);
fprintf('nb3d: final radius = %.6f\n', r);
