function r = nb3d(n, steps)
% 3-D leapfrog N-body, vectorized over interaction partners: positions
% are (n x 3), and the trajectory is recorded in an (n x 3 x steps)
% rank-3 history array.
dt = 0.01;
soft = 0.25;
pos = zeros(n, 3);
vel = zeros(n, 3);
m = zeros(1, n);
for k = 1:n
  pos(k, 1) = cos(k);
  pos(k, 2) = sin(k);
  pos(k, 3) = 0.1 * k;
  m(k) = 1 + 0.25 * cos(2 * k);
end
hist = zeros(n, 3, steps);
acc = zeros(n, 3);
for t = 1:steps
  for k = 1:n
    dx = pos(:, 1) - pos(k, 1);
    dy = pos(:, 2) - pos(k, 2);
    dz = pos(:, 3) - pos(k, 3);
    r2 = dx .* dx + dy .* dy + dz .* dz + soft;
    w = m' ./ (r2 .* sqrt(r2));
    w(k) = 0;
    acc(k, 1) = sum(w .* dx);
    acc(k, 2) = sum(w .* dy);
    acc(k, 3) = sum(w .* dz);
  end
  vel = vel + dt * acc;
  pos = pos + dt * vel;
  hist(:, :, t) = pos;
end
r = 0;
for k = 1:n
  rr = hist(k, 1, steps) * hist(k, 1, steps) + hist(k, 2, steps) * hist(k, 2, steps) + hist(k, 3, steps) * hist(k, 3, steps);
  if rr > r
    r = rr;
  end
end
r = sqrt(r);
