function n = setsize3(target)
% Data-dependent particle count (symbolic to the compiler).
n = 2;
crowd = 1;
while crowd > 0.1
  n = n + 2;
  crowd = 2 / n;
  if n >= target
    crowd = 0.05;
  end
end
