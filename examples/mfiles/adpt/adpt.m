function q = adpt(a, b, tol)
% Adaptive quadrature by Simpson's rule, iterative worklist form.
% Subinterval bounds live in arrays indexed by a data-dependent
% counter, so their shapes are symbolic (heap-allocated) while the
% plentiful scalar temporaries coalesce on the stack.
lo = zeros(1, 8);
hi = zeros(1, 8);
lo(1) = a;
hi(1) = b;
n = 1;
q = 0;
steps = 0;
while n > 0
  x1 = lo(n);
  x2 = hi(n);
  n = n - 1;
  xm = (x1 + x2) / 2;
  whole = simpson(x1, x2);
  left = simpson(x1, xm);
  right = simpson(xm, x2);
  err = abs(left + right - whole);
  if err < 15 * tol
    q = q + left + right;
  else
    n = n + 1;
    lo(n) = x1;
    hi(n) = xm;
    n = n + 1;
    lo(n) = xm;
    hi(n) = x2;
  end
  steps = steps + 1;
  if steps > 4000
    break
  end
end

function s = simpson(a, b)
% Simpson's rule on one subinterval.
m = (a + b) / 2;
fa = quadfun(a);
fm = quadfun(m);
fb = quadfun(b);
s = (b - a) / 6 * (fa + 4 * fm + fb);

function y = quadfun(x)
% The integrand: smooth but with enough curvature to force adaptivity.
y = x * sin(4 * x) + 1;
