function adpt_drv()
% Driver for adpt: Adaptive Quadrature by Simpson's Rule (FALCON).
% Integrates f over [a, b] to the FALCON suite's tolerance setting.
tol = 0.000001;
a = 0;
b = 2;
q = adpt(a, b, tol);
fprintf('adpt: integral = %.6f\n', q);
