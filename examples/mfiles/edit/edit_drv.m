function edit_drv()
% Driver for edit: Levenshtein edit distance (MathWorks Central File
% Exchange).  The strings are built by data-dependent repetition, so
% the DP table's extents are symbolic (heap-allocated under GCTD).
s = 'intention';
t = 'execution';
a = s;
b = t;
k = 1;
while k * length(s) < 28
  a = [a, t];
  b = [b, s];
  k = k + 1;
end
d = editdist(a, b);
fprintf('edit: distance = %d\n', d);
