function d = editdist(a, b)
% Classic dynamic program over a (m+1)x(n+1) cost table.
m = length(a);
n = length(b);
dp = zeros(m + 1, n + 1);
for i = 1:m + 1
  dp(i, 1) = i - 1;
end
for j = 1:n + 1
  dp(1, j) = j - 1;
end
for i = 2:m + 1
  for j = 2:n + 1
    cost = 1;
    if a(i - 1) == b(j - 1)
      cost = 0;
    end
    del = dp(i - 1, j) + 1;
    ins = dp(i, j - 1) + 1;
    sub = dp(i - 1, j - 1) + cost;
    best = del;
    if ins < best
      best = ins;
    end
    if sub < best
      best = sub;
    end
    dp(i, j) = best;
  end
end
d = dp(m + 1, n + 1);
