function fiff_drv()
% Driver for fiff: finite-difference solution to the wave equation
% (FALCON).  Large statically-shaped grids; the paper's version used
% ~451x451 arrays — ours are scaled to 45x45 (shape, not size, is what
% the reproduction validates).
n = 45;
steps = 3;
u = fiff(n, steps);
fprintf('fiff: energy = %.6f\n', sum(sum(u .* u)));
