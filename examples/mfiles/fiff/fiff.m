function u = fiff(n, steps)
% Leapfrog scheme for the 2-D wave equation, FALCON-style: the time
% stepping runs element by element over large statically-shaped grids.
% The u0/u1/unew rotation and the grids themselves are the "large
% coalescent arrays" that give fiff the paper's biggest static storage
% reduction — and without GCTD, the biggest slowdown.
c = 0.25;
x = 1:n;
center = (n + 1) / 2;
bump = exp(-0.01 * (x - center) .* (x - center));
u1 = bump' * bump;
u0 = u1;
unew = zeros(n, n);
for t = 1:steps
  for i = 2:n - 1
    for j = 2:n - 1
      lap = u1(i - 1, j) + u1(i + 1, j) + u1(i, j - 1) + u1(i, j + 1) - 4 * u1(i, j);
      unew(i, j) = 2 * u1(i, j) - u0(i, j) + c * lap;
    end
  end
  u0 = u1;
  u1 = unew;
end
u = u1;
