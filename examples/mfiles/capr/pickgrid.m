function n = pickgrid(base)
% Doubles the resolution until the probe integral stabilizes; the
% returned extent is data-dependent, making downstream shapes symbolic.
n = base;
prev = 0;
probe = 1;
while abs(probe - prev) > 0.01
  prev = probe;
  h = 1 / n;
  probe = h * n * (1 + 1 / n);
  n = n + 4;
  if n > 17
    break
  end
end
