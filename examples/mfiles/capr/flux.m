function q = flux(v, n)
% Total flux of the potential gradient through a loop just inside the
% outer shell (trapezoid rule along the four sides).
q = 0;
for k = 2:n - 1
  q = q + abs(v(2, k) - v(1, k));
  q = q + abs(v(n - 1, k) - v(n, k));
  q = q + abs(v(k, 2) - v(k, 1));
  q = q + abs(v(k, n - 1) - v(k, n));
end
