function capr_drv()
% Driver for capr: capacitance of a coaxial transmission line
% (Chalmers University benchmark).  The grid resolution is chosen by a
% convergence probe, so the solver sees symbolic array extents.
n = pickgrid(9);
cap = capr(n);
fprintf('capr: capacitance = %.6f pF/m\n', cap * 1000000000000);
