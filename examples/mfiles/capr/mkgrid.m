function v = mkgrid(n)
% Potential grid: outer boundary at 0V, inner conductor at 1V.
v = zeros(n, n);
a = floor(n / 3) + 1;
b = n - floor(n / 3);
for i = a:b
  for j = a:b
    v(i, j) = 1;
  end
end
