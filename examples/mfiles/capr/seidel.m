function [v, change] = seidel(v, n)
% One whole-array Jacobi relaxation sweep (the Chalmers code is
% vectorized MATLAB): average the four neighbours over the interior,
% then re-impose the conductor plateau.
a = floor(n / 3) + 1;
b = n - floor(n / 3);
up = v(1:n - 2, 2:n - 1);
down = v(3:n, 2:n - 1);
left = v(2:n - 1, 1:n - 2);
right = v(2:n - 1, 3:n);
fresh = 0.25 * (up + down + left + right);
old = v;
v(2:n - 1, 2:n - 1) = fresh;
for i = a:b
  for j = a:b
    v(i, j) = 1;
  end
end
change = max(max(abs(v - old)));
