function cap = capr(n)
% Capacitance per unit length of a square coax: outer grounded shell,
% inner conductor held at 1V.  Laplace's equation is relaxed by
% Gauss-Seidel sweeps; the charge follows from a flux integral.
v = mkgrid(n);
tol = 0.0001;
change = 1;
sweeps = 0;
while change > tol
  [v, change] = seidel(v, n);
  sweeps = sweeps + 1;
  if sweeps > 18
    break
  end
end
q = flux(v, n);
eps0 = 0.000000000008854;
cap = q * eps0;
