function clos_drv()
% Driver for clos: transitive closure of a directed graph (OTTER).
n = 24;
a = zeros(n, n);
for k = 1:n
  a(k, mod(k * 7, n) + 1) = 1;
  a(k, mod(k * 3 + 5, n) + 1) = 1;
end
b = clos(a);
fprintf('clos: reachable pairs = %d\n', sum(sum(b)));
