function b = clos(a)
% Transitive closure by repeated boolean matrix squaring: the classic
% whole-array OTTER kernel.  Every shape here is statically known, so
% GCTD stack-allocates and coalesces all the large temporaries.
b = a;
changed = 1;
while changed > 0
  c = b + b * b;
  c = min(c, 1);
  diff = sum(sum(abs(c - b)));
  if diff == 0
    changed = 0;
  end
  b = c;
end
