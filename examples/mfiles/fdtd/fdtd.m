function energy = fdtd(n, steps)
% Yee-style staggered updates on six 3-D field arrays.  Every slice
% temporary below has the same static shape, so GCTD folds the whole
% update cascade into a handful of stack buffers.
c = 0.45;
ex = zeros(n, n, n);
ey = zeros(n, n, n);
ez = zeros(n, n, n);
hx = zeros(n, n, n);
hy = zeros(n, n, n);
hz = zeros(n, n, n);
m = n - 1;
for t = 1:steps
  ez(4, 4, 4) = sin(0.3 * t);
  hx(1:m, 1:m, 1:m) = hx(1:m, 1:m, 1:m) - c * (ez(1:m, 2:n, 1:m) - ez(1:m, 1:m, 1:m)) + c * (ey(1:m, 1:m, 2:n) - ey(1:m, 1:m, 1:m));
  hy(1:m, 1:m, 1:m) = hy(1:m, 1:m, 1:m) - c * (ex(1:m, 1:m, 2:n) - ex(1:m, 1:m, 1:m)) + c * (ez(2:n, 1:m, 1:m) - ez(1:m, 1:m, 1:m));
  hz(1:m, 1:m, 1:m) = hz(1:m, 1:m, 1:m) - c * (ey(2:n, 1:m, 1:m) - ey(1:m, 1:m, 1:m)) + c * (ex(1:m, 2:n, 1:m) - ex(1:m, 1:m, 1:m));
  ex(2:n, 2:n, 2:n) = ex(2:n, 2:n, 2:n) + c * (hz(2:n, 2:n, 2:n) - hz(2:n, 1:m, 2:n)) - c * (hy(2:n, 2:n, 2:n) - hy(2:n, 2:n, 1:m));
  ey(2:n, 2:n, 2:n) = ey(2:n, 2:n, 2:n) + c * (hx(2:n, 2:n, 2:n) - hx(2:n, 2:n, 1:m)) - c * (hz(2:n, 2:n, 2:n) - hz(1:m, 2:n, 2:n));
  ez(2:n, 2:n, 2:n) = ez(2:n, 2:n, 2:n) + c * (hy(2:n, 2:n, 2:n) - hy(1:m, 2:n, 2:n)) - c * (hx(2:n, 2:n, 2:n) - hx(2:n, 1:m, 2:n));
end
ee = ex .* ex + ey .* ey + ez .* ez;
hh = hx .* hx + hy .* hy + hz .* hz;
energy = sum(sum(sum(ee + hh)));
