function fdtd_drv()
% Driver for fdtd: Finite Difference Time Domain electromagnetic
% solver (Chalmers University benchmark).  Three-dimensional field
% arrays with compile-time extents.
n = 6;
steps = 12;
energy = fdtd(n, steps);
fprintf('fdtd: field energy = %.6f\n', energy);
