function inten = young(lambda, slitsep, screen)
% Interference of phasors from two slits evaluated across the screen.
% The phasor arrays are COMPLEX; the elementwise chain of amplitude
% computations coalesces into a single heap group under GCTD.  The
% screen resolution is refined until the pattern is smooth enough, so
% the sample arrays have symbolic extents (the paper's d = 1 profile).
h = 0.064;
smooth = 0;
while smooth == 0
  h = h / 2;
  if 2 * pi * slitsep * h / (lambda * screen) < 0.26
    smooth = 1;
  end
end
x = -2:h:2;
phase1 = 2 * pi * slitsep * x / (lambda * screen);
phase2 = phase1 / 2;
amp = exp(i * phase1) + exp(i * phase2);
wave = amp .* exp(i * 2 * pi * x / lambda);
inten = abs(wave) .^ 2;
