function diff_drv()
% Driver for diff: Young's two-slit diffraction experiment
% (The MathWorks Central File Exchange).
lambda = 0.0005;
slitsep = 0.1;
screen = 100;
inten = young(lambda, slitsep, screen);
fprintf('diff: peak intensity = %.4f\n', max(inten));
fprintf('diff: mean intensity = %.4f\n', sum(inten) / numel(inten));
