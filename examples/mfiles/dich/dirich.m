function u = dirich(n, iters)
% Jacobi relaxation with Dirichlet boundary values, element by element
% — the access pattern that makes library-call compilation (mcc) pay a
% run-time check per element while compiled C touches one double.
u = zeros(n, n);
for k = 1:n
  u(1, k) = 100;
  u(n, k) = 0;
  u(k, 1) = 75;
  u(k, n) = 50;
end
w = zeros(n, n);
for it = 1:iters
  for i = 2:n - 1
    for j = 2:n - 1
      w(i, j) = 0.25 * (u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1));
    end
  end
  for i = 2:n - 1
    for j = 2:n - 1
      u(i, j) = w(i, j);
    end
  end
end
