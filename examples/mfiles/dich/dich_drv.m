function dich_drv()
% Driver for dich: Dirichlet solution to Laplace's equation (FALCON).
n = 13;
iters = 16;
u = dirich(n, iters);
mid = floor(n / 2) + 1;
fprintf('dich: center potential = %.6f\n', u(mid, mid));
