function nb1d_drv()
% Driver for nb1d: one-dimensional gravitational N-body simulation
% (OTTER).  The particle count is chosen by a data-dependent probe, so
% the state vectors have symbolic extents.
n = setsize(12);
steps = 10;
[x, v] = nb1d(n, steps);
fprintf('nb1d: momentum = %.6f\n', sum(v));
fprintf('nb1d: spread = %.6f\n', max(x) - min(x));
