function [x, v] = nb1d(n, steps)
% Leapfrog integration of n gravitating particles on a line.
dt = 0.01;
soft = 0.1;
x = zeros(1, n);
v = zeros(1, n);
m = zeros(1, n);
for k = 1:n
  x(k) = k + 0.3 * sin(k);
  v(k) = 0.1 * cos(k);
  m(k) = 1 + 0.5 * sin(3 * k);
end
f = zeros(1, n);
for t = 1:steps
  for k = 1:n
    f(k) = 0;
  end
  for k = 1:n
    for l = 1:n
      if l ~= k
        dx = x(l) - x(k);
        r2 = dx * dx + soft;
        f(k) = f(k) + m(k) * m(l) * dx / (r2 * sqrt(r2));
      end
    end
  end
  for k = 1:n
    v(k) = v(k) + dt * f(k) / m(k);
    x(k) = x(k) + dt * v(k);
  end
end
