function n = setsize(target)
% Grows the particle count until a packing criterion is met; the
% result is opaque to the compiler, keeping downstream shapes symbolic.
n = 4;
density = 1;
while density > 0.05
  n = n + 4;
  density = 1 / n;
  if n >= target
    density = 0.01;
  end
end
