function u = crnich(len, tend, nx, nt)
% Crank-Nicholson scheme: one tridiagonal solve per time step.
h = len / (nx - 1);
k = tend / (nt - 1);
r = k / (h * h);
u = zeros(nx, nt);
for i = 2:nx - 1
  x = h * (i - 1);
  u(i, 1) = sin(pi * x) + sin(3 * pi * x);
end
d = zeros(1, nx);
c = zeros(1, nx);
for j = 2:nt
  for i = 2:nx - 1
    d(i) = r * u(i - 1, j - 1) + (2 - 2 * r) * u(i, j - 1) + r * u(i + 1, j - 1);
  end
  [c, d] = tridia(2 + 2 * r, -r, nx, c, d);
  for i = 2:nx - 1
    u(i, j) = d(i);
  end
end
