function [c, d] = tridia(diag, off, n, c, d)
% Thomas algorithm for the constant-coefficient tridiagonal system.
c(2) = off / diag;
d(2) = d(2) / diag;
for i = 3:n - 1
  m = diag - off * c(i - 1);
  c(i) = off / m;
  d(i) = (d(i) - off * d(i - 1)) / m;
end
for i = n - 2:-1:2
  d(i) = d(i) - c(i) * d(i + 1);
end
