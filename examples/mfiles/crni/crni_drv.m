function crni_drv()
% Driver for crni: Crank-Nicholson solution of the heat equation
% (FALCON).  Grid extents are compile-time constants.
nx = 19;
nt = 24;
u = crnich(1.0, 0.5, nx, nt);
total = 0;
for k = 1:nx
  total = total + u(k, nt);
end
fprintf('crni: final column mass = %.6f\n', total);
