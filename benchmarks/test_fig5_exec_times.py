"""Figure 5 — Comparative Execution Times (mcc vs mat2c vs interpreter).

Validated shapes from the paper:

* mat2c beats mcc on **every** benchmark (the paper's worst case,
  adpt, is still a 10% win);
* the element-loop FALCON solvers (crni, dich, fiff) are the
  order-of-magnitude club — library-call compilation pays a run-time
  check per *element* there;
* the whole-array codes (clos, fdtd, diff) live in the small-speedup
  band — per-element work amortizes the library overhead;
* the interpreter never beats mat2c.
"""

import pytest

from repro.bench.experiments import collect, fig5_rows, format_rows
from repro.bench.suite import BENCHMARK_NAMES

ORDER_OF_MAGNITUDE_CLUB = ("crni", "dich", "fiff")
SMALL_SPEEDUP_BAND = ("clos", "fdtd", "diff", "adpt")


@pytest.fixture(scope="module")
def rows():
    return fig5_rows()


def test_fig5_regeneration(rows, capsys):
    with capsys.disabled():
        print()
        print(format_rows("Figure 5: Comparative Execution Times", rows))


def test_mat2c_beats_mcc_everywhere(rows):
    for row in rows:
        assert row["speedup over mcc"] >= 1.0, row["benchmark"]


def test_order_of_magnitude_club(rows):
    # paper: "in 4 out of 11 benchmarks, the speedups were dramatic,
    # being over an order of magnitude"
    by_name = {r["benchmark"]: r["speedup over mcc"] for r in rows}
    for name in ORDER_OF_MAGNITUDE_CLUB:
        assert by_name[name] >= 10.0, f"{name}: {by_name[name]}"
    dramatic = sum(1 for s in by_name.values() if s >= 10.0)
    assert dramatic >= 4


def test_whole_array_benchmarks_modest(rows):
    by_name = {r["benchmark"]: r["speedup over mcc"] for r in rows}
    for name in SMALL_SPEEDUP_BAND:
        assert by_name[name] < 10.0, f"{name}: {by_name[name]}"


def test_element_loops_beat_whole_array_speedups(rows):
    by_name = {r["benchmark"]: r["speedup over mcc"] for r in rows}
    worst_loop = min(by_name[n] for n in ORDER_OF_MAGNITUDE_CLUB)
    best_array = max(by_name[n] for n in SMALL_SPEEDUP_BAND)
    assert worst_loop > best_array


def test_interpreter_never_beats_mat2c(records):
    for name, record in records.items():
        assert (
            record.interp.report.execution_seconds
            > record.mat2c.report.execution_seconds
        ), name


def test_fig5_measurement_benchmark(benchmark):
    from repro.bench.suite import compile_benchmark
    from repro.runtime.builtins import RuntimeContext

    compilation = compile_benchmark("adpt")
    benchmark.pedantic(
        lambda: compilation.run_interpreter(RuntimeContext(seed=1)),
        rounds=3,
        iterations=1,
    )
