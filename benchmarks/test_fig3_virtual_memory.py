"""Figure 3 — Average Virtual Memory Levels.

mat2c inlines operations into a larger binary image; mcc links a small
binary against the mapped MATLAB math library.  The mapped library
dominates, so mcc's virtual-memory level exceeds mat2c's on every
benchmark — the paper reports savings of 51–139% in 6 of 11 programs
and 0.7–47% in the rest; we validate the same who-wins shape and that
the bulk of the savings fall in the paper's band.
"""

import pytest

from repro.bench.experiments import fig3_rows, format_rows


@pytest.fixture(scope="module")
def rows():
    return fig3_rows()


def test_fig3_regeneration(rows, capsys):
    with capsys.disabled():
        print()
        print(format_rows("Figure 3: Average Virtual Memory Levels", rows))


def test_mat2c_virtual_memory_always_lower(rows):
    for row in rows:
        assert row["mat2c VM (KB)"] < row["mcc VM (KB)"]


def test_savings_band(rows):
    # paper: between 51% and 139% in 6 of 11; the rest 0.7–47%
    savings = [r["VM saving %"] for r in rows]
    assert sum(1 for s in savings if s >= 50.0) >= 6
    assert all(s > 0.0 for s in savings)


def test_vm_includes_binary_image(rows):
    # both levels must sit above the dynamic data alone: the image and
    # mapped segments are counted (paper §4.5.3)
    for row in rows:
        assert row["mat2c VM (KB)"] > 300.0
        assert row["mcc VM (KB)"] > 700.0


def test_fig3_measurement_benchmark(benchmark):
    from repro.bench.suite import compile_benchmark
    from repro.runtime.builtins import RuntimeContext

    compilation = compile_benchmark("diff")
    benchmark.pedantic(
        lambda: compilation.run_mcc(RuntimeContext(seed=1)),
        rounds=3,
        iterations=1,
    )
