"""Figure 1 — the generated C for an in-place array addition.

The paper's Figure 1 shows the capr IR assignment
``_811s_4 = _811s_4 + _804s_4`` compiled to a three-way run-time
dispatch (first operand scalar / second operand scalar / equal shapes)
that computes the sum *in place* in the coalesced buffer.  We
regenerate the same pattern from an equivalent program and, when a C
compiler is available, compile and run it against the VM.
"""

import pytest

from repro.backend.cc import compile_and_run, find_compiler
from repro.backend.cgen import generate_c
from repro.compiler.pipeline import compile_source
from repro.runtime.builtins import RuntimeContext

#: capr-style accumulation: a grows by b elementwise, shapes unknown
#: until run time (the while loop hides the extents from inference)
FIGURE1_PROGRAM = """
v = [2, 3, 4];
k = 1;
while v(k) < 3
  k = k + 1;
end
a = zeros(k, k + 1);
b = ones(k, k + 1);
for t = 1:3
  a = a + b;
end
disp(sum(sum(a)));
"""


@pytest.fixture(scope="module")
def c_source():
    return generate_c(compile_source(FIGURE1_PROGRAM))


def test_figure1_dispatch_pattern(c_source, capsys):
    # the three branches of Figure 1
    assert "== 1 &&" in c_source, "scalar-operand run-time tests"
    assert c_source.count("for (i0 = 0; i0 < n0; i0++)") >= 3
    with capsys.disabled():
        print("\n/* Figure 1 reproduction: elementwise add dispatch */")
        for line in c_source.splitlines():
            if "== 1 &&" in line or "+ " in line and "i0" in line:
                print(line)


def test_figure1_in_place_accumulation(c_source):
    # `a = a + b` must reuse a's buffer: the add writes to the same
    # group buffer it reads (in-place, §2.3.1)
    result = compile_source(FIGURE1_PROGRAM)
    adds = [
        i
        for i in result.exec_func.instructions()
        if i.op == "add" and not i.results[0].endswith("$")
    ]
    in_place = [
        i
        for i in adds
        if any(
            result.plan.same_storage(i.results[0], a.name)
            for a in i.args
            if hasattr(a, "name")
        )
    ]
    assert in_place, "the a = a + b accumulation must be in place"


@pytest.mark.skipif(find_compiler() is None, reason="no C compiler")
def test_figure1_compiles_and_matches_vm(c_source):
    run = compile_and_run(c_source)
    assert run.returncode == 0
    vm = compile_source(FIGURE1_PROGRAM).run_mat2c(RuntimeContext())
    assert run.stdout == vm.output


def test_fig1_codegen_benchmark(benchmark):
    benchmark(
        lambda: generate_c(compile_source(FIGURE1_PROGRAM))
    )
