"""Shared fixtures for the table/figure regeneration harness.

The collection pass (11 benchmarks × 4 runs) is cached per process via
:func:`repro.bench.experiments.collect`, so the per-figure files share
one measurement sweep.
"""

import pytest

from repro.bench.experiments import collect_all


@pytest.fixture(scope="session")
def records():
    return collect_all()
