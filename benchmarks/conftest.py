"""Shared fixtures for the table/figure regeneration harness.

The collection pass (11 benchmarks × 4 runs) goes through the service
layer's parallel batch driver (:func:`repro.bench.experiments.
collect_all` fans the sweep over a process pool and degrades to serial
if the pool cannot start).  Results are memoized per process, so the
per-figure files share one measurement sweep either way.
"""

import pytest

from repro.bench.experiments import collect_all


@pytest.fixture(scope="session")
def records():
    return collect_all()
