"""Table 2 — Array Storage Coalescing Reductions.

Checks the paper's qualitative claims: the `d = 0` pattern for the
fully-inferred benchmarks, nonzero dynamic subsumption for the
symbolic ones, and fiff owning the largest static reduction.
"""

import pytest

from repro.bench.experiments import format_rows, table2_rows
from repro.bench.suite import BENCHMARK_NAMES, SUITE, compile_benchmark

PAPER_STATIC = ("clos", "crni", "dich", "fdtd", "fiff")


@pytest.fixture(scope="module")
def rows():
    return table2_rows()


def test_table2_regeneration(rows, capsys):
    assert len(rows) == 11
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Table 2: Array Storage Coalescing Reductions", rows
            )
        )


def test_static_benchmarks_have_d_zero(rows):
    for row in rows:
        if row["benchmark"] in PAPER_STATIC:
            assert row["static/dynamic reduction"].endswith("/0")


def test_dynamic_benchmarks_have_d_positive(rows):
    for row in rows:
        if row["benchmark"] in ("adpt", "capr", "edit", "nb1d", "nb3d"):
            d = int(row["static/dynamic reduction"].split("/")[1])
            assert d > 0


def test_fiff_owns_largest_static_reduction(rows):
    by_name = {r["benchmark"]: r["storage reduction (KB)"] for r in rows}
    assert max(by_name, key=by_name.get) == "fiff"


def test_reductions_are_substantial_for_array_benchmarks(rows):
    # the paper's static-heavy rows reduce whole megabytes; our scaled
    # grids reduce tens of KB — but always far beyond the scalar rows
    by_name = {r["benchmark"]: r["storage reduction (KB)"] for r in rows}
    for name in PAPER_STATIC:
        assert by_name[name] > 10.0
    for name in ("adpt", "nb1d", "nb3d"):
        assert by_name[name] < 5.0


def test_subsumed_below_variable_count(rows):
    for row in rows:
        s, d = map(int, row["static/dynamic reduction"].split("/"))
        assert s + d < row["original variable count"]


def test_gctd_statistics_benchmark(benchmark):
    """Time GCTD alone (graph + coloring + decomposition) on fdtd."""
    from repro.core.gctd import run_gctd

    result = compile_benchmark("fdtd")
    benchmark(run_gctd, result.ssa_func, result.env)
