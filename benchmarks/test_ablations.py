"""Ablations of GCTD's design choices (DESIGN.md §5 commitments).

Each ablation switches off one ingredient of the paper's algorithm and
checks (a) outputs never change — all the machinery is a pure storage
optimization — and (b) the measurable effect moves in the direction
the paper's design rationale predicts.
"""

import pytest

from repro.bench.suite import compile_benchmark
from repro.compiler.pipeline import CompilerOptions
from repro.core.gctd import GCTDOptions
from repro.core.opsem import OpsemConfig
from repro.runtime.builtins import RuntimeContext


def options(**gctd_kwargs):
    return CompilerOptions(gctd=GCTDOptions(**gctd_kwargs))


def outputs_equal(name, opts):
    base = compile_benchmark(name)
    variant = compile_benchmark(name, options=opts)
    a = base.run_mat2c(RuntimeContext(seed=2))
    b = variant.run_mat2c(RuntimeContext(seed=2))
    assert a.output == b.output, f"{name}: ablation changed output"
    return base, variant, a, b


class TestPhiCoalescingAblation:
    """§2.2.1: φ coalescing makes inversion copies identities."""

    @pytest.mark.parametrize("name", ["fiff", "crni", "capr", "edit"])
    def test_disabling_never_helps(self, name):
        base, variant, run_a, run_b = outputs_equal(
            name, options(phi_coalescing=False)
        )
        assert (
            variant.identity_copies_folded
            <= base.identity_copies_folded
        )
        assert (
            run_b.report.execution_seconds
            >= run_a.report.execution_seconds * 0.999
        )

    def test_disabling_reintroduces_copies_on_crni(self):
        # Phase 2 can often reconstruct the sharing within a color
        # class (same static size and type ⇒ same group), but not for
        # every φ web — crni demonstrably loses identity copies
        base, variant, *_ = outputs_equal(
            "crni", options(phi_coalescing=False)
        )
        assert (
            variant.identity_copies_folded
            < base.identity_copies_folded
        )


class TestOpsemTypeAblation:
    """§2.3: inferred types resolve operator-semantics conflicts."""

    def test_without_types_more_interference(self):
        base = compile_benchmark("fiff")
        conservative = compile_benchmark(
            "fiff",
            options=CompilerOptions(
                gctd=GCTDOptions(
                    opsem=OpsemConfig(use_type_info=False)
                )
            ),
        )
        assert (
            conservative.gctd.interference_stats.opsem_edges
            > base.gctd.interference_stats.opsem_edges
        )

    def test_without_types_less_coalescing(self):
        base = compile_benchmark("nb3d")
        conservative = compile_benchmark(
            "nb3d",
            options=CompilerOptions(
                gctd=GCTDOptions(opsem=OpsemConfig(use_type_info=False))
            ),
        )
        base_total = (
            base.report.static_subsumed + base.report.dynamic_subsumed
        )
        cons_total = (
            conservative.report.static_subsumed
            + conservative.report.dynamic_subsumed
        )
        assert cons_total <= base_total


class TestPhase2SymbolicAblation:
    """Relation 1's second criterion: symbolic sizes chained via
    availability.  Without it, no dynamically-allocated variable can be
    subsumed (the paper's key novelty over Fabri)."""

    @pytest.mark.parametrize("name", ["diff", "capr", "nb1d"])
    def test_without_symbolic_criterion_no_dynamic_chains(self, name):
        # φ-web sharing (Phase 1) survives; what must vanish is the
        # ⪯-chaining of dynamically-allocated units
        base, variant, *_ = outputs_equal(
            name, options(phase2_symbolic=False)
        )
        assert base.report.dynamic_chain_subsumed > 0
        assert variant.report.dynamic_chain_subsumed == 0

    def test_without_symbolic_more_heap_groups(self):
        base = compile_benchmark("nb1d")
        variant = compile_benchmark(
            "nb1d", options=options(phase2_symbolic=False)
        )
        from repro.core.allocation import StorageClass

        def heap_count(result):
            return sum(
                1
                for g in result.plan.groups
                if g.storage is StorageClass.HEAP
            )

        assert heap_count(variant) >= heap_count(base)


class TestCleanupAblations:
    """The pre-GCTD copy-propagation+DCE pass replaces Chaitin-style
    iterated coalescing (§2.2); constant folding feeds shape inference."""

    def test_without_constfold_more_variables(self):
        # range inference still proves `n = 13` exact, so shapes stay
        # static (the analyses overlap by design) — but the IR carries
        # many more constant-holding variables into GCTD
        base = compile_benchmark("dich")
        variant = compile_benchmark(
            "dich",
            options=CompilerOptions(enable_constfold=False),
        )
        run_a = base.run_mat2c(RuntimeContext(seed=2))
        run_b = variant.run_mat2c(RuntimeContext(seed=2))
        assert run_a.output == run_b.output
        assert (
            variant.report.original_variable_count
            > base.report.original_variable_count
        )

    def test_without_cse_more_variables(self):
        base = compile_benchmark("fdtd")
        variant = compile_benchmark(
            "fdtd", options=CompilerOptions(enable_cse=False)
        )
        run_a = base.run_mat2c(RuntimeContext(seed=2))
        run_b = variant.run_mat2c(RuntimeContext(seed=2))
        assert run_a.output == run_b.output
        assert (
            variant.report.original_variable_count
            >= base.report.original_variable_count
        )


def test_ablation_sweep_benchmark(benchmark):
    """Time a full ablation compile (φ coalescing off) on crni."""
    benchmark.pedantic(
        lambda: compile_benchmark(
            "crni", options=options(phi_coalescing=False)
        ),
        rounds=3,
        iterations=1,
    )
