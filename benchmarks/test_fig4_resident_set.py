"""Figure 4 — Average Resident Set Levels.

RSS counts only touched pages: the text actually executed, the stack
pages reached, and the heap pages written.  mcc's library mapping is
partially cold, so its RSS advantage over its own VM level is larger —
but mat2c still wins on every benchmark, as in the paper.
"""

import pytest

from repro.bench.experiments import fig3_rows, fig4_rows, format_rows


@pytest.fixture(scope="module")
def rows():
    return fig4_rows()


def test_fig4_regeneration(rows, capsys):
    with capsys.disabled():
        print()
        print(format_rows("Figure 4: Average Resident Set Levels", rows))


def test_mat2c_resident_set_always_lower(rows):
    for row in rows:
        assert row["mat2c RSS (KB)"] < row["mcc RSS (KB)"]


def test_rss_below_virtual_memory(rows):
    vm = {r["benchmark"]: r for r in fig3_rows()}
    for row in rows:
        assert row["mcc RSS (KB)"] < vm[row["benchmark"]]["mcc VM (KB)"]
        assert (
            row["mat2c RSS (KB)"] <= vm[row["benchmark"]]["mat2c VM (KB)"]
        )


def test_savings_positive_everywhere(rows):
    # the paper's Figure 4 labels: 5.5% (capr) up to 279.6% (dich)
    for row in rows:
        assert row["RSS saving %"] > 0.0


def test_fig4_measurement_benchmark(benchmark):
    from repro.memsim.heap import HeapModel

    def touch_pages():
        heap = HeapModel()
        addrs = [heap.malloc(4096) for _ in range(64)]
        for addr in addrs:
            heap.free(addr)
        return heap.resident_bytes

    benchmark(touch_pages)
