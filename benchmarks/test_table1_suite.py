"""Table 1 — Benchmark Suite Description.

Regenerates the paper's Table 1 from the shipped M-files and checks
its structural properties.  The pytest-benchmark target times the full
compilation pipeline on a representative benchmark.
"""

from repro.bench.experiments import format_rows, table1_rows
from repro.bench.suite import BENCHMARK_NAMES, SUITE, compile_benchmark


def test_table1_regeneration(capsys):
    rows = table1_rows()
    assert len(rows) == 11
    for row in rows:
        assert row["m_files"] >= 2, "driver + main function, as the paper"
        assert row["lines"] > 15
    three_d = {r["benchmark"] for r in rows if r["3d"] == "yes"}
    assert three_d == {"fdtd", "nb3d"}
    with capsys.disabled():
        print()
        print(format_rows("Table 1: Benchmark Suite Description", rows))


def test_origins_match_paper():
    falcon = {n for n, i in SUITE.items() if i.origin == "FALCON"}
    assert falcon == {"adpt", "crni", "dich", "fiff"}
    otter = {n for n, i in SUITE.items() if i.origin == "OTTER"}
    assert otter == {"clos", "nb1d"}


def test_compilation_pipeline_benchmark(benchmark):
    """Time the full pipeline (parse → … → GCTD) on crni."""
    benchmark(compile_benchmark, "crni")
