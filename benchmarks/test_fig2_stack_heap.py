"""Figure 2 — Average Stack and Stack+Heap Levels (+ kcore-min arrows).

Validated shapes: mcc's stack segment stays flat at 16 KB for every
benchmark; mat2c's stack peaks exactly on the fully-static benchmarks
(clos, crni, fdtd, fiff); mat2c's average dynamic data beats mcc's on
most benchmarks; and kcore-min (the §4.5.2.1 time-integrated metric)
favours mat2c everywhere.
"""

import pytest

from repro.bench.experiments import collect, fig2_rows, format_rows
from repro.bench.suite import BENCHMARK_NAMES

STACK_PEAKERS = ("clos", "crni", "fdtd", "fiff")


@pytest.fixture(scope="module")
def rows():
    return fig2_rows()


def test_fig2_regeneration(rows, capsys):
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Figure 2: Average Stack and Stack+Heap Levels", rows
            )
        )


def test_mcc_stack_flat_16kb(rows):
    # "the mcc C codes for all benchmarks were found to have a stack
    #  segment size that grows to 16KB and stays at that"
    for row in rows:
        assert row["mcc stack (KB)"] == 16.0


def test_mat2c_stack_peaks_on_static_benchmarks(rows):
    # "four prominent peaks … for the clos, crni, fdtd, and fiff
    #  benchmarks … mat2c allocates all arrays in these on the stack"
    by_name = {r["benchmark"]: r["mat2c stack (KB)"] for r in rows}
    baseline = 16.0
    for name in STACK_PEAKERS:
        assert by_name[name] > baseline, f"{name} should peak"
    for name in BENCHMARK_NAMES:
        if name not in STACK_PEAKERS:
            assert by_name[name] <= baseline + 8.0


def test_dynamic_data_reductions_mostly_positive(rows):
    # paper: reductions over 20% in 7 of 11, over 100% in over half of
    # those; we require ≥7 above 20% and at least one above 100%
    reductions = [r["dynamic reduction %"] for r in rows]
    assert sum(1 for r in reductions if r > 20.0) >= 7
    assert any(r > 100.0 for r in reductions)


def test_kcore_min_favours_mat2c(rows):
    # §4.5.2.1: even where averages are close, shorter execution makes
    # mat2c the smaller memory consumer over time
    for row in rows:
        assert float(row["mat2c kcore-min"]) < float(row["mcc kcore-min"])


def test_fig2_measurement_benchmark(benchmark):
    """Time one metered mat2c execution (the Figure 2 probe) on clos."""
    from repro.bench.suite import compile_benchmark
    from repro.runtime.builtins import RuntimeContext

    compilation = compile_benchmark("clos")
    benchmark.pedantic(
        lambda: compilation.run_mat2c(RuntimeContext(seed=1)),
        rounds=3,
        iterations=1,
    )
