"""Figure 6 — Effect of the GCTD pass on mat2c's execution times.

The same mat2c pipeline, with GCTD disabled, gives every variable its
own storage (and keeps the SSA-inversion copies).  Validated shapes:
output never changes; GCTD never slows a benchmark; the benchmarks
with large coalescent arrays (fiff above all — the paper's "six orders
of magnitude" case) gain the most; memory strictly improves.
"""

import pytest

from repro.bench.experiments import fig6_rows, format_rows


@pytest.fixture(scope="module")
def rows():
    return fig6_rows()


def test_fig6_regeneration(rows, capsys):
    with capsys.disabled():
        print()
        print(
            format_rows(
                "Figure 6: Effect of Coalescing on Execution Times", rows
            )
        )


def test_gctd_never_slows_down(rows):
    for row in rows:
        assert row["relative speedup"] >= 0.99, row["benchmark"]


def test_fiff_gains_most(rows):
    # fiff's large coalescent arrays made it the paper's extreme case
    by_name = {r["benchmark"]: r["relative speedup"] for r in rows}
    assert max(by_name, key=by_name.get) == "fiff"


def test_memory_strictly_improves(rows):
    for row in rows:
        assert row["dynamic KB with"] <= row["dynamic KB without"], (
            row["benchmark"]
        )


def test_several_benchmarks_need_gctd_to_compete(records, rows):
    # paper: "without it, the mat2c C codes would have performed poorly
    # with respect to the mcc C codes in 8 out of 11 cases" — check
    # that disabling GCTD erases a substantial part of the advantage
    # on several benchmarks
    degraded = 0
    for name, record in records.items():
        with_g = record.mat2c.report.execution_seconds
        without = record.mat2c_nogctd.report.execution_seconds
        if without / with_g > 1.5:
            degraded += 1
    assert degraded >= 5


def test_fig6_measurement_benchmark(benchmark):
    from repro.bench.suite import compile_benchmark
    from repro.compiler.pipeline import CompilerOptions
    from repro.core.gctd import GCTDOptions

    benchmark.pedantic(
        lambda: compile_benchmark(
            "fiff",
            options=CompilerOptions(gctd=GCTDOptions(enabled=False)),
        ),
        rounds=3,
        iterations=1,
    )
