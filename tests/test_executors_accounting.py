"""Unit tests for the execution models' accounting (not just outputs):
box lifetimes in the mcc model, group buffers in the mat2c VM, and the
shared work estimator."""

import pytest

from repro.compiler.pipeline import CompilerOptions, compile_source
from repro.ir.instr import Instr
from repro.mccsim.executor import MXARRAY_HEADER_BYTES, MccExecutor
from repro.runtime.builtins import RuntimeContext
from repro.runtime.marray import MArray
from repro.vm.executor import Mat2CExecutor
from repro.vm.work import computation_work


def compiled(text, **kw):
    return compile_source(text, options=CompilerOptions(**kw))


class TestWorkEstimator:
    def scalar(self, v=1.0):
        return MArray.from_scalar(v)

    def matrix(self, r, c):
        import numpy as np

        return MArray.from_numpy(np.ones((r, c)))

    def test_elementwise_work_is_numel(self):
        instr = Instr(op="add", results=["x"])
        work = computation_work(
            instr, [self.matrix(3, 4), self.matrix(3, 4)],
            [self.matrix(3, 4)],
        )
        assert work == 12

    def test_matmul_work_is_mkn(self):
        instr = Instr(op="mul", results=["x"])
        work = computation_work(
            instr, [self.matrix(3, 4), self.matrix(4, 5)],
            [self.matrix(3, 5)],
        )
        assert work == 3 * 4 * 5

    def test_scalar_matmul_cheap(self):
        instr = Instr(op="mul", results=["x"])
        work = computation_work(
            instr, [self.scalar(), self.matrix(4, 5)],
            [self.matrix(4, 5)],
        )
        assert work == 20

    def test_transcendental_surcharge(self):
        from repro.ir.instr import Var

        instr = Instr(op="call:sin", results=["x"], args=[Var("a")])
        work = computation_work(
            instr, [self.matrix(2, 2)], [self.matrix(2, 2)]
        )
        assert work == 4 * 150

    def test_subsasgn_expansion_charges_copy(self):
        instr = Instr(op="subsasgn", results=["x"])
        small = self.matrix(2, 2)
        grown = self.matrix(4, 4)
        work = computation_work(
            instr, [small, self.scalar(), self.scalar(4),
                    self.scalar(4)], [grown]
        )
        assert work >= grown.numel  # the old elements were copied

    def test_solve_work_cubic(self):
        instr = Instr(op="ldiv", results=["x"])
        work = computation_work(
            instr, [self.matrix(6, 6), self.matrix(6, 1)],
            [self.matrix(6, 1)],
        )
        assert work == pytest.approx(6**3 / 3)


class TestMccModelAccounting:
    def run_mcc(self, text):
        result = compile_source(text)
        executor = MccExecutor(result.exec_func, RuntimeContext(seed=1))
        run = executor.run()
        return executor, run

    def test_array_allocations_include_header(self):
        executor, run = self.run_mcc(
            "a = rand(10); disp(sum(sum(a)));"
        )
        # some allocation must be header + 10*10*8 payload
        assert any(
            size >= MXARRAY_HEADER_BYTES + 800
            for size in [executor.heap.brk]
        )
        assert run.report.mallocs >= 1

    def test_scalar_arithmetic_not_boxed(self):
        executor, run = self.run_mcc("x = 1 + 2 + 3 + 4; disp(x);")
        # folded scalars stay in C doubles: no boxes for the adds
        boxed = run.report.mallocs
        executor2, run2 = self.run_mcc(
            "a = rand(2); b = a + 1; disp(sum(sum(b)));"
        )
        assert run2.report.mallocs > boxed

    def test_named_arrays_persist_temps_die(self):
        executor, run = self.run_mcc(
            "a = rand(8);\n"
            "for k = 1:5\n t = sum(sum(a .* a));\nend\n"
            "disp(t);"
        )
        # temporaries were freed along the way: frees track mallocs
        assert run.report.frees > 0

    def test_flat_stack(self):
        _, run = self.run_mcc("a = rand(30); disp(sum(sum(a)));")
        assert run.report.avg_stack_kb == 16.0


class TestMat2CAccounting:
    def test_stack_program_no_heap(self):
        result = compile_source(
            "a = rand(10); b = a + 1; disp(sum(sum(b)));"
        )
        run = result.run_mat2c(RuntimeContext(seed=1))
        assert run.report.mallocs == 0

    def test_heap_program_single_buffer_per_group(self):
        result = compile_source(
            "n = floor(rand(1) * 5) + 3;\n"
            "a = zeros(n, n); b = a + 1; c = b * 2;\n"
            "disp(sum(sum(c)));"
        )
        run = result.run_mat2c(RuntimeContext(seed=1))
        from repro.core.allocation import StorageClass

        heap_groups = sum(
            1
            for g in result.plan.groups
            if g.storage is StorageClass.HEAP
        )
        # one malloc per heap group touched (plus reallocs, not counted
        # here as fresh mallocs only grow)
        assert 1 <= run.report.mallocs <= heap_groups + 2

    def test_identity_copy_costs_nothing(self):
        # two compilations: one where the copy folds (same group), one
        # with GCTD off (separate storage ⇒ data moves)
        text = (
            "q = rand(1); a = rand(20);\n"
            "if q > 0.5\n b = a + 1;\nelse\n b = a - 1;\nend\n"
            "disp(sum(sum(b)));"
        )
        on = compile_source(text)
        from repro.core.gctd import GCTDOptions

        off = compile_source(
            text, options=CompilerOptions(gctd=GCTDOptions(enabled=False))
        )
        run_on = on.run_mat2c(RuntimeContext(seed=1))
        run_off = off.run_mat2c(RuntimeContext(seed=1))
        assert (
            run_on.report.execution_seconds
            < run_off.report.execution_seconds
        )

    def test_resize_marks_drive_behavior(self):
        # a ∘-marked chain must not realloc between members
        result = compile_source(
            "n = floor(rand(1) * 6) + 3;\n"
            "t0 = rand(n, n); t1 = t0 - 1.0; t2 = t1 * 2.0;\n"
            "disp(sum(sum(t2)));"
        )
        run = result.run_mat2c(RuntimeContext(seed=1))
        # the chain shares one buffer: exactly one heap malloc for it
        assert run.report.mallocs <= 3
