"""Tests for compilation reports and the annotated IR printer."""

from repro.compiler.pipeline import compile_program, compile_source
from repro.compiler.reports import (
    full_report,
    interference_summary,
    reduction_summary,
    storage_map,
)
from repro.ir.printer import format_function


def result_for(text, **sources):
    if sources:
        files = {"main.m": text}
        files.update({f"{n}.m": s for n, s in sources.items()})
        return compile_program(files)
    return compile_source(text)


class TestReports:
    def test_reduction_summary_fields(self):
        result = result_for(
            "a = rand(8); b = a + 1; disp(sum(sum(b)));"
        )
        summary = reduction_summary(result)
        assert "variables subsumed" in summary
        assert "KB static reduction" in summary

    def test_storage_map_lists_groups(self):
        result = result_for(
            "a = rand(8); b = a + 1; c = b .* 2; disp(sum(sum(c)));"
        )
        text = storage_map(result)
        assert "stack frame:" in text
        assert "group" in text
        assert "root=" in text

    def test_storage_map_resize_marks(self):
        result = result_for(
            "t0 = mystery(); t1 = t0 - 1.0; t2 = t1 * 2.0; disp(t2);",
            mystery=(
                "function y = mystery()\n"
                "n = floor(rand(1) * 4) + 1;\ny = rand(n, n);\n"
            ),
        )
        text = storage_map(result)
        assert "symbolic" in text
        assert " o " in text  # a ∘ (non-resized) definition

    def test_interference_summary(self):
        result = result_for(
            "a = rand(3); b = rand(3); c = a * b; disp(sum(sum(c)));"
        )
        text = interference_summary(result)
        assert "du-chain" in text
        assert "operator-semantics" in text

    def test_full_report_composes(self):
        result = result_for("x = 1 + 1; disp(x);")
        text = full_report(result)
        assert "variables subsumed" in text
        assert "stack frame" in text


class TestPrinter:
    def test_plain_function(self):
        result = result_for("a = zeros(2); disp(a(1, 1));")
        text = format_function(result.exec_func)
        assert "function" in text
        assert "B0:" in text
        assert "ret" in text

    def test_with_types(self):
        result = result_for("a = zeros(2); disp(a(1, 1));")
        text = format_function(result.exec_func, env=result.env)
        assert "REAL" in text

    def test_with_plan_annotations(self):
        result = result_for(
            "a = rand(4); b = a + 1; disp(sum(sum(b)));"
        )
        text = format_function(
            result.exec_func, env=result.env, plan=result.plan
        )
        assert "; " in text
        assert "g0" in text or "g1" in text

    def test_branches_printed(self):
        result = result_for(
            "a = rand(1);\nif a > 0.5\n disp(1);\nelse\n disp(2);\nend"
        )
        text = format_function(result.exec_func)
        assert "branch" in text
        assert "jump" in text
