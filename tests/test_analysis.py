"""Unit tests for liveness, availability, du-chains, and cleanup passes."""

from repro.analysis.availability import compute_availability
from repro.analysis.constfold import fold_constants
from repro.analysis.copyprop import propagate_copies
from repro.analysis.cse import eliminate_common_subexpressions
from repro.analysis.dce import eliminate_dead_code
from repro.analysis.duchains import compute_du_chains
from repro.analysis.liveness import compute_liveness
from repro.analysis.pass_manager import run_cleanup_pipeline
from repro.frontend.parser import parse_program
from repro.ir.instr import Const, Var
from repro.ir.lower import lower_program
from repro.ssa.construct import base_name, construct_ssa
from repro.ssa.verify import verify_ssa


def to_ssa(text, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    return construct_ssa(lower_program(parse_program(files)))


def find_versions(func, base):
    return [
        r
        for i in func.instructions()
        for r in i.results
        if base_name(r) == base
    ]


class TestLiveness:
    def test_loop_variable_live_around_backedge(self):
        func = to_ssa("i = 0;\nwhile i < 10\n i = i + 1;\nend\ndisp(i);")
        live = compute_liveness(func)
        phi = next(i for i in func.instructions() if i.is_phi)
        # the φ result is live out of the loop-header block somewhere
        assert any(
            phi.results[0] in s for s in live.live_out.values()
        )

    def test_dead_after_last_use(self):
        func = to_ssa("a = 1; b = a + 1; disp(b);")
        live = compute_liveness(func)
        a_versions = find_versions(func, "a")
        # straight-line single block: `a` never live out of it
        assert all(
            v not in live.live_out[bid]
            for v in a_versions
            for bid in live.live_out
        )

    def test_phi_operand_live_out_of_pred(self):
        func = to_ssa("a = 1;\nif a > 0\n b = 1;\nelse\n b = 2;\nend\ndisp(b);")
        live = compute_liveness(func)
        # each branch side's `b` version is live out of its block (φ use)
        all_out = set().union(*live.live_out.values())
        b_versions = set(find_versions(func, "b"))
        assert b_versions & all_out


class TestAvailability:
    def test_sequential_availability(self):
        func = to_ssa("a = 1; b = a + 1; c = b * 2; disp(c);")
        avail = compute_availability(func)
        a = find_versions(func, "a")[0]
        c = find_versions(func, "c")[0]
        assert avail.available_at_definition_of(a, c)
        assert not avail.available_at_definition_of(c, a)

    def test_reflexive(self):
        func = to_ssa("a = 1; disp(a);")
        avail = compute_availability(func)
        a = find_versions(func, "a")[0]
        assert avail.available_at_definition_of(a, a)

    def test_branch_sides_not_mutually_available(self):
        func = to_ssa(
            "q = 1;\nif q > 0\n a = 1;\nelse\n b = 2;\nend\n"
        )
        avail = compute_availability(func)
        a = find_versions(func, "a")[0]
        b = find_versions(func, "b")[0]
        assert not avail.available_at_definition_of(a, b)
        assert not avail.available_at_definition_of(b, a)

    def test_may_availability_through_loop(self):
        # defs inside a loop body are (may-)available at the header on
        # the next iteration
        func = to_ssa(
            "i = 0;\nwhile i < 3\n x = i; i = i + 1;\nend\ndisp(i);"
        )
        avail = compute_availability(func)
        x = find_versions(func, "x")[0]
        i_phi = next(
            i for i in func.instructions()
            if i.is_phi and base_name(i.results[0]) == "i"
        )
        assert avail.available_at_definition_of(x, i_phi.results[0])


class TestDuChains:
    def test_definition_and_uses_recorded(self):
        func = to_ssa("a = 1; b = a + a; disp(b);")
        chains = compute_du_chains(func)
        a = find_versions(func, "a")[0]
        assert chains.use_count(a) == 2

    def test_dead_variable_has_no_uses(self):
        func = to_ssa("a = 1; b = 2; disp(b);")
        chains = compute_du_chains(func)
        a = find_versions(func, "a")[0]
        assert chains.is_dead(a)

    def test_phi_use_records_pred(self):
        func = to_ssa("i = 0;\nwhile i < 3\n i = i + 1;\nend\ndisp(i);")
        chains = compute_du_chains(func)
        phi_uses = [
            u
            for uses in chains.uses.values()
            for u in uses
            if u.phi_pred is not None
        ]
        assert phi_uses


class TestCopyPropagation:
    def test_copy_uses_rewritten(self):
        func = to_ssa("a = rand(2,2); b = a; c = b + 1; disp(c);")
        propagate_copies(func)
        add = next(i for i in func.instructions() if i.op == "add")
        assert base_name(add.args[0].name) == "a"

    def test_copy_chain_followed(self):
        func = to_ssa("a = rand(2); b = a; c = b; d = c + 1; disp(d);")
        propagate_copies(func)
        add = next(i for i in func.instructions() if i.op == "add")
        assert base_name(add.args[0].name) == "a"

    def test_then_dce_removes_copies(self):
        func = to_ssa("a = rand(2); b = a; c = b + 1; disp(c);")
        propagate_copies(func)
        eliminate_dead_code(func)
        assert not any(i.op == "copy" for i in func.instructions())


class TestDCE:
    def test_unused_def_removed(self):
        func = to_ssa("a = 1; b = 2; disp(b);")
        removed = eliminate_dead_code(func)
        assert removed >= 1
        assert not find_versions(func, "a")

    def test_display_roots_kept(self):
        func = to_ssa("a = 42\n")  # no semicolon: display
        eliminate_dead_code(func)
        assert any(i.op == "display" for i in func.instructions())

    def test_transitive_liveness(self):
        func = to_ssa("a = 1; b = a + 1; c = b * 2; disp(c);")
        eliminate_dead_code(func)
        assert find_versions(func, "a")

    def test_branch_condition_kept(self):
        func = to_ssa(
            "a = rand(1);\nif a > 0.5\n disp(1);\nelse\n disp(2);\nend"
        )
        eliminate_dead_code(func)
        assert any(i.op == "gt" for i in func.instructions())


class TestConstantFolding:
    def test_arith_folds(self):
        func = to_ssa("x = 2 + 3 * 4; disp(x);")
        fold_constants(func)
        x = find_versions(func, "x")[0]
        const = next(
            i for i in func.instructions() if x in i.results
        )
        assert const.op == "const"
        assert const.args[0] == Const(complex(14.0))

    def test_propagates_into_calls(self):
        func = to_ssa("n = 10; a = zeros(n, n); disp(a);")
        fold_constants(func)
        call = next(i for i in func.instructions() if i.op == "call:zeros")
        assert all(isinstance(a, Const) for a in call.args)

    def test_division_by_zero_not_folded(self):
        func = to_ssa("x = 1 / 0; disp(x);")
        fold_constants(func)
        div = next(
            i for i in func.instructions()
            if find_versions(func, "x")[0] in i.results
        )
        assert div.op == "div"

    def test_builtin_floor_folds(self):
        func = to_ssa("x = floor(3.7); disp(x);")
        fold_constants(func)
        x_def = next(
            i for i in func.instructions()
            if find_versions(func, "x")[0] in i.results
        )
        assert x_def.op == "const"
        assert x_def.args[0] == Const(complex(3.0))


class TestCSE:
    def test_repeated_expression_becomes_copy(self):
        func = to_ssa(
            "a = rand(3); b = a + a; c = a + a; d = b + c; disp(d);"
        )
        n = eliminate_common_subexpressions(func)
        assert n == 1

    def test_impure_calls_not_merged(self):
        func = to_ssa("a = rand(3); b = rand(3); c = a + b; disp(c);")
        eliminate_common_subexpressions(func)
        rands = [i for i in func.instructions() if i.op == "call:rand"]
        assert len(rands) == 2

    def test_dominance_respected(self):
        # the two `a * 2` live on opposite branch sides: no merging
        func = to_ssa(
            "a = rand(1); q = 1;\n"
            "if q > 0\n x = a * 2;\nelse\n x = a * 2;\nend\ndisp(x);"
        )
        n = eliminate_common_subexpressions(func)
        assert n == 0


class TestPipeline:
    def test_reaches_fixed_point(self):
        func = to_ssa(
            "a = 2 + 3; b = a; c = b * 2; d = c; e = d + 0; disp(e);"
        )
        stats = run_cleanup_pipeline(func)
        assert stats.iterations < 25
        verify_ssa(func)

    def test_pipeline_shrinks_code(self):
        func = to_ssa(
            "a = rand(4); b = a; c = b; d = c + 1; unused = 7; disp(d);"
        )
        before = len(func.instructions())
        run_cleanup_pipeline(func)
        assert len(func.instructions()) < before
