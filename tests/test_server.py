"""Tests for the long-lived compile server (:mod:`repro.server`).

Fast lane, no gcc: every compile here is compile-only (the server
never executes programs).  Robustness scenarios — deadline expiry,
worker crashes, load shedding, graceful drain — inject tiny job
bodies through the ``compile_impl`` seam so they run in milliseconds;
the end-to-end compile paths use the real pipeline on small programs.
"""

import threading
import time

import pytest

from repro.__main__ import main
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.server.metrics import MetricsRegistry

PROGRAM = "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"
OTHER_PROGRAM = "x = zeros(5); y = x + 3; disp(sum(sum(y)));\n"


def make_config(tmp_path, **overrides) -> ServerConfig:
    values = {
        "port": 0,
        "workers": 2,
        "queue_limit": 8,
        "cache_root": str(tmp_path / "cache"),
        "drain_seconds": 5.0,
    }
    values.update(overrides)
    return ServerConfig(**values)


@pytest.fixture
def server(tmp_path):
    with ServerThread(make_config(tmp_path)) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServerClient(server.url, timeout=30.0)


# --------------------------------------------------------------------------
# Metrics registry
# --------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_labels_and_render(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "requests_total", "Requests.", ("endpoint",)
        )
        requests.inc(endpoint="/a")
        requests.inc(2, endpoint="/b")
        text = registry.render()
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{endpoint="/a"} 1' in text
        assert 'requests_total{endpoint="/b"} 2' in text

    def test_counter_rejects_negative_and_bad_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "C.", ("x",))
        with pytest.raises(ValueError):
            counter.inc(-1, x="a")
        with pytest.raises(ValueError):
            counter.inc(y="a")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4
        assert "depth 4" in registry.render()

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert hist.count() == 3

    def test_duplicate_metric_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.")
        with pytest.raises(ValueError):
            registry.counter("x_total", "again")


# --------------------------------------------------------------------------
# Health, readiness, routing
# --------------------------------------------------------------------------


class TestPlumbing:
    def test_healthz(self, client):
        response = client.health()
        assert response.status == 200
        assert response.payload["ok"] is True
        assert response.payload["workers_alive"] == 2

    def test_readyz(self, client):
        response = client.ready()
        assert response.status == 200
        assert response.payload["ready"] is True

    def test_unknown_route_is_404(self, client):
        response = client.get("/nope")
        assert response.status == 404
        assert response.payload["ok"] is False

    def test_wrong_method_is_405(self, client):
        response = client.post_json("/healthz", {})
        assert response.status == 405

    def test_bad_json_is_400(self, server):
        import urllib.request

        request = urllib.request.Request(
            server.url + "/v1/compile",
            data=b"not json{",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        client = ServerClient(server.url)
        response = client._send(request)
        assert response.status == 400
        assert "JSON" in response.payload["error"]

    def test_missing_sources_is_400(self, client):
        response = client.post_json("/v1/compile", {"entry": "x"})
        assert response.status == 400
        assert "sources" in response.payload["error"]

    def test_unknown_option_is_400(self, client):
        response = client.post_json(
            "/v1/compile",
            {"sources": {"a.m": "x = 1;"}, "options": {"frob": 1}},
        )
        assert response.status == 400
        assert "frob" in response.payload["error"]


# --------------------------------------------------------------------------
# Compile endpoint (real pipeline, compile-only)
# --------------------------------------------------------------------------


class TestCompileEndpoint:
    def test_compile_reports_stats(self, client):
        response = client.compile({"prog.m": PROGRAM})
        assert response.ok
        payload = response.payload
        assert payload["entry"] == "prog"
        assert payload["stats"]["variables"] > 0
        assert payload["stats"]["stack_frame_bytes"] > 0
        assert len(payload["fingerprint"]) == 64
        assert "report" in payload
        assert "c_source" not in payload

    def test_emit_c(self, client):
        response = client.compile({"prog.m": PROGRAM}, emit_c=True)
        assert response.ok
        assert "int main(void)" in response.payload["c_source"]

    def test_repeat_submission_hits_cache(self, client):
        first = client.compile({"prog.m": PROGRAM})
        second = client.compile({"prog.m": PROGRAM})
        assert first.payload["cache_hit"] is False
        assert second.payload["cache_hit"] is True
        assert (
            first.payload["fingerprint"]
            == second.payload["fingerprint"]
        )

    def test_options_change_fingerprint(self, client):
        default = client.compile({"prog.m": PROGRAM})
        nogctd = client.compile(
            {"prog.m": PROGRAM}, options={"gctd": False}
        )
        assert nogctd.payload["cache_hit"] is False
        assert (
            default.payload["fingerprint"]
            != nogctd.payload["fingerprint"]
        )
        assert nogctd.payload["stats"]["static_subsumed"] == 0

    def test_compile_error_is_422(self, client):
        response = client.compile({"prog.m": "x = ) nope"})
        assert response.status == 422
        assert "MatlabSyntaxError" in response.payload["error"]

    def test_cache_metrics_exposed(self, client):
        client.compile({"prog.m": PROGRAM})
        client.compile({"prog.m": PROGRAM})
        text = client.metrics_text()
        samples = MetricsRegistry().parse_rendered(text)
        assert samples["repro_cache_hits_total"] == 1
        assert samples["repro_cache_misses_total"] == 1
        assert (
            samples['repro_compiles_total{result="ok"}'] == 2
        )
        # Pass telemetry aggregates into per-pass counters.
        assert any(
            name.startswith("repro_pass_seconds_total")
            for name in samples
        )


# --------------------------------------------------------------------------
# Batch endpoint
# --------------------------------------------------------------------------


class TestBatchEndpoint:
    def test_batch_dedups_and_reports_items(self, client):
        response = client.batch(
            [
                {"sources": {"p.m": PROGRAM}, "name": "one"},
                {"sources": {"p.m": PROGRAM}, "name": "two"},
                {"sources": {"q.m": OTHER_PROGRAM}, "name": "three"},
            ],
            jobs=1,
        )
        assert response.status == 200
        items = {
            item["name"]: item for item in response.payload["items"]
        }
        assert response.payload["ok"] is True
        assert items["two"]["deduped"] is True
        assert items["one"]["deduped"] is False
        assert items["three"]["fingerprint"] != items["one"]["fingerprint"]

    def test_batch_partial_failure_reported_per_item(self, client):
        response = client.batch(
            [
                {"sources": {"p.m": PROGRAM}, "name": "good"},
                {"sources": {"q.m": "x = ) nope"}, "name": "bad"},
            ],
            jobs=1,
        )
        assert response.status == 200
        assert response.payload["ok"] is False
        items = {
            item["name"]: item for item in response.payload["items"]
        }
        assert items["good"]["ok"] is True
        assert items["bad"]["ok"] is False
        assert "MatlabSyntaxError" in items["bad"]["error"]

    def test_batch_validation_error_is_400(self, client):
        response = client.post_json("/v1/batch", {"requests": []})
        assert response.status == 400


# --------------------------------------------------------------------------
# Deadlines and cancellation
# --------------------------------------------------------------------------


class TestDeadlines:
    def test_running_job_deadline_expires(self, tmp_path):
        def slow_impl(payload):
            time.sleep(3.0)
            return {"ok": True}

        config = make_config(tmp_path, workers=1)
        with ServerThread(config, compile_impl=slow_impl) as server:
            client = ServerClient(server.url, timeout=30.0)
            start = time.monotonic()
            response = client.compile(
                {"p.m": "x = 1;"}, deadline_seconds=0.2
            )
            elapsed = time.monotonic() - start
            assert response.status == 504
            assert "deadline" in response.payload["error"]
            assert elapsed < 2.0  # answered at the deadline, not after

    def test_queued_job_expires_without_running(self, tmp_path):
        ran = []

        def impl(payload):
            if payload.get("name") == "blocker":
                time.sleep(1.0)
            ran.append(payload.get("name"))
            return {"ok": True, "name": payload.get("name")}

        config = make_config(tmp_path, workers=1)
        with ServerThread(config, compile_impl=impl) as server:
            client = ServerClient(server.url, timeout=30.0)
            blocker = threading.Thread(
                target=client.compile,
                args=({"p.m": "x = 1;"},),
                kwargs={"name": "blocker"},
            )
            blocker.start()
            time.sleep(0.2)  # let the blocker occupy the only worker
            response = client.compile(
                {"p.m": "y = 2;"},
                deadline_seconds=0.1,
                name="victim",
            )
            blocker.join()
            assert response.status == 504
            assert "victim" not in ran  # skipped, never executed

    def test_deadline_metric_counted(self, tmp_path):
        def slow_impl(payload):
            time.sleep(1.0)
            return {"ok": True}

        config = make_config(tmp_path, workers=1)
        with ServerThread(config, compile_impl=slow_impl) as server:
            client = ServerClient(server.url, timeout=30.0)
            client.compile({"p.m": "x = 1;"}, deadline_seconds=0.1)
            samples = MetricsRegistry().parse_rendered(
                client.metrics_text()
            )
            assert samples["repro_deadline_expired_total"] >= 1

    def test_invalid_deadline_is_400(self, client):
        response = client.post_json(
            "/v1/compile",
            {"sources": {"a.m": "x = 1;"}, "deadline_seconds": -1},
        )
        assert response.status == 400


# --------------------------------------------------------------------------
# Worker crash recovery
# --------------------------------------------------------------------------


class _InjectedCrash(BaseException):
    """Not an Exception: simulates a worker-killing failure."""


class TestWorkerCrashRecovery:
    def test_crash_errors_request_but_not_server(self, tmp_path):
        def impl(payload):
            if "CRASH" in next(iter(payload["sources"].values())):
                raise _InjectedCrash("boom")
            return {"ok": True, "survived": True}

        config = make_config(tmp_path, workers=2)
        with ServerThread(config, compile_impl=impl) as server:
            client = ServerClient(server.url, timeout=30.0)
            crashed = client.compile({"p.m": "% CRASH\n"})
            assert crashed.status == 500
            assert "crash" in crashed.payload["error"].lower()

            # The server keeps serving and capacity is restored.
            for _ in range(4):
                response = client.compile({"p.m": "x = 1;"})
                assert response.status == 200
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                health = client.health()
                if health.payload["workers_alive"] == 2:
                    break
                time.sleep(0.05)
            assert health.payload["workers_alive"] == 2
            samples = MetricsRegistry().parse_rendered(
                client.metrics_text()
            )
            assert samples["repro_worker_crashes_total"] == 1

    def test_every_worker_crashing_still_recovers(self, tmp_path):
        def impl(payload):
            if "CRASH" in next(iter(payload["sources"].values())):
                raise _InjectedCrash("boom")
            return {"ok": True}

        config = make_config(tmp_path, workers=2)
        with ServerThread(config, compile_impl=impl) as server:
            client = ServerClient(server.url, timeout=30.0)
            for _ in range(4):
                assert (
                    client.compile({"p.m": "% CRASH\n"}).status == 500
                )
            assert client.compile({"p.m": "x = 1;"}).status == 200


# --------------------------------------------------------------------------
# Load shedding
# --------------------------------------------------------------------------


class TestAdmissionControl:
    def test_full_queue_sheds_with_retry_after(self, tmp_path):
        release = threading.Event()

        def impl(payload):
            release.wait(10.0)
            return {"ok": True}

        config = make_config(tmp_path, workers=1, queue_limit=1)
        with ServerThread(config, compile_impl=impl) as server:
            client = ServerClient(server.url, timeout=30.0)
            statuses = []
            threads = [
                threading.Thread(
                    target=lambda: statuses.append(
                        client.compile({"p.m": "x = 1;"}).status
                    )
                )
                for _ in range(6)
            ]
            for thread in threads:
                thread.start()
            # Wait until the worker + queue slots are pinned and the
            # overflow requests have been shed.
            deadline = time.monotonic() + 5.0
            while (
                len(statuses) < 4 and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            release.set()
            for thread in threads:
                thread.join(10.0)
            assert len(statuses) == 6
            assert statuses.count(429) >= 1
            assert statuses.count(200) >= 1
            assert set(statuses) <= {200, 429}
            samples = MetricsRegistry().parse_rendered(
                client.metrics_text()
            )
            assert samples["repro_shed_total"] == statuses.count(429)

    def test_shed_response_carries_retry_after(self, tmp_path):
        release = threading.Event()

        def impl(payload):
            release.wait(10.0)
            return {"ok": True}

        config = make_config(tmp_path, workers=1, queue_limit=1)
        with ServerThread(config, compile_impl=impl) as server:
            client = ServerClient(server.url, timeout=30.0)

            def occupy():
                # Retry on shed: right after startup the worker may
                # not have drained the first filler yet, in which
                # case one of these is legitimately refused.
                while client.compile({"p.m": "x = 1;"}).status == 429:
                    time.sleep(0.02)

            background = [
                threading.Thread(target=occupy) for _ in range(2)
            ]
            for thread in background:
                thread.start()
            # Wait until the only worker is busy and the queue slot is
            # taken, so the next submission must be shed.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                ready = client.ready()
                if ready.payload.get("queue_depth", 0) >= 1:
                    break
                time.sleep(0.02)
            shed = None
            while time.monotonic() < deadline:
                response = client.compile(
                    {"p.m": "x = 1;"}, deadline_seconds=0.2
                )
                if response.status == 429:
                    shed = response
                    break
                time.sleep(0.02)
            release.set()
            for thread in background:
                thread.join(10.0)
            assert shed is not None, "queue never filled"
            headers = {
                name.lower(): value
                for name, value in shed.headers.items()
            }
            assert "retry-after" in headers


# --------------------------------------------------------------------------
# Graceful shutdown
# --------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_inflight_request_completes_during_drain(self, tmp_path):
        started = threading.Event()

        def impl(payload):
            started.set()
            time.sleep(0.5)
            return {"ok": True, "drained": True}

        config = make_config(tmp_path, workers=1)
        server = ServerThread(config, compile_impl=impl).start()
        client = ServerClient(server.url, timeout=30.0)
        result: dict = {}

        def submit():
            result["response"] = client.compile({"p.m": "x = 1;"})

        submitter = threading.Thread(target=submit)
        submitter.start()
        assert started.wait(5.0)
        server.stop()
        submitter.join(10.0)
        response = result["response"]
        assert response.status == 200
        assert response.payload["drained"] is True

    def test_stopped_server_refuses_connections(self, tmp_path):
        import urllib.error

        server = ServerThread(make_config(tmp_path)).start()
        url = server.url
        client = ServerClient(url, timeout=5.0)
        assert client.health().status == 200
        server.stop()
        with pytest.raises(urllib.error.URLError):
            client.health()


# --------------------------------------------------------------------------
# CLI integration (serve is covered by CI smoke; client runs here)
# --------------------------------------------------------------------------


class TestClientCli:
    @pytest.fixture
    def mfile(self, tmp_path):
        path = tmp_path / "prog.m"
        path.write_text(PROGRAM)
        return str(path)

    def test_client_compile_round_trip(self, server, mfile, capsys):
        assert (
            main(["client", "compile", mfile, "--url", server.url])
            == 0
        )
        out = capsys.readouterr().out
        assert "variables at GCTD" in out
        assert "cache_hit             : False" in out
        assert (
            main(["client", "compile", mfile, "--url", server.url])
            == 0
        )
        out = capsys.readouterr().out
        assert "cache_hit             : True" in out

    def test_client_emit_c(self, server, mfile, capsys):
        main(
            [
                "client", "compile", mfile,
                "--url", server.url, "--emit-c",
            ]
        )
        assert "int main(void)" in capsys.readouterr().out

    def test_client_compile_error_exits_nonzero(
        self, server, tmp_path, capsys
    ):
        bad = tmp_path / "bad.m"
        bad.write_text("x = ) nope\n")
        code = main(
            ["client", "compile", str(bad), "--url", server.url]
        )
        assert code == 1
        assert "422" in capsys.readouterr().err

    def test_client_health_and_metrics(self, server, capsys):
        assert main(["client", "health", "--url", server.url]) == 0
        assert '"ok": true' in capsys.readouterr().out
        assert main(["client", "metrics", "--url", server.url]) == 0
        assert "repro_requests_total" in capsys.readouterr().out

    def test_client_unreachable_server_exits_nonzero(self, capsys):
        code = main(
            [
                "client", "health",
                "--url", "http://127.0.0.1:9",  # discard port
                "--timeout", "2",
            ]
        )
        assert code == 1
        assert "cannot reach server" in capsys.readouterr().err
