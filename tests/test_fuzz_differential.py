"""Differential fuzzing: random MATLAB programs, four execution models.

Hypothesis generates small well-formed programs over 3×3 matrices and
scalars; each must print byte-identical output under (1) the mat2c VM,
(2) the mat2c VM in aliased (group-keyed) mode — which exercises GCTD's
storage sharing like the generated C does, (3) the mcc model, and
(4) the independent AST interpreter.  Any disagreement is a compiler
bug by construction.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler.pipeline import compile_source
from repro.runtime.builtins import RuntimeContext

pytestmark = pytest.mark.slow

MATRICES = ["a", "b", "c"]
SCALARS = ["s", "u"]

matrix_names = st.sampled_from(MATRICES)
scalar_names = st.sampled_from(SCALARS)
small_index = st.integers(min_value=1, max_value=3)
small_const = st.integers(min_value=-9, max_value=9)

elementwise_op = st.sampled_from(["+", "-", ".*"])


def stmt_matrix_binop(target, left, right, op):
    return f"{target} = {left} {op} {right};"


def stmt_scalar_update(target, source, const):
    return f"{target} = {source} * 2 + {const};"


def stmt_subsasgn(target, i, j, source):
    return f"{target}({i}, {j}) = {source};"


def stmt_subsref(target, source, i, j):
    return f"{target} = {source}({i}, {j}) + 1;"


def stmt_matrix_scale(target, source, scalar):
    return f"{target} = {source} * {scalar};"


def stmt_elementwise_call(target, source, fn):
    return f"{target} = {fn}({source} .* {source});"


def stmt_transpose(target, source):
    return f"{target} = {source}';"


def stmt_matmul(target, left, right):
    return f"{target} = {left} * {right};"


statements = st.one_of(
    st.builds(
        stmt_matrix_binop,
        matrix_names,
        matrix_names,
        matrix_names,
        elementwise_op,
    ),
    st.builds(stmt_scalar_update, scalar_names, scalar_names, small_const),
    st.builds(
        stmt_subsasgn, matrix_names, small_index, small_index, scalar_names
    ),
    st.builds(
        stmt_subsref, scalar_names, matrix_names, small_index, small_index
    ),
    st.builds(stmt_matrix_scale, matrix_names, matrix_names, scalar_names),
    st.builds(
        stmt_elementwise_call,
        matrix_names,
        matrix_names,
        st.sampled_from(["sqrt", "abs", "floor"]),
    ),
    st.builds(stmt_transpose, matrix_names, matrix_names),
    st.builds(stmt_matmul, matrix_names, matrix_names, matrix_names),
)

conditionals = st.builds(
    lambda cond_var, then_stmt, else_stmt: (
        f"if {cond_var} > 0.5\n  {then_stmt}\nelse\n  {else_stmt}\nend"
    ),
    scalar_names,
    statements,
    statements,
)

loops = st.builds(
    lambda n, body: f"for k$i = 1:{n}\n  {body}\nend".replace("$i", ""),
    st.integers(min_value=1, max_value=3),
    statements,
)

program_bodies = st.lists(
    st.one_of(statements, statements, conditionals, loops),
    min_size=2,
    max_size=8,
)

PREAMBLE = """\
a = rand(3);
b = rand(3);
c = rand(3);
s = rand(1);
u = rand(1);
"""

EPILOGUE = """\
fprintf('%.6f\\n', sum(sum(a)) + sum(sum(b)));
fprintf('%.6f\\n', sum(sum(c)) + s + u);
"""


@given(program_bodies)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_programs_agree(body):
    source = PREAMBLE + "\n".join(body) + "\n" + EPILOGUE
    result = compile_source(source)
    outputs = {
        "mat2c": result.run_mat2c(RuntimeContext(seed=11)).output,
        "aliased": result.run_mat2c(
            RuntimeContext(seed=11), aliased=True
        ).output,
        "mcc": result.run_mcc(RuntimeContext(seed=11)).output,
        "interp": result.run_interpreter(RuntimeContext(seed=11)).output,
    }
    distinct = set(outputs.values())
    assert len(distinct) == 1, f"models disagree on:\n{source}\n{outputs}"
