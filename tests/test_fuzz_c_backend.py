"""Differential fuzzing of the C back end against the VM.

Random deterministic programs (no ``rand`` — the C runtime's RNG is a
different generator by design) are compiled to C, built with the host
compiler, and must print exactly what the mat2c VM prints.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend.cc import compile_and_run, find_compiler
from repro.backend.cgen import CodegenError, generate_c
from repro.compiler.pipeline import compile_source
from repro.runtime.builtins import RuntimeContext

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        find_compiler() is None, reason="no C compiler available"
    ),
]

MATRICES = ["a", "b", "c"]
SCALARS = ["s", "u"]

matrix_names = st.sampled_from(MATRICES)
scalar_names = st.sampled_from(SCALARS)
small_index = st.integers(min_value=1, max_value=3)
small_const = st.integers(min_value=-9, max_value=9)

statements = st.one_of(
    st.builds(
        lambda t, l, r, op: f"{t} = {l} {op} {r};",
        matrix_names,
        matrix_names,
        matrix_names,
        st.sampled_from(["+", "-", ".*"]),
    ),
    st.builds(
        lambda t, s, k: f"{t} = {s} * 2 + {k};",
        scalar_names,
        scalar_names,
        small_const,
    ),
    st.builds(
        lambda t, i, j, s: f"{t}({i}, {j}) = {s};",
        matrix_names,
        small_index,
        small_index,
        scalar_names,
    ),
    st.builds(
        lambda t, s, i, j: f"{t} = {s}({i}, {j}) + 1;",
        scalar_names,
        matrix_names,
        small_index,
        small_index,
    ),
    st.builds(
        lambda t, s, fn: f"{t} = {fn}({s} .* {s});",
        matrix_names,
        matrix_names,
        st.sampled_from(["sqrt", "abs", "floor"]),
    ),
    st.builds(lambda t, s: f"{t} = {s}';", matrix_names, matrix_names),
    st.builds(
        lambda t, l, r: f"{t} = {l} * {r};",
        matrix_names,
        matrix_names,
        matrix_names,
    ),
    st.builds(
        lambda n, body: f"for k = 1:{n}\n  {body}\nend",
        st.integers(min_value=1, max_value=3),
        st.builds(
            lambda t, l, r, op: f"{t} = {l} {op} {r};",
            matrix_names,
            matrix_names,
            matrix_names,
            st.sampled_from(["+", "-", ".*"]),
        ),
    ),
)

PREAMBLE = """\
a = [1, 2, 3; 4, 5, 6; 7, 9, 8];
b = [2, 0, 1; 1, 3, 0; 0, 1, 4];
c = a - b;
s = 0.75;
u = 2.5;
"""

EPILOGUE = """\
fprintf('%.6f\\n', sum(sum(a)) + sum(sum(b)));
fprintf('%.6f\\n', sum(sum(c)) + s + u);
"""


@given(st.lists(statements, min_size=2, max_size=7))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_c_backend_matches_vm(body):
    source = PREAMBLE + "\n".join(body) + "\n" + EPILOGUE
    result = compile_source(source)
    vm = result.run_mat2c(RuntimeContext(seed=9))
    try:
        c_source = generate_c(result)
    except CodegenError:
        return  # outside the demo subset: fine, just skip
    native = compile_and_run(c_source)
    assert native.returncode == 0, (
        f"C run failed on:\n{source}\n{native.stderr}"
    )
    assert native.stdout == vm.output, (
        f"C/VM divergence on:\n{source}\n"
        f"C : {native.stdout!r}\nVM: {vm.output!r}"
    )
