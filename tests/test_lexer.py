"""Unit tests for the MATLAB lexer."""

import pytest

from repro.frontend.lexer import TokenKind, tokenize
from repro.frontend.source import MatlabSyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_identifiers_and_numbers(self):
        toks = tokenize("x = 42")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == "x"
        assert toks[1].is_op("=")
        assert toks[2].kind is TokenKind.NUMBER
        assert toks[2].text == "42"
        assert toks[3].kind is TokenKind.EOF

    def test_float_forms(self):
        assert texts("1.5") == ["1.5"]
        assert texts(".5") == [".5"]
        assert texts("1e3") == ["1e3"]
        assert texts("1.5e-3") == ["1.5e-3"]
        assert texts("2E+10") == ["2E+10"]

    def test_trailing_dot_number(self):
        assert texts("3.") == ["3."]

    def test_imaginary_literal(self):
        assert texts("3i") == ["3i"]
        assert texts("2.5j") == ["2.5j"]

    def test_keywords_recognized(self):
        toks = tokenize("if x end")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[2].kind is TokenKind.KEYWORD

    def test_keyword_prefix_is_ident(self):
        toks = tokenize("iffy = 1")
        assert toks[0].kind is TokenKind.IDENT


class TestOperators:
    def test_elementwise_operators(self):
        assert texts("a .* b") == ["a", ".*", "b"]
        assert texts("a ./ b") == ["a", "./", "b"]
        assert texts("a .^ b") == ["a", ".^", "b"]

    def test_number_dot_star_not_swallowed(self):
        # `2.*x` must lex as 2 .* x (elementwise), not 2. * x
        assert texts("2.*x") == ["2", ".*", "x"]

    def test_comparison_operators(self):
        assert texts("a ~= b") == ["a", "~=", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_short_circuit_ops(self):
        assert texts("a && b || c") == ["a", "&&", "b", "||", "c"]


class TestQuoteDisambiguation:
    def test_transpose_after_ident(self):
        toks = tokenize("a'")
        assert toks[1].is_op("'")

    def test_transpose_after_paren(self):
        toks = tokenize("(a+b)'")
        assert toks[-2].is_op("'")

    def test_string_at_statement_start(self):
        toks = tokenize("s = 'hello'")
        assert toks[2].kind is TokenKind.STRING
        assert toks[2].text == "hello"

    def test_string_after_open_paren(self):
        toks = tokenize("disp('hi')")
        assert toks[2].kind is TokenKind.STRING

    def test_escaped_quote_in_string(self):
        toks = tokenize("s = 'don''t'")
        assert toks[2].text == "don't"

    def test_unterminated_string_raises(self):
        with pytest.raises(MatlabSyntaxError):
            tokenize("s = 'oops")

    def test_transpose_then_string_sequence(self):
        # a' followed by a string on the next statement
        toks = tokenize("b = a'; c = 'str'")
        assert any(t.kind is TokenKind.STRING and t.text == "str" for t in toks)


class TestCommentsAndContinuation:
    def test_comment_to_eol(self):
        toks = tokenize("x = 1 % a comment\ny = 2")
        assert all(t.text != "comment" for t in toks)
        idents = [t.text for t in toks if t.kind is TokenKind.IDENT]
        assert idents == ["x", "y"]

    def test_continuation(self):
        toks = tokenize("x = 1 + ...\n    2")
        assert all(t.kind is not TokenKind.NEWLINE for t in toks)
        assert [t.text for t in toks if t.kind is TokenKind.NUMBER] == [
            "1",
            "2",
        ]

    def test_newlines_collapse(self):
        toks = tokenize("a\n\n\nb")
        newline_count = sum(1 for t in toks if t.kind is TokenKind.NEWLINE)
        assert newline_count == 1


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a = 1\nbb = 2")
        bb = next(t for t in toks if t.text == "bb")
        assert bb.location.line == 2
        assert bb.location.column == 1

    def test_unexpected_char_raises_with_location(self):
        with pytest.raises(MatlabSyntaxError) as exc:
            tokenize("x = $")
        assert "line" not in str(exc.value)  # message carries loc as f:l:c
        assert ":1:5" in str(exc.value)
