"""Unit tests for the MATLAB runtime: arrays, ops, indexing, builtins."""

import numpy as np
import pytest

from repro.runtime import ops
from repro.runtime.builtins import RuntimeContext, call_builtin
from repro.runtime.errors import (
    IndexError_,
    MatlabRuntimeError,
    ShapeConformanceError,
)
from repro.runtime.indexing import COLON, subsasgn, subsref
from repro.runtime.marray import MArray


def arr(values, **kw):
    return MArray.from_numpy(np.array(values, dtype=float), **kw)


def scalar(v):
    return MArray.from_scalar(v)


class TestMArray:
    def test_scalar_is_1x1(self):
        a = scalar(3.5)
        assert a.shape == (1, 1)
        assert a.is_scalar

    def test_column_major_layout(self):
        a = arr([[1, 2], [3, 4]])
        assert list(a.flat()) == [1, 3, 2, 4]

    def test_truthiness_all_nonzero(self):
        assert arr([[1, 2]]).is_true()
        assert not arr([[1, 0]]).is_true()
        assert not MArray.empty().is_true()

    def test_string_roundtrip(self):
        s = MArray.from_string("hello")
        assert s.is_char
        assert s.as_string() == "hello"
        assert s.shape == (1, 5)

    def test_byte_size_by_class(self):
        assert scalar(1.0).byte_size() == 8
        assert MArray.from_scalar(True).byte_size() == 4  # logical → int
        assert MArray.from_scalar(1j).byte_size() == 16
        assert MArray.from_string("ab").byte_size() == 2

    def test_complex_collapses_when_imag_zero(self):
        a = MArray.from_numpy(np.array([[1 + 0j, 2 + 0j]]))
        assert not a.is_complex


class TestElementwiseOps:
    def test_add_equal_shapes(self):
        c = ops.add(arr([[1, 2]]), arr([[10, 20]]))
        assert list(c.flat()) == [11, 22]

    def test_add_scalar_broadcast(self):
        c = ops.add(arr([[1, 2], [3, 4]]), scalar(10))
        assert c.data[1, 1] == 14

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ShapeConformanceError):
            ops.add(arr([[1, 2]]), arr([[1, 2, 3]]))

    def test_elmul(self):
        c = ops.elmul(arr([[2, 3]]), arr([[4, 5]]))
        assert list(c.flat()) == [8, 15]

    def test_eldiv_by_zero_inf(self):
        c = ops.eldiv(scalar(1.0), scalar(0.0))
        assert np.isinf(c.scalar_real())

    def test_elpow_negative_base_fractional(self):
        c = ops.elpow(scalar(-8.0), scalar(1 / 3))
        assert c.is_complex

    def test_comparison_logical(self):
        c = ops.lt(arr([[1, 5]]), scalar(3))
        assert c.is_logical
        assert list(c.flat()) == [1, 0]

    def test_neg(self):
        assert ops.neg(scalar(2)).scalar_real() == -2

    def test_not(self):
        c = ops.not_(arr([[0, 7]]))
        assert list(c.flat()) == [1, 0]


class TestMatrixOps:
    def test_matrix_multiply(self):
        a = arr([[1, 2], [3, 4]])
        b = arr([[5, 6], [7, 8]])
        c = ops.mul(a, b)
        assert c.data[0, 0] == 19

    def test_matmul_conformance(self):
        with pytest.raises(ShapeConformanceError):
            ops.mul(arr([[1, 2]]), arr([[1, 2]]))

    def test_scalar_times_matrix_elementwise(self):
        c = ops.mul(scalar(2), arr([[1, 2], [3, 4]]))
        assert c.data[1, 0] == 6

    def test_left_divide_solves(self):
        a = arr([[2, 0], [0, 4]])
        b = arr([[2], [8]])
        x = ops.ldiv(a, b)
        assert np.allclose(x.flat(), [1, 2])

    def test_right_divide(self):
        # x * a = b  ⇒  x = b / a
        a = arr([[2, 0], [0, 4]])
        b = arr([[2, 8]])
        x = ops.div(b, a)
        assert np.allclose(x.flat(), [1, 2])

    def test_matrix_power(self):
        a = arr([[2, 0], [0, 3]])
        c = ops.pow_(a, scalar(2))
        assert c.data[1, 1] == 9

    def test_transpose_conjugates(self):
        a = MArray.from_numpy(np.array([[1 + 2j]]))
        t = ops.transpose(a, conjugate=True)
        assert t.scalar() == 1 - 2j
        t2 = ops.transpose(a, conjugate=False)
        assert t2.scalar() == 1 + 2j


class TestRangesAndConcat:
    def test_simple_range(self):
        r = ops.make_range(scalar(1), scalar(1), scalar(5))
        assert r.shape == (1, 5)
        assert list(r.flat()) == [1, 2, 3, 4, 5]

    def test_negative_step(self):
        r = ops.make_range(scalar(4), scalar(-1), scalar(1))
        assert list(r.flat()) == [4, 3, 2, 1]

    def test_empty_range(self):
        r = ops.make_range(scalar(5), scalar(1), scalar(1))
        assert r.is_empty

    def test_fractional_step(self):
        r = ops.make_range(scalar(0), scalar(0.5), scalar(2))
        assert r.numel == 5

    def test_horzcat(self):
        c = ops.horzcat([arr([[1], [2]]), arr([[3], [4]])])
        assert c.shape == (2, 2)

    def test_vertcat_mismatch_raises(self):
        with pytest.raises(ShapeConformanceError):
            ops.vertcat([arr([[1, 2]]), arr([[1, 2, 3]])])


class TestSubsref:
    def test_linear_index_column_major(self):
        a = arr([[1, 2], [3, 4]])
        assert subsref(a, [scalar(2)]).scalar_real() == 3

    def test_two_subscripts(self):
        a = arr([[1, 2], [3, 4]])
        assert subsref(a, [scalar(1), scalar(2)]).scalar_real() == 2

    def test_colon_row(self):
        a = arr([[1, 2], [3, 4]])
        row = subsref(a, [scalar(2), COLON])
        assert row.shape == (1, 2)
        assert list(row.flat()) == [3, 4]

    def test_colon_linear_column(self):
        a = arr([[1, 2], [3, 4]])
        col = subsref(a, [COLON])
        assert col.shape == (4, 1)

    def test_vector_gather_keeps_orientation(self):
        v = arr([[10, 20, 30, 40]])
        picked = subsref(v, [arr([[4, 1]])])
        assert picked.shape == (1, 2)
        assert list(picked.flat()) == [40, 10]

    def test_permutation_reverse(self):
        # the paper's 4:-1:1 example
        a = arr([[1, 3], [2, 4]])  # column-major order 1,2,3,4
        rev = subsref(a, [ops.make_range(scalar(4), scalar(-1), scalar(1))])
        assert list(rev.flat()) == [4, 3, 2, 1]

    def test_submatrix(self):
        a = arr([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        sub = subsref(a, [arr([[1, 3]]), arr([[2, 3]])])
        assert sub.shape == (2, 2)
        assert sub.data[1, 0] == 8

    def test_logical_subscript(self):
        v = arr([[5, 6, 7]])
        mask = MArray.from_numpy(np.array([[1, 0, 1]]), is_logical=True)
        picked = subsref(v, [mask])
        assert list(picked.flat()) == [5, 7]

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError_):
            subsref(arr([[1, 2]]), [scalar(5)])

    def test_zero_index_raises(self):
        with pytest.raises(IndexError_):
            subsref(arr([[1, 2]]), [scalar(0)])


class TestSubsasgn:
    def test_simple_element_write(self):
        a = arr([[1, 2], [3, 4]])
        b = subsasgn(a, scalar(9), [scalar(2), scalar(1)])
        assert b.data[1, 0] == 9
        assert a.data[1, 0] == 3  # value semantics: a unchanged

    def test_expansion_zero_fills(self):
        a = arr([[1]])
        b = subsasgn(a, scalar(5), [scalar(3), scalar(3)])
        assert b.shape == (3, 3)
        assert b.data[2, 2] == 5
        assert b.data[1, 1] == 0

    def test_linear_growth_on_vector(self):
        v = arr([[1, 2]])
        grown = subsasgn(v, scalar(9), [scalar(5)])
        assert grown.shape == (1, 5)
        assert grown.data[0, 4] == 9

    def test_linear_growth_on_matrix_raises(self):
        a = arr([[1, 2], [3, 4]])
        with pytest.raises(IndexError_):
            subsasgn(a, scalar(9), [scalar(10)])

    def test_cartesian_product_assignment(self):
        a = MArray.from_numpy(np.zeros((3, 3)))
        rhs = arr([[1, 2], [3, 4]])
        b = subsasgn(a, rhs, [arr([[1, 3]]), arr([[1, 3]])])
        assert b.data[0, 0] == 1
        assert b.data[2, 2] == 4
        assert b.data[1, 1] == 0

    def test_rhs_shape_mismatch_raises(self):
        a = MArray.from_numpy(np.zeros((3, 3)))
        with pytest.raises(MatlabRuntimeError):
            subsasgn(a, arr([[1, 2, 3]]), [arr([[1, 2]]), scalar(1)])

    def test_scalar_fill(self):
        a = MArray.from_numpy(np.zeros((2, 2)))
        b = subsasgn(a, scalar(7), [COLON, scalar(1)])
        assert list(b.data[:, 0]) == [7, 7]

    def test_shrinkage_unsupported(self):
        a = arr([[1, 2, 3]])
        with pytest.raises(MatlabRuntimeError, match="shrinkage"):
            subsasgn(a, MArray.empty(), [scalar(2)])

    def test_complex_rhs_promotes(self):
        a = arr([[1.0, 2.0]])
        b = subsasgn(a, MArray.from_scalar(1j), [scalar(1)])
        assert b.is_complex

    def test_colon_preserves_extent(self):
        a = MArray.from_numpy(np.zeros((2, 3)))
        b = subsasgn(a, arr([[1, 2, 3]]), [scalar(1), COLON])
        assert b.shape == (2, 3)


class TestBuiltins:
    def setup_method(self):
        self.ctx = RuntimeContext()

    def test_zeros_square(self):
        z = call_builtin(self.ctx, "zeros", [scalar(3)])[0]
        assert z.shape == (3, 3)
        assert not z.data.any()

    def test_eye_logical(self):
        e = call_builtin(self.ctx, "eye", [scalar(2)])[0]
        assert e.is_logical
        assert e.data[0, 0] == 1 and e.data[0, 1] == 0

    def test_rand_deterministic_by_seed(self):
        a = call_builtin(RuntimeContext(seed=42), "rand", [scalar(2)])[0]
        b = call_builtin(RuntimeContext(seed=42), "rand", [scalar(2)])[0]
        assert np.allclose(a.data, b.data)

    def test_size_multi_output(self):
        a = MArray.from_numpy(np.zeros((3, 4)))
        m, n = call_builtin(self.ctx, "size", [a], nargout=2)
        assert m.scalar_int() == 3 and n.scalar_int() == 4

    def test_size_vector_output(self):
        a = MArray.from_numpy(np.zeros((3, 4)))
        s = call_builtin(self.ctx, "size", [a])[0]
        assert list(s.flat()) == [3, 4]

    def test_sum_matrix_columns(self):
        a = arr([[1, 2], [3, 4]])
        s = call_builtin(self.ctx, "sum", [a])[0]
        assert list(s.flat()) == [4, 6]

    def test_sum_vector_scalar(self):
        s = call_builtin(self.ctx, "sum", [arr([[1, 2, 3]])])[0]
        assert s.scalar_real() == 6

    def test_min_two_args_elementwise(self):
        c = call_builtin(
            self.ctx, "min", [arr([[1, 5]]), arr([[3, 2]])]
        )[0]
        assert list(c.flat()) == [1, 2]

    def test_max_with_index(self):
        v, i = call_builtin(
            self.ctx, "max", [arr([[3, 9, 4]])], nargout=2
        )
        assert v.scalar_real() == 9
        assert i.scalar_int() == 2

    def test_abs_complex(self):
        c = call_builtin(self.ctx, "abs", [MArray.from_scalar(3 + 4j)])[0]
        assert c.scalar_real() == 5

    def test_sqrt_negative_goes_complex(self):
        c = call_builtin(self.ctx, "sqrt", [scalar(-4)])[0]
        assert c.is_complex

    def test_disp_output_captured(self):
        call_builtin(self.ctx, "disp", [scalar(42)])
        assert self.ctx.captured() == "42\n"

    def test_fprintf_formats(self):
        call_builtin(
            self.ctx,
            "fprintf",
            [MArray.from_string("x = %d, y = %.2f\\n"),
             scalar(3), scalar(1.5)],
        )
        assert self.ctx.captured() == "x = 3, y = 1.50\n"

    def test_error_raises(self):
        with pytest.raises(MatlabRuntimeError, match="boom"):
            call_builtin(self.ctx, "error", [MArray.from_string("boom")])

    def test_find_positions(self):
        f = call_builtin(self.ctx, "find", [arr([[0, 3, 0, 7]])])[0]
        assert list(f.flat()) == [2, 4]

    def test_sort_with_indices(self):
        v, i = call_builtin(
            self.ctx, "sort", [arr([[3, 1, 2]])], nargout=2
        )
        assert list(v.flat()) == [1, 2, 3]
        assert list(i.flat()) == [2, 3, 1]

    def test_norm_vector(self):
        n = call_builtin(self.ctx, "norm", [arr([[3, 4]])])[0]
        assert n.scalar_real() == 5

    def test_tic_toc(self):
        call_builtin(self.ctx, "tic", [])
        t = call_builtin(self.ctx, "toc", [])[0]
        assert t.scalar_real() >= 0
