"""Property-based tests for Phase 2's decomposition invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.decompose import decompose_color_class
from repro.core.storage_order import StorageOrder
from repro.typing.intrinsic import Intrinsic
from repro.typing.ranges import Interval
from repro.typing.shape import Shape
from repro.typing.types import VarType


class _Env:
    def __init__(self, table):
        self.table = table

    def of(self, name):
        return self.table[name]


class _NoAvail:
    def available_at_definition_of(self, u, v):
        return u == v


var_specs = st.lists(
    st.tuples(
        st.sampled_from([Intrinsic.REAL, Intrinsic.BOOLEAN,
                         Intrinsic.INTEGER]),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=1,
    max_size=10,
)


def build(specs):
    table = {}
    for i, (intrinsic, r, c) in enumerate(specs):
        table[f"v{i}"] = VarType(
            intrinsic, Shape.matrix(r, c), Interval.top()
        )
    order = StorageOrder(env=_Env(table), availability=_NoAvail())
    return list(table), table, order


class TestDecomposeInvariants:
    @given(var_specs)
    def test_groups_partition_the_class(self, specs):
        names, table, order = build(specs)
        groups = decompose_color_class(names, order)
        members = [m for g in groups for m in g.members]
        assert sorted(members) == sorted(names)

    @given(var_specs)
    def test_group_root_bounds_members(self, specs):
        names, table, order = build(specs)
        for group in decompose_color_class(names, order):
            root_size = table[group.root].static_storage_size()
            for member in group.members:
                # the root must be a ⪯-upper bound via reachability:
                # at minimum, no member of the same intrinsic exceeds it
                member_type = table[member]
                if member_type.intrinsic == table[group.root].intrinsic:
                    assert (
                        member_type.static_storage_size() <= root_size
                    )

    @given(var_specs)
    def test_groups_are_intrinsic_homogeneous(self, specs):
        # ⪯ never relates different intrinsics, so every group is
        # type-pure (the paper's no-casting/no-alignment design choice)
        names, table, order = build(specs)
        for group in decompose_color_class(names, order):
            kinds = {table[m].intrinsic for m in group.members}
            assert len(kinds) == 1

    @given(var_specs)
    def test_same_intrinsic_forms_single_group(self, specs):
        # §3.2.1: all statically-estimable sizes of one intrinsic in a
        # color class form a chain ⇒ exactly one group per intrinsic
        names, table, order = build(specs)
        groups = decompose_color_class(names, order)
        intrinsics_present = {t.intrinsic for t in table.values()}
        assert len(groups) == len(intrinsics_present)

    @given(var_specs)
    def test_deterministic(self, specs):
        names, table, order = build(specs)
        a = decompose_color_class(names, order)
        b = decompose_color_class(names, order)
        assert [sorted(g.members) for g in a] == [
            sorted(g.members) for g in b
        ]
