"""Unit tests for Phase 1: interference graph, opsem edges, coalescing,
coloring."""

import pytest

from repro.analysis.pass_manager import run_cleanup_pipeline
from repro.core.coalesce import coalesce_phi_webs
from repro.core.coloring import (
    color_graph,
    coloring_order,
    verify_coloring,
)
from repro.core.interference import (
    InterferenceGraph,
    build_interference_graph,
)
from repro.core.opsem import OpsemConfig, add_operator_semantics_interference
from repro.frontend.parser import parse_program
from repro.ir.lower import lower_program
from repro.ssa.construct import base_name, construct_ssa
from repro.typing.infer import infer_types


def prepare(text, cleanup=True, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    func = construct_ssa(lower_program(parse_program(files)))
    if cleanup:
        run_cleanup_pipeline(func)
    env = infer_types(func)
    return func, env


def last_version(func, base):
    versions = [
        r
        for i in func.instructions()
        for r in i.results
        if base_name(r) == base
    ]
    assert versions, f"no versions of {base}"
    return versions[-1]


class TestGraphStructure:
    def test_union_find_coalesce(self):
        g = InterferenceGraph()
        for n in "abcd":
            g.add_node(n)
        g.add_edge("a", "b")
        assert g.coalesce("c", "d")
        assert g.find("c") == g.find("d")
        assert set(g.members("c")) == {"c", "d"}

    def test_coalesce_interfering_fails(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        assert not g.coalesce("a", "b")

    def test_edges_survive_coalescing(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        g.add_node("c")
        g.coalesce("b", "c")
        # a must now interfere with the merged node, via either name
        assert g.interferes("a", "c")
        assert g.interferes("a", "b")

    def test_idempotent_edges(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert g.edge_count() == 1


class TestDuChainInterference:
    def test_overlapping_duchains_interfere(self):
        # paper §2.1: a and b have overlapping du-chains
        func, env = prepare(
            "a = rand(2, 2); b = rand(2, 2); c = a(1, 1); d = b + c;"
            " disp(d);"
        )
        graph, _ = build_interference_graph(func)
        assert graph.interferes(
            last_version(func, "a"), last_version(func, "b")
        )

    def test_sequential_dead_variables_dont_interfere(self):
        func, env = prepare(
            "a = rand(3); s = sum(sum(a)); b = rand(3); t = sum(sum(b));"
            " d = s + t; disp(d);"
        )
        graph, _ = build_interference_graph(func)
        assert not graph.interferes(
            last_version(func, "a"), last_version(func, "b")
        )

    def test_copy_does_not_interfere_with_source(self):
        func, env = prepare(
            "a = rand(2); b = a; disp(b);", cleanup=False
        )
        graph, _ = build_interference_graph(func)
        assert not graph.interferes(
            last_version(func, "a"), last_version(func, "b")
        )

    def test_branch_sides_dont_interfere(self):
        # x and y live on opposite sides: never both available
        func, env = prepare(
            "q = rand(1);\n"
            "if q > 0.5\n x = rand(4); s = sum(sum(x));\n"
            "else\n y = rand(4); s = sum(sum(y));\nend\ndisp(s);"
        )
        graph, _ = build_interference_graph(func)
        assert not graph.interferes(
            last_version(func, "x"), last_version(func, "y")
        )

    def test_loop_carried_interference(self):
        func, env = prepare(
            "a = rand(3); s = 0;\n"
            "for i = 1:3\n s = s + a(i, 1);\nend\ndisp(s);"
        )
        graph, _ = build_interference_graph(func)
        # `a` is live across the loop; every `s` version in the loop
        # interferes with it
        s_final = last_version(func, "s")
        assert graph.interferes(last_version(func, "a"), s_final)


class TestOperatorSemantics:
    def test_matrix_multiply_adds_edges(self):
        func, env = prepare(
            "a = rand(3); b = rand(3); c = a * b; disp(c);"
        )
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        c = last_version(func, "c")
        assert graph.interferes(c, last_version(func, "a"))
        assert graph.interferes(c, last_version(func, "b"))

    def test_scalar_operand_removes_conflict(self):
        # paper §2.3: c = a*b with scalar a ⇒ no opsem edges
        func, env = prepare("b = rand(3); c = 2 * b; disp(c);")
        graph, _ = build_interference_graph(func)
        added = add_operator_semantics_interference(func, graph, env)
        c = last_version(func, "c")
        assert not graph.interferes(c, last_version(func, "b"))

    def test_without_type_info_conservative(self):
        func, env = prepare("b = rand(3); c = 2 * b; disp(c);")
        graph, _ = build_interference_graph(func)
        config = OpsemConfig(use_type_info=False)
        add_operator_semantics_interference(func, graph, env, config)
        # `2` is a literal (still provably scalar even without the env)…
        # use a variable scalar to see the difference:
        func2, env2 = prepare(
            "k = rand(1); b = rand(3); c = k * b; disp(c);"
        )
        g2, _ = build_interference_graph(func2)
        add_operator_semantics_interference(
            func2, g2, env2, OpsemConfig(use_type_info=False)
        )
        assert g2.interferes(
            last_version(func2, "c"), last_version(func2, "b")
        )
        g3, _ = build_interference_graph(func2)
        add_operator_semantics_interference(func2, g3, env2)
        assert not g3.interferes(
            last_version(func2, "c"), last_version(func2, "b")
        )

    def test_array_add_no_edges(self):
        # §2.3.1: array + is always in-place computable
        func, env = prepare(
            "a = rand(3); b = rand(3); c = a + b; disp(c);"
        )
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        c = last_version(func, "c")
        assert not graph.interferes(c, last_version(func, "a"))
        assert not graph.interferes(c, last_version(func, "b"))

    def test_subsref_scalar_subscript_inplace(self):
        # §2.3.2: c = a(1) can be computed in place in a
        func, env = prepare("a = rand(2); c = a(1, 1); disp(c);")
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        assert not graph.interferes(
            last_version(func, "c"), last_version(func, "a")
        )

    def test_subsref_array_subscript_conflicts(self):
        # §2.3.2: a(4:-1:1) permutes — no in-place
        func, env = prepare(
            "a = rand(2); e = 4:-1:1; c = a(e); disp(c);"
        )
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        assert graph.interferes(
            last_version(func, "c"), last_version(func, "a")
        )

    def test_subsasgn_never_conflicts_with_base(self):
        # §2.3.3.1: b formed in a by computing elements backward
        func, env = prepare(
            "a = eye(4); a(2, 2) = 5; disp(a);", cleanup=False
        )
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        versions = [
            r
            for i in func.instructions()
            for r in i.results
            if base_name(r) == "a"
        ]
        assert len(versions) >= 2
        first, second = versions[0], versions[1]
        assert not graph.interferes(first, second)

    def test_transpose_matrix_conflicts(self):
        func, env = prepare("a = rand(3, 4); b = a'; disp(b);")
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        assert graph.interferes(
            last_version(func, "b"), last_version(func, "a")
        )

    def test_transpose_vector_inplace(self):
        # a row→column transpose keeps the column-major layout
        func, env = prepare("a = rand(1, 5); b = a'; disp(b);")
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        assert not graph.interferes(
            last_version(func, "b"), last_version(func, "a")
        )

    def test_elementwise_builtin_inplace(self):
        func, env = prepare("a = rand(4); b = sqrt(a); disp(b);")
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        assert not graph.interferes(
            last_version(func, "b"), last_version(func, "a")
        )

    def test_permuting_builtin_conflicts(self):
        func, env = prepare("a = rand(4); b = fliplr(a); disp(b);")
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        assert graph.interferes(
            last_version(func, "b"), last_version(func, "a")
        )

    def test_disabled_opsem_adds_nothing(self):
        func, env = prepare(
            "a = rand(3); b = rand(3); c = a * b; disp(c);"
        )
        graph, _ = build_interference_graph(func)
        added = add_operator_semantics_interference(
            func, graph, env, OpsemConfig(enabled=False)
        )
        assert added == 0


class TestPhiCoalescing:
    def test_branch_phi_coalesced(self):
        func, env = prepare(
            "q = rand(1);\n"
            "if q > 0.5\n b = rand(4);\nelse\n b = rand(4) + 1;\nend\n"
            "disp(sum(sum(b)));"
        )
        graph, _ = build_interference_graph(func)
        merged = coalesce_phi_webs(func, graph)
        assert merged >= 1

    def test_interfering_phi_not_coalesced(self):
        # the paper's s1/t2 pattern: operand still live after the φ def
        func, env = prepare(
            "s = rand(3); t = rand(3);\n"
            "for k = 1:3\n u = t; t = s; s = u + 1;\nend\n"
            "disp(sum(sum(s))); disp(sum(sum(t)));",
            cleanup=False,
        )
        graph, _ = build_interference_graph(func)
        coalesce_phi_webs(func, graph)
        # correctness: coalesced nodes never interfere internally
        for node in graph.nodes():
            assert node not in graph.neighbors(node)


class TestColoring:
    def test_coloring_valid_on_program(self):
        func, env = prepare(
            "a = rand(3); b = a + 1; c = b * 2; d = c(1, 1); disp(d);"
        )
        graph, _ = build_interference_graph(func)
        add_operator_semantics_interference(func, graph, env)
        coalesce_phi_webs(func, graph)
        coloring = color_graph(graph, coloring_order(func))
        verify_coloring(graph, coloring)

    def test_triangle_needs_three_colors(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        coloring = color_graph(g, ["a", "b", "c"])
        assert coloring.num_colors == 3

    def test_chain_needs_two_colors(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        coloring = color_graph(g, ["a", "b", "c"])
        assert coloring.num_colors == 2
        assert coloring.color_of["a"] == coloring.color_of["c"]

    def test_coalesced_nodes_share_color(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        g.add_node("c")
        g.coalesce("a", "c")
        coloring = color_graph(g, ["a", "b", "c"])
        assert coloring.color_of["a"] == coloring.color_of["c"]

    def test_verify_rejects_bad_coloring(self):
        g = InterferenceGraph()
        g.add_edge("a", "b")
        from repro.core.coloring import Coloring

        bad = Coloring(color_of={"a": 0, "b": 0}, num_colors=1)
        with pytest.raises(AssertionError):
            verify_coloring(g, bad)
