"""Tests for the independent plan checker (:mod:`repro.verify`).

Four angles: the full benchmark suite must verify clean (the checker
agrees with the optimizer it distrusts), the verifier's own dataflow
must agree with the analysis package it deliberately does not share
code with, hand-tampered plans must trip each check individually, and
the mutation self-test must prove the checker can catch a real
unsound coalescing decision."""

import copy

import pytest

from repro.analysis.availability import compute_availability
from repro.analysis.liveness import compute_liveness
from repro.bench.suite import BENCHMARK_NAMES, compile_benchmark
from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.core.allocation import NO_RESIZE, MAY_RESIZE
from repro.core.gctd import GCTDOptions
from repro.ir.instr import MATRIX_BINARY
from repro.verify import (
    ALL_CHECKS,
    PlanViolation,
    VerificationReport,
    flip_one_coalescing,
    recompute_availability,
    recompute_liveness,
    verify_compilation,
    verify_plan,
)

_COMPILED = {}


def compiled(name):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(name)
    return _COMPILED[name]


#: small enough to mutate/tamper repeatedly without slowing the lane.
FAST_NAMES = ("edit", "adpt", "clos", "nb1d")


def merge_groups(plan, a: str, b: str) -> None:
    """Force ``a`` and ``b`` into one group (an unsound plan edit)."""
    target, source = plan.group_of[a], plan.group_of[b]
    if target == source:
        return
    for member in plan.groups[source].members:
        plan.group_of[member] = target
        plan.groups[target].members.append(member)
    plan.groups[source].members = []


# --------------------------------------------------------------------------
# report types
# --------------------------------------------------------------------------


class TestReportTypes:
    def test_empty_report_is_ok(self):
        report = VerificationReport(variables_checked=3, groups_checked=2)
        assert report.ok
        assert report.counts() == {check: 0 for check in ALL_CHECKS}
        assert "plan OK" in report.summary()
        assert "3 variables" in report.summary()

    def test_violations_flip_verdict(self):
        violation = PlanViolation("liveness", "clash", ("a", "b"))
        report = VerificationReport(violations=[violation])
        assert not report.ok
        assert report.counts()["liveness"] == 1
        assert "plan UNSOUND" in report.summary()
        assert "[liveness] clash" in report.summary()

    def test_to_dict_round_trips_to_wire_shape(self):
        violation = PlanViolation("stack", "too small", ("x",))
        doc = VerificationReport(
            violations=[violation],
            variables_checked=7,
            groups_checked=4,
        ).to_dict()
        assert doc["ok"] is False
        assert doc["variables"] == 7
        assert doc["groups"] == 4
        assert doc["violations"] == [
            {"check": "stack", "message": "too small", "names": ["x"]}
        ]


# --------------------------------------------------------------------------
# the suite verifies clean
# --------------------------------------------------------------------------


class TestSuiteIsSound:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_plan_verifies_clean(self, name):
        result = compiled(name)
        report = verify_compilation(result)
        assert report.ok, report.summary()
        assert report.variables_checked > 0
        assert report.groups_checked == len(result.plan.groups)

    def test_trivial_no_gctd_plan_verifies_clean(self):
        result = compile_program(
            {"t.m": "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"},
            options=CompilerOptions(gctd=GCTDOptions(enabled=False)),
        )
        report = verify_compilation(result)
        assert report.ok, report.summary()

    def test_verify_plan_equals_verify_compilation(self):
        result = compiled("edit")
        direct = verify_plan(result.ssa_func, result.env, result.plan)
        wrapped = verify_compilation(result)
        assert direct.to_dict() == wrapped.to_dict()


# --------------------------------------------------------------------------
# the two dataflow implementations agree
# --------------------------------------------------------------------------


class TestIndependentDataflowAgrees:
    """`repro.verify.dataflow` (FIFO worklist) vs `repro.analysis`
    (round-robin): different algorithms, same fixed point."""

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_liveness_fixed_points_match(self, name):
        func = compiled(name).ssa_func
        ours = recompute_liveness(func)
        theirs = compute_liveness(func)
        for bid in func.blocks:
            assert ours.live_in[bid] == theirs.live_in[bid], bid
            assert ours.live_out[bid] == theirs.live_out[bid], bid

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_availability_fixed_points_match(self, name):
        func = compiled(name).ssa_func
        ours = recompute_availability(func)
        theirs = compute_availability(func)
        for bid in func.blocks:
            assert ours.avail_in[bid] == theirs.avail_in[bid], bid
            assert ours.avail_out[bid] == theirs.avail_out[bid], bid
        assert set(ours.at_def) == set(theirs.at_def)
        for name_ in ours.at_def:
            assert ours.at_def[name_] == theirs.at_def[name_], name_


# --------------------------------------------------------------------------
# hand-tampered plans trip each check
# --------------------------------------------------------------------------


def tampered(name="edit"):
    result = compiled(name)
    return result, copy.deepcopy(result.plan)


class TestTamperedPlans:
    def test_unassigned_variable_trips_coverage(self):
        result, plan = tampered()
        victim = sorted(plan.group_of)[0]
        del plan.group_of[victim]
        report = verify_plan(result.ssa_func, result.env, plan)
        assert report.counts()["coverage"] >= 1
        assert any(
            victim in v.names
            for v in report.violations
            if v.check == "coverage"
        )

    def test_member_list_mismatch_trips_coverage(self):
        result, plan = tampered()
        victim = sorted(plan.group_of)[0]
        group = plan.groups[plan.group_of[victim]]
        group.members.remove(victim)
        report = verify_plan(result.ssa_func, result.env, plan)
        assert any(
            "not in its member list" in v.message
            for v in report.violations
            if v.check == "coverage"
        )

    def test_stack_group_without_static_size_trips_stack(self):
        result, plan = tampered()
        group = next(g for g in plan.groups if g.is_stack)
        group.static_size = None
        report = verify_plan(result.ssa_func, result.env, plan)
        assert any(
            "no static size" in v.message
            for v in report.violations
            if v.check == "stack"
        )

    def test_undersized_stack_buffer_trips_stack(self):
        result, plan = tampered()
        group = next(
            g
            for g in plan.groups
            if g.is_stack and g.members and g.static_size
        )
        group.static_size = 0
        report = verify_plan(result.ssa_func, result.env, plan)
        assert any(
            "reserves only 0" in v.message
            for v in report.violations
            if v.check == "stack"
        )

    def test_missing_resize_mark_trips_resize(self):
        for name in FAST_NAMES:
            result, plan = tampered(name)
            heap_marked = [
                var
                for var, gid in plan.group_of.items()
                if not plan.groups[gid].is_stack
                and var in plan.resize_marks
            ]
            if not heap_marked:
                continue
            victim = sorted(heap_marked)[0]
            del plan.resize_marks[victim]
            report = verify_plan(result.ssa_func, result.env, plan)
            assert any(
                "no resize annotation" in v.message
                for v in report.violations
                if v.check == "resize"
            )
            return
        pytest.skip("no heap-resident definitions in the fast set")

    def test_downgraded_resize_mark_trips_resize(self):
        for name in BENCHMARK_NAMES:
            result, plan = tampered(name)
            resizable = [
                var
                for var, mark in plan.resize_marks.items()
                if mark == MAY_RESIZE
                and not plan.groups[plan.group_of[var]].is_stack
            ]
            if not resizable:
                continue
            victim = sorted(resizable)[0]
            plan.resize_marks[victim] = NO_RESIZE  # lie: claim ∘ for ±
            report = verify_plan(result.ssa_func, result.env, plan)
            assert any(
                victim in v.names
                for v in report.violations
                if v.check == "resize"
            ), report.summary()
            return
        pytest.skip("suite has no ± heap definition to downgrade")

    def test_inplace_illegal_merge_trips_opsem(self):
        # c = a * b is matrix multiply: c may alias neither operand, so
        # forcing c and a into one group must raise an opsem violation.
        result = compile_program(
            {
                "t.m": (
                    "a = rand(3); b = rand(3);\n"
                    "c = a * b;\n"
                    "disp(sum(sum(c)));\n"
                )
            }
        )
        matmul = next(
            i
            for i in result.ssa_func.instructions()
            if i.op in MATRIX_BINARY
        )
        res, operand = matmul.results[0], matmul.args[0].name
        plan = copy.deepcopy(result.plan)
        assert not plan.same_storage(res, operand)
        merge_groups(plan, res, operand)
        report = verify_plan(result.ssa_func, result.env, plan)
        assert any(
            {res, operand} <= set(v.names)
            for v in report.violations
            if v.check == "opsem"
        ), report.summary()

    def test_tampering_never_touches_the_original(self):
        result = compiled("edit")
        before = verify_compilation(result).to_dict()
        _, plan = tampered()
        plan.group_of.clear()
        assert verify_compilation(result).to_dict() == before


# --------------------------------------------------------------------------
# mutation self-test
# --------------------------------------------------------------------------


class TestMutationSelfTest:
    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_flipped_coalescing_is_flagged(self, name):
        result = compiled(name)
        mutation = flip_one_coalescing(result)
        assert mutation is not None, (
            f"{name}: no interfering pair to flip"
        )
        report = verify_plan(
            result.ssa_func, result.env, mutation.plan
        )
        assert not report.ok, (
            f"{name}: verifier missed the unsound merge of "
            f"{mutation.merged}"
        )

    def test_mutation_merges_an_interfering_pair(self):
        result = compiled("edit")
        mutation = flip_one_coalescing(result)
        a, b = mutation.merged
        assert result.gctd.graph.interferes(a, b)
        assert mutation.plan.same_storage(a, b)
        assert not result.plan.same_storage(a, b)  # original untouched

    def test_no_gctd_plan_has_nothing_to_flip(self):
        result = compile_program(
            {"t.m": "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"},
            options=CompilerOptions(gctd=GCTDOptions(enabled=False)),
        )
        assert flip_one_coalescing(result) is None
