"""Tests for :mod:`repro.faults` and every hardened injection path.

Covers the fault-plan data model, injector determinism, the cache's
checksum/quarantine machinery, the cc-backend injection point, the
retrying client + circuit breaker (through the ``_attempt`` seam, no
sockets), and graceful degradation to the mcc all-heap plan —
including the property that the fallback verifies clean on every
benchmark and that degraded responses round-trip over the wire.
"""

import errno
import json
import pickle

import pytest
import urllib.error
from hypothesis import given, settings, strategies as st

from repro.bench.suite import BENCHMARK_NAMES, load_sources
from repro.compiler.pipeline import compile_program
from repro.core.gctd import mcc_fallback_result
from repro.faults import (
    ALL_KINDS,
    ALL_SITES,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    chaos_plan,
    load_fault_plan,
)
from repro.server.client import (
    CircuitBreaker,
    CircuitOpenError,
    ClientResponse,
    RetryPolicy,
    ServerClient,
)
from repro.service.cache import ArtifactCache
from repro.verify.checker import verify_plan

PROGRAM = "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"
SOURCES = {"main.m": PROGRAM}


def gctd_crash_injector(seed: int = 1, **rule_kw) -> FaultInjector:
    return FaultInjector(
        FaultPlan(
            seed=seed,
            rules=(FaultRule("gctd.run", "crash", **rule_kw),),
        )
    )


# --------------------------------------------------------------------------
# Fault plans
# --------------------------------------------------------------------------


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = chaos_plan(42, rate=0.25)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert load_fault_plan(path) == plan

    def test_dict_round_trip_every_kind(self):
        for kind in ALL_KINDS:
            rule = FaultRule("cache.write", kind, rate=0.5, max_fires=2)
            assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule("cache.write", "meteor_strike").validate()

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule("cache.write", "crash", rate=1.5).validate()

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "surprise": True})
        with pytest.raises(FaultPlanError):
            FaultRule.from_dict(
                {"site": "cache.write", "kind": "crash", "oops": 1}
            )

    def test_bad_file_rejected(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(FaultPlanError):
            load_fault_plan(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError):
            load_fault_plan(bad)

    def test_chaos_plan_covers_the_required_surface(self):
        plan = chaos_plan(7)
        sites = {rule.site for rule in plan.rules}
        kinds = {rule.kind for rule in plan.rules}
        assert len(sites) >= 4
        assert len(kinds) >= 5
        assert sites <= set(ALL_SITES)


# --------------------------------------------------------------------------
# Injector
# --------------------------------------------------------------------------


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        schedule = []
        for _ in range(2):
            injector = FaultInjector(chaos_plan(11, rate=0.4))
            for _ in range(50):
                injector.pick("cache.write")
            schedule.append(
                [fault.to_dict() for fault in injector.injected]
            )
        assert schedule[0] == schedule[1]
        assert schedule[0]  # something actually fired

    def test_different_seed_different_schedule(self):
        def run(seed):
            injector = FaultInjector(chaos_plan(seed, rate=0.4))
            for _ in range(50):
                injector.pick("cache.write")
            return [fault.to_dict() for fault in injector.injected]

        assert run(1) != run(2)

    def test_disabled_injector_never_fires(self):
        injector = FaultInjector()
        assert not injector.enabled
        assert injector.pick("cache.write") is None
        injector.interrupt("gctd.run")  # no-op
        assert injector.mangle("cache.write", b"abc") == b"abc"

    def test_max_fires_caps_a_rule(self):
        injector = FaultInjector(
            FaultPlan(
                seed=0,
                rules=(
                    FaultRule("x", "crash", rate=1.0, max_fires=3),
                ),
            )
        )
        fired = sum(
            injector.pick("x") is not None for _ in range(10)
        )
        assert fired == 3

    def test_interrupt_crash_raises(self):
        injector = gctd_crash_injector()
        with pytest.raises(FaultInjected):
            injector.interrupt("gctd.run")

    def test_interrupt_enospc_raises_oserror(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule("s", "enospc"),))
        )
        with pytest.raises(OSError) as info:
            injector.interrupt("s")
        assert info.value.errno == errno.ENOSPC

    def test_interrupt_hang_sleeps(self):
        naps = []
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule("s", "hang", delay_seconds=0.125),
                )
            ),
            sleep=naps.append,
        )
        injector.interrupt("s")
        assert naps == [0.125]

    def test_mangle_torn_and_corrupt(self):
        torn = FaultInjector(
            FaultPlan(rules=(FaultRule("s", "torn_write"),))
        )
        assert torn.mangle("s", b"0123456789") == b"01234"
        corrupt = FaultInjector(
            FaultPlan(rules=(FaultRule("s", "corrupt_bytes"),))
        )
        data = b"0123456789" * 10
        mangled = corrupt.mangle("s", data)
        assert mangled != data and len(mangled) == len(data)

    def test_on_fire_hook_and_counts(self):
        seen = []
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule("s", "crash", max_fires=2),)),
            on_fire=seen.append,
        )
        for _ in range(5):
            injector.pick("s")
        assert len(seen) == 2
        assert injector.counts() == {("s", "crash"): 2}


# --------------------------------------------------------------------------
# Cache hardening: checksums, quarantine, ENOSPC tolerance
# --------------------------------------------------------------------------


class TestCacheHardening:
    def _store_one(self, cache):
        result = compile_program(SOURCES, cache=cache)
        fingerprint = cache.fingerprint(SOURCES, None, None)
        assert cache.object_dir(fingerprint).is_dir()
        return result, fingerprint

    def test_meta_records_checksums(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        _, fingerprint = self._store_one(cache)
        meta = json.loads(
            (cache.object_dir(fingerprint) / "meta.json").read_text()
        )
        assert set(meta["checksums"]) == {"plan", "report", "c_source"}

    def test_corrupt_plan_is_quarantined_not_served(self, tmp_path):
        quarantined = []
        cache = ArtifactCache(
            tmp_path / "cache", on_quarantine=quarantined.append
        )
        _, fingerprint = self._store_one(cache)
        plan_path = cache.object_dir(fingerprint) / "plan"
        # flip bytes but keep it a valid pickle prefix-wise: the
        # checksum must catch it even if unpickling might not
        plan_path.write_bytes(b"\xff" + plan_path.read_bytes()[1:])

        fresh = ArtifactCache(
            tmp_path / "cache", on_quarantine=quarantined.append
        )
        assert fresh.load(fingerprint) is None
        assert fresh.stats.quarantined == 1
        assert fresh.stats.misses == 1
        assert quarantined == [fingerprint]
        # the entry moved aside — preserved for autopsy, never served
        assert not fresh.object_dir(fingerprint).exists()
        assert fresh.quarantined_entries() == [f"{fingerprint}-0"]
        # recompile transparently re-derives a clean entry
        compile_program(SOURCES, cache=fresh)
        assert fresh.load(fingerprint) is not None
        assert fresh.quarantined_entries() == [f"{fingerprint}-0"]

    def test_truncated_c_source_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        _, fingerprint = self._store_one(cache)
        c_path = cache.object_dir(fingerprint) / "c_source"
        c_path.write_bytes(c_path.read_bytes()[: 10])
        fresh = ArtifactCache(tmp_path / "cache")
        assert fresh.load(fingerprint) is None
        assert fresh.stats.quarantined == 1

    def test_injected_torn_write_round_trips_to_quarantine(
        self, tmp_path
    ):
        """End to end: fault on write -> checksum catches it on load."""
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule(
                        "cache.write", "torn_write", max_fires=1
                    ),
                )
            )
        )
        cache = ArtifactCache(tmp_path / "cache", injector=injector)
        _, fingerprint = self._store_one(cache)
        assert injector.injected  # the write really was torn
        fresh = ArtifactCache(tmp_path / "cache")
        assert fresh.load(fingerprint) is None
        assert fresh.stats.quarantined == 1

    def test_injected_enospc_degrades_to_memory_only(self, tmp_path):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule("cache.write", "enospc"),))
        )
        cache = ArtifactCache(tmp_path / "cache", injector=injector)
        result = compile_program(SOURCES, cache=cache)
        fingerprint = cache.fingerprint(SOURCES, None, None)
        assert cache.stats.write_errors >= 1
        # no disk entry, but the same process still serves from memory
        assert not cache.object_dir(fingerprint).exists()
        assert cache.load(fingerprint) is result

    def test_old_entry_without_checksums_still_loads(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        _, fingerprint = self._store_one(cache)
        meta_path = cache.object_dir(fingerprint) / "meta.json"
        meta = json.loads(meta_path.read_text())
        del meta["checksums"]
        meta_path.write_text(json.dumps(meta))
        fresh = ArtifactCache(tmp_path / "cache")
        assert fresh.load(fingerprint) is not None
        assert fresh.stats.quarantined == 0


# --------------------------------------------------------------------------
# cc backend injection
# --------------------------------------------------------------------------


class TestCCInjection:
    def test_injected_crash_preempts_compile(self):
        from repro.backend.cc import compile_and_run

        injector = FaultInjector(
            FaultPlan(rules=(FaultRule("cc.compile", "crash"),))
        )
        with pytest.raises(FaultInjected):
            compile_and_run("int main(void){return 0;}",
                            injector=injector)

    def test_injected_hang_delays_then_proceeds_or_fails_cleanly(self):
        naps = []
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule(
                        "cc.compile", "hang", delay_seconds=0.01
                    ),
                )
            ),
            sleep=naps.append,
        )
        from repro.backend.cc import CCompilerUnavailable, compile_and_run

        try:
            compile_and_run("int main(void){return 0;}",
                            injector=injector)
        except CCompilerUnavailable:
            pass  # no host cc in this environment; the hang still fired
        assert naps == [0.01]


# --------------------------------------------------------------------------
# Retrying client (through the _attempt seam — no sockets)
# --------------------------------------------------------------------------


class ScriptedClient(ServerClient):
    """ServerClient whose attempts follow a canned script."""

    def __init__(self, script, **kwargs):
        kwargs.setdefault("sleep", self._record_sleep)
        super().__init__("http://test.invalid", **kwargs)
        self.script = list(script)
        self.attempts = 0
        self.naps = []

    def _record_sleep(self, seconds):
        self.naps.append(seconds)

    def _attempt(self, request):
        self.attempts += 1
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


def _response(status, payload=None, headers=None):
    payload = payload if payload is not None else {"ok": status == 200}
    return ClientResponse(
        status=status,
        payload=payload,
        text=json.dumps(payload),
        headers=headers or {},
    )


class TestRetryPolicy:
    def test_no_policy_means_single_attempt(self):
        client = ScriptedClient([_response(503)])
        assert client.get("/readyz").status == 503
        assert client.attempts == 1

    def test_retries_until_success(self):
        client = ScriptedClient(
            [
                urllib.error.URLError("refused"),
                _response(503),
                _response(200),
            ],
            retry=RetryPolicy(retries=3, backoff_seconds=0.01, seed=7),
        )
        assert client.get("/readyz").status == 200
        assert client.attempts == 3
        assert len(client.naps) == 2

    def test_budget_exhaustion_returns_last_response(self):
        client = ScriptedClient(
            [_response(503), _response(503)],
            retry=RetryPolicy(retries=1, backoff_seconds=0.0),
        )
        assert client.get("/readyz").status == 503
        assert client.attempts == 2

    def test_budget_exhaustion_raises_last_transport_error(self):
        client = ScriptedClient(
            [
                urllib.error.URLError("a"),
                urllib.error.URLError("b"),
            ],
            retry=RetryPolicy(retries=1, backoff_seconds=0.0),
        )
        with pytest.raises(urllib.error.URLError):
            client.get("/readyz")

    def test_hard_4xx_is_not_retried(self):
        client = ScriptedClient(
            [_response(400)],
            retry=RetryPolicy(retries=5, backoff_seconds=0.0),
        )
        assert client.get("/readyz").status == 400
        assert client.attempts == 1

    def test_retry_after_header_overrides_backoff(self):
        client = ScriptedClient(
            [
                _response(429, headers={"Retry-After": "0.25"}),
                _response(200),
            ],
            retry=RetryPolicy(retries=1, backoff_seconds=99.0,
                              max_backoff_seconds=99.0),
        )
        assert client.get("/readyz").status == 200
        assert client.naps == [0.25]

    def test_retry_after_detail_overrides_backoff(self):
        payload = {
            "ok": False,
            "detail": {"retry_after_seconds": 0.125},
        }
        client = ScriptedClient(
            [_response(429, payload=payload), _response(200)],
            retry=RetryPolicy(retries=1, backoff_seconds=99.0,
                              max_backoff_seconds=99.0),
        )
        assert client.get("/readyz").status == 200
        assert client.naps == [0.125]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(
            retries=3, backoff_seconds=0.1, max_backoff_seconds=0.5,
            seed=3,
        )

        def schedule():
            client = ScriptedClient(
                [_response(503)] * 3 + [_response(200)], retry=policy
            )
            client.get("/readyz")
            return client.naps

        first, second = schedule(), schedule()
        assert first == second
        for attempt, nap in enumerate(first):
            assert 0.0 <= nap <= min(0.5, 0.1 * 2**attempt)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=10.0,
            clock=lambda: now[0],
        )
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        now[0] = 11.0
        assert breaker.allow()          # half-open probe
        assert not breaker.allow()      # only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0,
            clock=lambda: now[0],
        )
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_client_fails_fast_when_open(self):
        breaker = CircuitBreaker(failure_threshold=1)
        client = ScriptedClient(
            [urllib.error.URLError("down")],
            retry=RetryPolicy(retries=0),
            breaker=breaker,
        )
        with pytest.raises(urllib.error.URLError):
            client.get("/readyz")
        with pytest.raises(CircuitOpenError):
            client.get("/readyz")
        assert client.attempts == 1


# --------------------------------------------------------------------------
# Graceful degradation
# --------------------------------------------------------------------------


class TestDegradation:
    def test_injected_crash_degrades_and_verifies(self):
        result = compile_program(
            SOURCES, degrade=True, injector=gctd_crash_injector(),
            verify_plan=True,
        )
        assert result.degraded
        assert "gctd failed" in result.degraded_reason
        assert result.verification.ok
        assert not any(g.is_stack for g in result.plan.groups)

    def test_without_degrade_the_crash_propagates(self):
        with pytest.raises(FaultInjected):
            compile_program(SOURCES, injector=gctd_crash_injector())

    def test_deadline_exceedance_degrades(self):
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule(
                        "gctd.run", "hang", delay_seconds=0.05
                    ),
                )
            )
        )
        result = compile_program(
            SOURCES,
            degrade=True,
            gctd_deadline_seconds=0.01,
            injector=injector,
        )
        assert result.degraded
        assert "deadline" in result.degraded_reason

    def test_degraded_results_are_not_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        injector = gctd_crash_injector(max_fires=1)
        degraded = compile_program(
            SOURCES, degrade=True, injector=injector, cache=cache
        )
        assert degraded.degraded
        fingerprint = cache.fingerprint(SOURCES, None, None)
        assert cache.load(fingerprint) is None
        # the next compile (fault budget spent) is clean and cached
        clean = compile_program(
            SOURCES, degrade=True, injector=injector, cache=cache
        )
        assert not clean.degraded
        assert cache.load(fingerprint) is not None

    def test_degraded_executes_like_the_real_plan(self):
        real = compile_program(SOURCES)
        degraded = compile_program(
            SOURCES, degrade=True, injector=gctd_crash_injector()
        )
        assert degraded.run_mat2c(aliased=True).output == \
            real.run_mat2c(aliased=True).output

    def test_old_pickles_without_the_field_read_as_undegraded(self):
        result = compile_program(SOURCES)
        clone = pickle.loads(pickle.dumps(result))
        assert getattr(clone, "degraded", False) is False


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_mcc_fallback_verifies_clean_on_every_benchmark(name):
    """The degradation target is sound for the whole paper suite."""
    result = compile_program(load_sources(name))
    fallback = mcc_fallback_result(result.ssa_func, result.env)
    report = verify_plan(result.ssa_func, result.env, fallback.plan)
    assert report.ok, report.summary()
    assert not any(g.is_stack for g in fallback.plan.groups)


# --------------------------------------------------------------------------
# Properties
# --------------------------------------------------------------------------


@settings(max_examples=20)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_degradation_under_random_fault_seeds_is_always_sound(seed):
    """Whatever the schedule does to GCTD, the result verifies."""
    injector = FaultInjector(chaos_plan(seed, rate=0.5))
    result = compile_program(
        SOURCES, degrade=True, injector=injector, verify_plan=True
    )
    assert result.verification.ok
    if result.degraded:
        assert not any(g.is_stack for g in result.plan.groups)


@settings(max_examples=30)
@given(
    degraded=st.booleans(),
    name=st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd")
        ),
        max_size=12,
    ),
    wall=st.floats(
        min_value=0.0, max_value=1e3, allow_nan=False
    ),
)
def test_degraded_responses_round_trip_the_wire(degraded, name, wall):
    from repro.api import CompileResponse, CompileStats

    response = CompileResponse(
        name=name,
        fingerprint="f" * 64,
        entry="main",
        wall_seconds=wall,
        stats=CompileStats(variables=3, degraded=degraded),
        report="r",
        degraded=degraded,
    )
    wire = response.to_wire()
    assert ("degraded" in wire) == degraded
    assert ("degraded" in wire["stats"]) == degraded
    clone = CompileResponse.from_wire(
        json.loads(json.dumps(wire))
    )
    assert clone.degraded == degraded
    assert clone.stats.degraded == degraded
    assert clone.to_wire() == wire
