"""Batch-driver tests: single-flight, cache reuse, pool degradation."""

import pytest

from repro.compiler.pipeline import CompilerOptions
from repro.core.gctd import GCTDOptions
from repro.service.cache import ArtifactCache
from repro.service.driver import (
    CompileRequest,
    compile_many,
    effective_jobs,
    parallel_map,
)

SRC_A = "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"
SRC_B = "x = zeros(3); x(2, 2) = 5; disp(sum(sum(x)));\n"


def req(src=SRC_A, name="prog", options=None):
    return CompileRequest(
        {"prog.m": src}, options=options, name=name
    )


class TestCompileMany:
    def test_serial_batch(self):
        batch = compile_many([req(SRC_A, "a"), req(SRC_B, "b")], jobs=1)
        assert batch.executor == "serial"
        assert [item.name for item in batch.items] == ["a", "b"]
        assert all(item.result is not None for item in batch.items)
        assert batch.items[0].result.run_mat2c().output == "32\n"

    def test_request_order_preserved(self):
        batch = compile_many(
            [req(SRC_B, "b"), req(SRC_A, "a")], jobs=1
        )
        assert [item.name for item in batch.items] == ["b", "a"]

    def test_single_flight_dedup(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        batch = compile_many(
            [req(SRC_A, "one"), req(SRC_A, "two")], jobs=2, cache=cache
        )
        leader, follower = batch.items
        assert not leader.deduped and follower.deduped
        assert follower.result is leader.result
        assert leader.fingerprint == follower.fingerprint
        # only the leader compiled: exactly one entry was stored
        assert len(cache.entries()) == 1

    def test_distinct_options_not_deduped(self):
        nogctd = CompilerOptions(gctd=GCTDOptions(enabled=False))
        batch = compile_many(
            [req(SRC_A, "on"), req(SRC_A, "off", options=nogctd)],
            jobs=1,
        )
        assert not batch.items[1].deduped
        assert (
            batch.items[0].fingerprint != batch.items[1].fingerprint
        )

    def test_cache_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = compile_many([req(SRC_A), req(SRC_B, "b")], cache=cache)
        assert cold.cache_hits == 0
        warm = compile_many([req(SRC_A), req(SRC_B, "b")], cache=cache)
        assert warm.cache_hits == 2
        assert warm.executor == "cache"  # nothing reached a worker
        assert all(item.result is not None for item in warm.items)

    def test_per_item_error_captured(self):
        batch = compile_many(
            [req("this is ( not matlab", "bad"), req(SRC_A, "good")],
            jobs=1,
        )
        bad, good = batch.items
        assert bad.error is not None and bad.result is None
        assert good.error is None and good.result is not None
        assert batch.errors == [bad]

    def test_trace_collected(self):
        batch = compile_many([req(SRC_A)], jobs=1, trace=True)
        trace = batch.items[0].trace
        assert trace is not None
        names = [p["name"] for p in trace["passes"]]
        assert names[0] == "parse" and "gctd" in names

    def test_pool_path(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        batch = compile_many(
            [req(SRC_A, "a"), req(SRC_B, "b")], jobs=2, cache=cache
        )
        assert batch.executor in ("pool", "serial")  # pool if it started
        assert all(item.result is not None for item in batch.items)
        # workers (or the serial fallback) persisted both artifacts
        assert len(cache.entries()) == 2


class TestDegradation:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import repro.service.driver as driver_mod

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("fork refused")

        monkeypatch.setattr(
            driver_mod, "ProcessPoolExecutor", ExplodingPool
        )
        batch = compile_many(
            [req(SRC_A, "a"), req(SRC_B, "b")], jobs=4
        )
        assert batch.executor.startswith("serial (pool failed")
        assert all(item.result is not None for item in batch.items)
        assert batch.items[0].result.run_mat2c().output == "32\n"

    def test_compile_errors_do_not_trigger_fallback(self, monkeypatch):
        # a broken program is a per-item error, not a pool failure
        batch = compile_many([req("x = (;", "bad")], jobs=4)
        assert batch.items[0].error is not None
        assert "pool failed" not in batch.executor


class TestParallelMapHelpers:
    def test_effective_jobs(self):
        assert effective_jobs(1, 10) == 1
        assert effective_jobs(8, 3) == 3
        assert effective_jobs(None, 5) >= 1
        assert effective_jobs(0, 5) >= 1

    def test_parallel_map_serial_for_single_item(self):
        results, executor = parallel_map(len, [[1, 2, 3]], jobs=8)
        assert results == [3] and executor == "serial"


class TestBenchSweep:
    def test_collect_records_cached_sweep(self, tmp_path, monkeypatch):
        import repro.bench.experiments as experiments

        monkeypatch.setattr(
            experiments, "BENCHMARK_NAMES", ("edit",)
        )
        root = str(tmp_path / "cache")
        records, infos, _ = experiments.collect_records(cache_root=root)
        assert set(records) == {"edit"}
        assert not infos[0]["record_cached"]
        assert infos[0]["compile_seconds"] > 0
        records2, infos2, _ = experiments.collect_records(
            cache_root=root
        )
        assert infos2[0]["record_cached"] and infos2[0]["cache_hit"]
        first = records["edit"].mat2c.report.execution_seconds
        second = records2["edit"].mat2c.report.execution_seconds
        assert first == second  # the cached record is the same measure
