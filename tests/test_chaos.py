"""Chaos suite: the compile server under seeded fault schedules.

A :class:`FaultInjector` running :func:`chaos_plan` is wired into a
real :class:`ServerThread` while retrying clients hammer it from
several threads.  Whatever the schedule does — torn cache writes,
GCTD crashes, dead workers, dropped connections — the invariants must
hold:

* the server survives the run and still answers ``/readyz``;
* every 2xx body parses, reports ``ok``, and carries a clean
  verification report (degraded or not — never corrupt);
* every non-2xx is a typed error envelope with ``code`` + ``message``;
* quarantined cache entries are never served again.

The schedules themselves are deterministic: with serial consultation,
the same seed injects exactly the same faults, so any failure here
replays from the seed in the test name.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import ErrorEnvelope
from repro.faults import ALL_SITES, FaultInjector, chaos_plan
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.server.client import TRANSPORT_ERRORS, RetryPolicy

PROGRAMS = [
    "a = ones(4); b = a * 2; disp(sum(sum(b)));\n",
    "x = zeros(5); y = x + 3; disp(sum(sum(y)));\n",
    "p = ones(3); q = p + p; r = q * 2; disp(sum(sum(r)));\n",
]


def make_config(tmp_path, **overrides) -> ServerConfig:
    values = {
        "port": 0,
        "workers": 2,
        "queue_limit": 16,
        "cache_root": str(tmp_path / "cache"),
        "drain_seconds": 5.0,
    }
    values.update(overrides)
    return ServerConfig(**values)


def make_client(url, seed=0):
    return ServerClient(
        url,
        timeout=30.0,
        retry=RetryPolicy(
            retries=6, backoff_seconds=0.01,
            max_backoff_seconds=0.1, seed=seed,
        ),
    )


def check_response(response, failures, index):
    """Apply the per-response invariants; record violations."""
    if response.status == 200:
        if not response.payload.get("ok"):
            failures.append(f"request {index}: 2xx without ok=true")
        verification = response.payload.get("verification")
        if not isinstance(verification, dict) or not verification.get(
            "ok"
        ):
            failures.append(
                f"request {index}: 2xx without clean verification: "
                f"{verification!r}"
            )
        # a corrupt body would have failed json parsing inside the
        # client; re-serialize to prove the payload is well-formed
        json.dumps(response.payload)
    else:
        envelope = response.envelope()
        if not isinstance(envelope, ErrorEnvelope):
            failures.append(f"request {index}: non-2xx without envelope")
        elif not envelope.code or not envelope.message:
            failures.append(
                f"request {index}: envelope missing code/message: "
                f"{response.payload!r}"
            )


class TestChaos:
    def test_plan_covers_the_required_surface(self):
        plan = chaos_plan(0)
        assert len({r.site for r in plan.rules}) >= 4
        assert len({r.kind for r in plan.rules}) >= 5

    @pytest.mark.parametrize("seed", [20030609, 7])
    def test_server_survives_concurrent_chaos(self, tmp_path, seed):
        injector = FaultInjector(chaos_plan(seed, rate=0.25))
        config = make_config(tmp_path / f"s{seed}")
        failures: list[str] = []
        with ServerThread(config, injector=injector) as server:
            def one(index):
                client = make_client(server.url, seed=index)
                program = PROGRAMS[index % len(PROGRAMS)]
                try:
                    response = client.compile(
                        {"main.m": program},
                        verify_plan=True,
                        name=f"chaos-{index}",
                    )
                except TRANSPORT_ERRORS:
                    return  # retry budget lost to dropped connections
                check_response(response, failures, index)

            with ThreadPoolExecutor(max_workers=6) as pool:
                list(pool.map(one, range(30)))

            # the server must still be standing and answering; the
            # probe retries because the injector can drop its replies
            probe = make_client(server.url)
            ready = probe.ready()
            assert ready.status == 200, ready.text
            metrics = probe.metrics_text()

        assert not failures, "\n".join(failures)
        # the run was a real chaos run, not a quiet one
        assert injector.injected, "no faults fired; rate/seed too tame"
        fired_sites = {site for site, _ in injector.counts()}
        assert fired_sites & set(ALL_SITES)
        assert "repro_faults_injected_total" in metrics

    def test_quarantined_entries_are_never_served(self, tmp_path):
        from repro.service.cache import ArtifactCache

        # drive cache.write hard so torn/corrupt payloads land on disk
        injector = FaultInjector(chaos_plan(99, rate=0.6))
        config = make_config(tmp_path)
        with ServerThread(config, injector=injector) as server:
            client = make_client(server.url)
            for program in PROGRAMS * 2:
                try:
                    client.compile({"main.m": program}, verify_plan=True)
                except TRANSPORT_ERRORS:
                    continue
            cache_root = server.server.cache.root

        # first sweep over the survivors quarantines anything corrupt
        sweep = ArtifactCache(cache_root)
        for fingerprint in sweep.entries():
            sweep.load(fingerprint)
        for name in sweep.quarantined_entries():
            assert (sweep.quarantine_dir() / name).is_dir()

        # second sweep: everything still in served position is clean —
        # no load quarantines, and whatever loads really unpickled
        clean = ArtifactCache(cache_root)
        for fingerprint in clean.entries():
            clean.load(fingerprint)
        assert clean.stats.quarantined == 0
        assert clean.stats.repairs == 0

    def test_same_seed_replays_the_same_schedule(self, tmp_path):
        """Serial consultation: identical runs inject identical faults."""

        def run(tag):
            injector = FaultInjector(chaos_plan(4242, rate=0.3))
            config = make_config(tmp_path / tag, workers=1)
            with ServerThread(config, injector=injector) as server:
                client = make_client(server.url)
                for index in range(8):
                    program = PROGRAMS[index % len(PROGRAMS)]
                    try:
                        client.compile(
                            {"main.m": program}, verify_plan=True
                        )
                    except TRANSPORT_ERRORS:
                        pass
            return injector.counts()

        first = run("one")
        second = run("two")
        assert first == second
        assert first, "schedule fired nothing; not a chaos replay"
