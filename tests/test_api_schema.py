"""Drift tests for the committed `/v1` schema (``api-schema.json``).

Two gates: the committed golden must equal the schema the facade
currently derives (catches *any* drift, compatible or not), and
:func:`schema_compatibility_problems` must classify synthetic breaking
changes correctly (so the gate itself is trusted)."""

import copy
import json
from pathlib import Path

from repro.__main__ import main
from repro.api import (
    api_schema,
    schema_compatibility_problems,
    schema_text,
)

GOLDEN_PATH = Path(__file__).parent.parent / "api-schema.json"


def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenSchema:
    def test_golden_file_exists_and_parses(self):
        doc = golden()
        assert doc["schema_version"] == 1
        assert "/v1/compile" in doc["endpoints"]

    def test_schema_matches_golden_exactly(self):
        assert api_schema() == golden(), (
            "api-schema.json is stale; regenerate with "
            "`python -m repro api-schema --write` and review the diff"
        )

    def test_schema_text_matches_golden_bytes(self):
        assert schema_text() == GOLDEN_PATH.read_text()

    def test_no_compatibility_problems_against_golden(self):
        assert schema_compatibility_problems(golden(), api_schema()) == []

    def test_schema_is_json_normalized(self):
        doc = api_schema()
        assert doc == json.loads(json.dumps(doc))

    def test_all_wire_types_described(self):
        types = api_schema()["types"]
        for name in (
            "CompileRequest",
            "BatchRequest",
            "CompileResponse",
            "CompileStats",
            "ErrorEnvelope",
        ):
            assert name in types
            assert types[name]["fields"]

    def test_sources_is_the_only_required_request_field(self):
        fields = api_schema()["types"]["CompileRequest"]["fields"]
        required = [n for n, f in fields.items() if f["required"]]
        assert required == ["sources"]


class TestCompatibilityChecker:
    def test_removed_type_flagged(self):
        old, new = golden(), api_schema()
        del new["types"]["CompileStats"]
        problems = schema_compatibility_problems(old, new)
        assert "type removed: CompileStats" in problems

    def test_removed_field_flagged(self):
        old, new = golden(), api_schema()
        del new["types"]["CompileResponse"]["fields"]["fingerprint"]
        problems = schema_compatibility_problems(old, new)
        assert any("field removed" in p for p in problems)

    def test_changed_field_type_flagged(self):
        old, new = golden(), api_schema()
        new["types"]["CompileStats"]["fields"]["colors"]["type"] = "str"
        problems = schema_compatibility_problems(old, new)
        assert any("field type changed" in p for p in problems)

    def test_new_required_field_flagged(self):
        old, new = golden(), api_schema()
        new["types"]["CompileRequest"]["fields"]["token"] = {
            "type": "str",
            "required": True,
        }
        problems = schema_compatibility_problems(old, new)
        assert "new field is required: CompileRequest.token" in problems

    def test_new_optional_field_is_compatible(self):
        old, new = golden(), api_schema()
        new["types"]["CompileRequest"]["fields"]["hint"] = {
            "type": "str | None",
            "required": False,
        }
        assert schema_compatibility_problems(old, new) == []

    def test_repurposed_error_code_flagged(self):
        old, new = golden(), api_schema()
        new["error_codes"]["429"] = "too_many_requests"
        problems = schema_compatibility_problems(old, new)
        assert any("error code repurposed: 429" in p for p in problems)

    def test_removed_error_code_flagged(self):
        old, new = golden(), api_schema()
        del new["error_codes"]["504"]
        problems = schema_compatibility_problems(old, new)
        assert any("error code removed: 504" in p for p in problems)

    def test_removed_wire_option_key_flagged(self):
        old, new = golden(), api_schema()
        new["wire_option_keys"].remove("cse")
        problems = schema_compatibility_problems(old, new)
        assert "wire option key removed: cse" in problems

    def test_removed_endpoint_flagged(self):
        old, new = golden(), api_schema()
        del new["endpoints"]["/v1/batch"]
        problems = schema_compatibility_problems(old, new)
        assert "endpoint removed: /v1/batch" in problems

    def test_endpoint_method_change_flagged(self):
        old, new = golden(), api_schema()
        new["endpoints"]["/healthz"]["method"] = "POST"
        problems = schema_compatibility_problems(old, new)
        assert any(
            "endpoint method changed: /healthz" in p for p in problems
        )

    def test_drift_is_asymmetric(self):
        # removing a field breaks old->new but adding one (the reverse
        # direction) is fine
        old = golden()
        new = copy.deepcopy(old)
        del new["types"]["CompileResponse"]["fields"]["report"]
        assert schema_compatibility_problems(old, new)
        assert schema_compatibility_problems(new, old) == []


class TestCli:
    def test_api_schema_check_passes(self, capsys):
        assert main(["api-schema", "--check"]) == 0

    def test_api_schema_prints_json(self, capsys):
        assert main(["api-schema"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == api_schema()
