"""Tests for the benchmark infrastructure (suite registry, formatting)."""

from repro.bench.experiments import format_rows
from repro.bench.suite import (
    BENCHMARK_NAMES,
    SUITE,
    count_lines,
    load_sources,
)


class TestSuiteRegistry:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 11
        assert set(BENCHMARK_NAMES) == set(SUITE)

    def test_paper_metadata_present(self):
        for info in SUITE.values():
            assert info.synopsis
            assert info.origin
            assert info.paper_speedup >= 1.0

    def test_paper_table2_rows_recorded(self):
        # the paper's s/d column, used for shape comparisons
        assert SUITE["adpt"].paper_reduction == (127, 74)
        assert SUITE["fiff"].paper_reduction == (51, 0)
        assert SUITE["fiff"].paper_storage_kb == 12712.92

    def test_sources_have_driver_convention(self):
        for name in BENCHMARK_NAMES:
            sources = load_sources(name)
            driver = sources[f"{name}_drv.m"]
            assert f"function {name}_drv()" in driver

    def test_count_lines_skips_comments_and_blanks(self):
        text = "% comment\n\nx = 1;\n  % indented comment\ny = 2;\n"
        assert count_lines({"f.m": text}) == 2


class TestFormatting:
    def test_format_rows_alignment(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 23},
        ]
        text = format_rows("Title", rows)
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[2]
        assert len(lines) == 5

    def test_format_rows_empty(self):
        assert "(no data)" in format_rows("Empty", [])

    def test_md_table(self):
        from benchmarks.generate_report import md_table

        rows = [{"x": 1, "y": "two"}]
        text = md_table(rows)
        assert text.splitlines()[0] == "| x | y |"
        assert "| 1 | two |" in text
