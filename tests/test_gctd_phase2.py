"""Unit tests for GCTD Phase 2: the partial order, decomposition, and
the allocation plan — including the paper's worked examples."""

from repro.analysis.availability import compute_availability
from repro.analysis.pass_manager import run_cleanup_pipeline
from repro.core.allocation import (
    GROW_ONLY,
    MAY_RESIZE,
    NO_RESIZE,
    StorageClass,
)
from repro.core.decompose import (
    decompose_color_class,
    strongly_connected_components,
)
from repro.core.gctd import GCTDOptions, run_gctd
from repro.core.storage_order import StorageOrder
from repro.frontend.parser import parse_program
from repro.ir.lower import lower_program
from repro.ssa.construct import base_name, construct_ssa
from repro.typing.infer import infer_types


def compile_to_gctd(text, cleanup=True, options=None, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    func = construct_ssa(lower_program(parse_program(files)))
    if cleanup:
        run_cleanup_pipeline(func)
    env = infer_types(func)
    result = run_gctd(func, env, options)
    return func, env, result


def versions_of(func, base):
    return [
        r
        for i in func.instructions()
        for r in i.results
        if base_name(r) == base
    ]


class TestSCC:
    def test_simple_cycle(self):
        sccs = strongly_connected_components(
            ["a", "b", "c"], {"a": ["b"], "b": ["a"], "c": []}
        )
        comps = {frozenset(c) for c in sccs}
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c"}) in comps

    def test_dag_all_singletons(self):
        sccs = strongly_connected_components(
            ["a", "b", "c"], {"a": ["b"], "b": ["c"], "c": []}
        )
        assert all(len(c) == 1 for c in sccs)

    def test_nested_cycles(self):
        succ = {
            "a": ["b"],
            "b": ["c", "a"],
            "c": ["d"],
            "d": ["c"],
            "e": [],
        }
        sccs = strongly_connected_components(list("abcde"), succ)
        comps = {frozenset(c) for c in sccs}
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c", "d"}) in comps


class TestStorageOrder:
    def test_static_chain(self):
        func, env, result = compile_to_gctd(
            "a = rand(2); b = rand(4); c = rand(3);"
            " disp(a); disp(b); disp(c);"
        )
        avail = compute_availability(func)
        order = StorageOrder(env=env, availability=avail)
        a = versions_of(func, "a")[0]
        b = versions_of(func, "b")[0]
        c = versions_of(func, "c")[0]
        assert order.precedes(a, b)      # 32 elems ≤ 128 elems… bytes
        assert order.precedes(a, c)
        assert order.precedes(c, b)
        assert not order.precedes(b, a)

    def test_different_intrinsics_unrelated(self):
        func, env, result = compile_to_gctd(
            "a = zeros(3); b = eye(3); disp(a); disp(b);"
        )
        avail = compute_availability(func)
        order = StorageOrder(env=env, availability=avail)
        a = versions_of(func, "a")[0]
        b = versions_of(func, "b")[0]
        assert not order.precedes(a, b)  # REAL vs BOOLEAN
        assert not order.precedes(b, a)

    def test_static_symbolic_never_related(self):
        # paper: "a and b won't share storage … if the size of only one
        # of them can be statically estimated"
        func, env, result = compile_to_gctd(
            "n = mystery(); a = zeros(5); b = zeros(n); disp(a); disp(b);",
            mystery="function y = mystery()\ny = rand(1) * 50 + 1;\n",
        )
        avail = compute_availability(func)
        order = StorageOrder(env=env, availability=avail)
        a = versions_of(func, "a")[0]
        b = versions_of(func, "b")[0]
        assert not order.precedes(a, b)
        assert not order.precedes(b, a)

    def test_symbolic_requires_availability(self):
        func, env, result = compile_to_gctd(
            "q = rand(1); n = mystery();\n"
            "if q > 0.5\n a = zeros(n); s = sum(sum(a));\n"
            "else\n b = zeros(n); s = sum(sum(b));\nend\ndisp(s);",
            mystery="function y = mystery()\ny = rand(1) * 50 + 1;\n",
        )
        avail = compute_availability(func)
        order = StorageOrder(env=env, availability=avail)
        a = versions_of(func, "a")[0]
        b = versions_of(func, "b")[0]
        # same symbolic size but on exclusive paths: not related
        assert not order.precedes(a, b)
        assert not order.precedes(b, a)

    def test_symbolic_ablation(self):
        func, env, result = compile_to_gctd(
            "n = mystery(); a = zeros(n); b = a + 1; disp(b);",
            mystery="function y = mystery()\ny = rand(1) * 50 + 1;\n",
        )
        avail = compute_availability(func)
        a = versions_of(func, "a")[0]
        b = versions_of(func, "b")[0]
        with_symbolic = StorageOrder(env=env, availability=avail)
        without = StorageOrder(
            env=env, availability=avail, use_symbolic=False
        )
        assert with_symbolic.precedes(a, b)
        assert not without.precedes(a, b)


class TestDecompose:
    def test_static_chain_single_group(self):
        # §3.2.1: all static sizes of one intrinsic form a single chain
        func, env, result = compile_to_gctd(
            "a = zeros(2); s1 = sum(sum(a));\n"
            "b = zeros(4); s2 = sum(sum(b));\n"
            "disp(s1 + s2);"
        )
        plan = result.plan
        a = versions_of(func, "a")[0]
        b = versions_of(func, "b")[0]
        # a and b do not interfere and are comparable: same group,
        # stack allocated at the maximal size
        if plan.same_storage(a, b):
            group = plan.group(a)
            assert group.is_stack
            assert group.static_size == 4 * 4 * 8

    def test_incomparable_split_into_groups(self):
        avail_stub = compute_availability(
            construct_ssa(
                lower_program(
                    parse_program({"m.m": "x = 1;"})
                )
            )
        )

        class FakeEnv:
            def __init__(self, table):
                self.table = table

            def of(self, name):
                return self.table[name]

        from repro.typing.intrinsic import Intrinsic
        from repro.typing.ranges import Interval
        from repro.typing.shape import Shape
        from repro.typing.types import VarType

        env = FakeEnv(
            {
                "big_real": VarType(
                    Intrinsic.REAL, Shape.matrix(10, 10), Interval.top()
                ),
                "small_real": VarType(
                    Intrinsic.REAL, Shape.matrix(2, 2), Interval.top()
                ),
                "bool_arr": VarType(
                    Intrinsic.BOOLEAN, Shape.matrix(5, 5), Interval.top()
                ),
            }
        )
        order = StorageOrder(env=env, availability=avail_stub)
        groups = decompose_color_class(
            ["big_real", "small_real", "bool_arr"], order
        )
        assert len(groups) == 2
        by_root = {g.root: set(g.members) for g in groups}
        assert {"big_real", "small_real"} in by_root.values()
        assert {"bool_arr"} in by_root.values()

    def test_group_root_is_maximal(self):
        func, env, result = compile_to_gctd(
            "a = zeros(2); s1 = sum(sum(a));\n"
            "b = zeros(6); s2 = sum(sum(b));\ndisp(s1 + s2);"
        )
        for group in result.plan.groups:
            if group.is_stack and len(group.members) > 1:
                sizes = [
                    env.of(m).static_storage_size() or 0
                    for m in group.members
                ]
                root_size = env.of(group.root).static_storage_size()
                assert root_size == max(sizes)


class TestPaperExamples:
    def test_example1_nonresized_chain(self):
        """Example 1: t1→t2→t3 elementwise chain on unknown t0 shares
        one storage, and no definition needs a resize."""
        func, env, result = compile_to_gctd(
            "t0 = mystery();\n"
            "t1 = t0 - 1.345;\n"
            "t2 = 2.788 * t1;\n"
            "t3 = tan(t2);\n"
            "disp(t3);",
            mystery=(
                "function y = mystery()\n"
                "n = floor(rand(1) * 5) + 1;\n"
                "y = rand(n, n) * 4i;\n"
            ),
        )
        plan = result.plan
        # cleanup may rename t0..t3; locate the chain by its operations
        instrs = func.instructions()
        t1 = [i for i in instrs if i.op == "sub"][-1].results[0]
        t2 = [i for i in instrs if i.op in ("mul", "elmul")][-1].results[0]
        t3 = [i for i in instrs if i.op == "call:tan"][-1].results[0]
        names = [t1, t2, t3]
        gids = {plan.group_of[n] for n in names}
        assert len(gids) == 1, "the chain shares one group"
        group = plan.groups[gids.pop()]
        assert group.storage is StorageClass.HEAP
        # t1..t3 definitions need no resize (∘ in the paper's notation)
        for n in (t2, t3):
            assert plan.resize_marks[n] == NO_RESIZE

    def test_example2_growable(self):
        """Example 2: b = subsasgn(eye(x, y), …) shares a's storage and
        is marked grow-only."""
        func, env, result = compile_to_gctd(
            "x = mystery(); y = mystery();\n"
            "a = eye(x, y);\n"
            "a(1, 2) = 1;\n"
            "disp(a);",
            mystery=(
                "function v = mystery()\n"
                "v = floor(rand(1) * 9) + 2;\n"
            ),
            cleanup=True,
        )
        plan = result.plan
        a_versions = versions_of(func, "a")
        assert len(a_versions) >= 2
        first, second = a_versions[0], a_versions[1]
        assert plan.same_storage(first, second)
        group = plan.group(first)
        assert group.storage is StorageClass.HEAP
        assert plan.resize_marks[second] in (GROW_ONLY, NO_RESIZE)

    def test_section5_nonoptimality(self):
        """§5: sizes 4/2/3, one edge A–B.  The greedy minimal coloring
        can aggregate 7 units where 6 would do — demonstrate that the
        implementation is (knowingly) nonoptimal."""
        from repro.core.coloring import color_graph
        from repro.core.interference import InterferenceGraph

        g = InterferenceGraph()
        g.add_edge("A", "B")
        g.add_node("C")
        coloring = color_graph(g, ["A", "B", "C"])
        assert coloring.num_colors == 2
        # greedy lexical order puts C with A (both color 0): aggregate
        # max(4,3) + 2 = 6 here — but order ["B", "A", "C"] gives
        # C with B: max(2,3) + 4 = 7.  Either way a minimal coloring;
        # the aggregate depends on the order, proving nonoptimality.
        c2 = color_graph(g, ["B", "A", "C"])
        agg1 = _aggregate(coloring, {"A": 4, "B": 2, "C": 3})
        agg2 = _aggregate(c2, {"A": 4, "B": 2, "C": 3})
        assert {agg1, agg2} == {6, 7}


def _aggregate(coloring, sizes):
    classes = {}
    for name, color in coloring.color_of.items():
        classes.setdefault(color, []).append(sizes[name])
    return sum(max(v) for v in classes.values())


class TestAllocationPlan:
    def test_scalars_are_stack(self):
        func, env, result = compile_to_gctd("x = 1 + 2; disp(x);")
        for group in result.plan.groups:
            assert group.is_stack

    def test_symbolic_arrays_are_heap(self):
        func, env, result = compile_to_gctd(
            "n = mystery(); a = zeros(n); disp(a);",
            mystery="function y = mystery()\ny = rand(1) * 50 + 1;\n",
        )
        a = versions_of(func, "a")[0]
        assert result.plan.group(a).storage is StorageClass.HEAP

    def test_stats_count_subsumption(self):
        # rand (impure) keeps the two arrays distinct under CSE; a's
        # whole web is dead before b is created, so b can reuse it
        func, env, result = compile_to_gctd(
            "a = rand(10); disp(sum(sum(a)));\n"
            "b = rand(10); disp(sum(sum(b)));\n"
        )
        stats = result.plan.stats
        assert stats.original_variable_count > 0
        # a and b are coalescible: at least one static subsumption
        assert stats.static_subsumed >= 1
        assert stats.storage_reduction_bytes >= 10 * 10 * 8

    def test_disabled_gctd_trivial_plan(self):
        func, env, result = compile_to_gctd(
            "a = zeros(4); b = a + 1; disp(b);",
            options=GCTDOptions(enabled=False),
        )
        plan = result.plan
        assert plan.stats.static_subsumed == 0
        assert plan.stats.dynamic_subsumed == 0
        assert all(len(g.members) == 1 for g in plan.groups)

    def test_stack_frame_bytes(self):
        func, env, result = compile_to_gctd(
            "a = zeros(10); disp(a);"
        )
        assert result.plan.stack_frame_bytes() >= 800

    def test_plan_covers_all_variables(self):
        func, env, result = compile_to_gctd(
            "a = rand(3); b = a + 1;\n"
            "if b(1, 1) > 0.5\n c = b * 2;\nelse\n c = b;\nend\n"
            "disp(sum(sum(c)));"
        )
        for name in func.defined_vars():
            assert name in result.plan.group_of

    def test_reduction_vs_variable_count(self):
        func, env, result = compile_to_gctd(
            "a = zeros(8); s = sum(sum(a)); b = zeros(8);"
            " t = sum(sum(b)); disp(s + t);"
        )
        stats = result.plan.stats
        subsumed = stats.static_subsumed + stats.dynamic_subsumed
        assert subsumed < stats.original_variable_count
