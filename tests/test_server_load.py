"""Scripted load test for the compile server (acceptance criterion).

Drives 224 requests from 32 concurrent client threads through a real
server with a deliberately small admission queue (workers=2,
queue_limit=4).  Every request must come back as a well-formed JSON
response — 200 or 429, never a hang and never a 500 — some load must
actually be shed, repeat submissions must hit the artifact cache, and
``/metrics`` must agree with the client-side tally afterwards.

Real pipeline, compile-only (no gcc, no execution): fast lane.
"""

import collections
import threading
import time

from repro.server import ServerClient, ServerConfig, ServerThread
from repro.server.metrics import MetricsRegistry

CLIENTS = 32
REQUESTS_PER_CLIENT = 7  # 32 × 7 = 224 ≥ 200
DISTINCT_PROGRAMS = 8


def program(index: int) -> dict[str, str]:
    # Same shape, different constants: distinct fingerprints, so the
    # suite exercises both cold compiles and cache hits.
    text = (
        f"a = ones({2 + index});\n"
        f"b = a * {index + 1};\n"
        "c = b + a;\n"
        "disp(sum(sum(c)));\n"
    )
    return {f"prog{index}.m": text}


def test_load_shedding_cache_and_metrics(tmp_path):
    config = ServerConfig(
        port=0,
        workers=2,
        queue_limit=4,
        cache_root=str(tmp_path / "cache"),
        default_deadline=60.0,
        drain_seconds=15.0,
    )
    outcomes: list[tuple[int, dict]] = []
    record_lock = threading.Lock()

    with ServerThread(config) as server:
        url = server.url

        def client_main(client_index: int) -> None:
            client = ServerClient(url, timeout=60.0)
            for n in range(REQUESTS_PER_CLIENT):
                index = (client_index + n) % DISTINCT_PROGRAMS
                response = client.compile(
                    program(index), name=f"c{client_index}-r{n}"
                )
                with record_lock:
                    outcomes.append((response.status, response.payload))

        threads = [
            threading.Thread(target=client_main, args=(i,))
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            # A hang is a failure: join with a bounded timeout.
            thread.join(120.0)
        assert all(not t.is_alive() for t in threads), "client hang"

        total = CLIENTS * REQUESTS_PER_CLIENT
        assert len(outcomes) == total

        by_status = collections.Counter(
            status for status, _payload in outcomes
        )
        # Never a 500, never anything but success or shed.
        assert set(by_status) <= {200, 429}, by_status
        assert by_status[200] >= 1
        assert by_status[429] >= 1, "bounded queue never shed load"

        # Every response is well-formed JSON with the expected shape.
        for status, payload in outcomes:
            if status == 200:
                assert payload["ok"] is True
                assert len(payload["fingerprint"]) == 64
                assert "stats" in payload
            else:
                assert payload["ok"] is False
                assert "error" in payload

        # Repeat submissions hit the artifact cache: the 8 distinct
        # programs were submitted ~28 times each, so far more 200s
        # than cold compiles — everything beyond the first compile of
        # each program must be a hit, and a direct resubmission now
        # definitely is.
        client = ServerClient(url, timeout=60.0)
        repeat = client.compile(program(0))
        assert repeat.status == 200
        assert repeat.payload["cache_hit"] is True
        hits_seen = sum(
            1
            for status, payload in outcomes
            if status == 200 and payload.get("cache_hit")
        )
        cold_compiles = by_status[200] - hits_seen
        assert cold_compiles >= DISTINCT_PROGRAMS  # one per program
        if by_status[200] > 2 * DISTINCT_PROGRAMS:
            assert hits_seen > 0

        # /metrics agrees with the client-side tally.  The worker
        # decrements the in-flight gauge just after delivering its
        # result, so give the counters a moment to quiesce.
        deadline = time.monotonic() + 5.0
        while True:
            samples = MetricsRegistry().parse_rendered(
                client.metrics_text()
            )
            settled = (
                samples["repro_queue_depth"] == 0
                and samples["repro_inflight_jobs"] == 0
            )
            if settled or time.monotonic() > deadline:
                break
            time.sleep(0.01)
        ok_count = samples.get(
            'repro_requests_total{endpoint="/v1/compile", '
            'status="200"}',
            0,
        )
        shed_count = samples.get(
            'repro_requests_total{endpoint="/v1/compile", '
            'status="429"}',
            0,
        )
        assert ok_count == by_status[200] + 1  # + the repeat probe
        assert shed_count == by_status[429]
        assert samples["repro_shed_total"] == by_status[429]
        hits = samples["repro_cache_hits_total"]
        misses = samples["repro_cache_misses_total"]
        assert hits + misses == samples.get(
            'repro_compiles_total{result="ok"}', 0
        )
        assert hits >= 1
        assert samples["repro_queue_depth"] == 0
        assert samples["repro_inflight_jobs"] == 0
        latency_count = samples.get(
            'repro_request_seconds_count{endpoint="/v1/compile"}', 0
        )
        assert latency_count == total + 1
