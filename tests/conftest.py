"""Shared test configuration.

Registers hypothesis profiles so tier-1 runs are deterministic:

* ``deadline=None`` everywhere — property tests (notably
  ``TestSCCAgainstNetworkx``) share the process with hundreds of other
  tests, and a GC pause or a cold ``networkx`` import under full-suite
  load can blow hypothesis' default 200 ms per-example deadline even
  though the property itself is fine.  That is exactly the
  fails-in-the-full-run / passes-alone flake profile we saw.
* ``derandomize=True`` under CI — example generation is seeded from
  the test itself, so a red CI run is reproducible locally and a green
  one is not a lucky draw.
"""

import os

from hypothesis import settings

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True)
settings.load_profile("ci" if os.environ.get("CI") else "dev")
