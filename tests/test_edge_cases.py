"""Edge cases across the pipeline: frontend quirks, degenerate
programs, runtime corners, and error paths."""

import pytest

from repro.compiler.pipeline import compile_source
from repro.frontend.parser import parse_source
from repro.frontend.source import MatlabSyntaxError
from repro.ir.lower import LoweringError
from repro.runtime.builtins import RuntimeContext
from repro.runtime.errors import MatlabRuntimeError


def run(text, seed=3):
    result = compile_source(text)
    return result.run_mat2c(RuntimeContext(seed=seed))


class TestFrontendQuirks:
    def test_semicolons_and_commas_mixed(self):
        out = run("a = 1; b = 2, c = a + b; disp(c);")
        assert "3" in out.output

    def test_comment_only_lines(self):
        out = run("% nothing\n% here\nx = 5;\ndisp(x); % trailing\n")
        assert out.output == "5\n"

    def test_continuation_inside_expression(self):
        out = run("x = 1 + ...\n    2 + ...\n    3;\ndisp(x);")
        assert out.output == "6\n"

    def test_nested_parens_and_transpose(self):
        out = run("a = [1, 2; 3, 4]; t = (a)'; disp(t(1, 2));")
        assert out.output == "3\n"

    def test_indexing_parenthesized_expr_rejected(self):
        # MATLAB only indexes named values; `(a')(1, 2)` is an error
        with pytest.raises(LoweringError):
            compile_source("a = [1, 2]; disp((a')(1));")

    def test_deeply_nested_indexing(self):
        out = run(
            "a = [10, 20, 30]; i = [3, 1, 2];\n"
            "disp(a(i(i(1))));"
        )
        # i(i(1)) = i(3) = 2 → a(2) = 20
        assert out.output == "20\n"

    def test_empty_function_body(self):
        funcs = parse_source("function noop()\n", "noop.m")
        assert funcs[0].body == []

    def test_unbalanced_parens_raises(self):
        with pytest.raises(MatlabSyntaxError):
            parse_source("x = (1 + 2;\n", "bad.m")

    def test_missing_end_raises(self):
        with pytest.raises(MatlabSyntaxError):
            parse_source("if x > 1\n y = 2;\n", "bad.m")

    def test_keyword_as_variable_rejected(self):
        with pytest.raises(MatlabSyntaxError):
            parse_source("end = 5;\n", "bad.m")


class TestDegenerateprograms:
    def test_empty_program(self):
        result = compile_source("")
        out = result.run_mat2c()
        assert out.output == ""

    def test_only_comments(self):
        result = compile_source("% just a comment\n")
        assert result.run_mat2c().output == ""

    def test_single_display(self):
        assert run("disp(7);").output == "7\n"

    def test_zero_trip_loop(self):
        out = run("s = 0;\nfor k = 5:1\n s = s + 1;\nend\ndisp(s);")
        assert out.output == "0\n"

    def test_zero_trip_while(self):
        out = run("s = 1;\nwhile s < 1\n s = s + 1;\nend\ndisp(s);")
        assert out.output == "1\n"

    def test_if_with_no_else_not_taken(self):
        out = run("x = 1;\nif x > 5\n x = 99;\nend\ndisp(x);")
        assert out.output == "1\n"

    def test_branch_on_empty_matrix_is_false(self):
        out = run("e = [];\nif e\n disp(1);\nelse\n disp(2);\nend")
        assert out.output == "2\n"

    def test_branch_on_matrix_all_elements(self):
        out = run(
            "m = [1, 1; 1, 0];\nif m\n disp(1);\nelse\n disp(2);\nend"
        )
        assert out.output == "2\n"


class TestRuntimeCorners:
    def test_1x1_matrix_times_matrix(self):
        out = run("a = [2]; b = [1, 2; 3, 4]; disp(a * b);")
        assert "2  4" in out.output

    def test_empty_sum(self):
        out = run("e = []; disp(sum(e));")
        assert out.output == "0\n"

    def test_negative_zero_formatting(self):
        out = run("disp(0 * -1);")
        assert out.output == "0\n"

    def test_inf_arithmetic(self):
        out = run("x = 1 / 0;\nif x > 1000000\n disp(1);\nend")
        assert out.output == "1\n"

    def test_string_display(self):
        out = run("disp('hello world');")
        assert out.output == "hello world\n"

    def test_char_arithmetic(self):
        # 'a' + 1 = 98 (MATLAB promotes chars to doubles)
        out = run("c = 'a'; disp(c + 1);")
        assert out.output == "98\n"

    def test_logical_indexing_roundtrip(self):
        out = run(
            "v = [5, 10, 15, 20];\n"
            "m = v > 8;\n"
            "picked = v(m);\n"
            "disp(sum(picked));"
        )
        assert out.output == "45\n"

    def test_matrix_power_identity(self):
        out = run("a = [2, 0; 0, 3]; b = a ^ 0; disp(b);")
        assert "1  0" in out.output

    def test_division_shapes(self):
        out = run("a = [4, 8]; disp(a / 2);")
        assert "2  4" in out.output

    def test_mod_negative(self):
        out = run("disp(mod(7, 3)); disp(mod(10, 4));")
        assert out.output == "1\n2\n"


class TestErrorPaths:
    def test_nonconformant_add(self):
        result = compile_source("a = [1, 2]; b = [1, 2, 3]; c = a + b; disp(c);")
        with pytest.raises(MatlabRuntimeError):
            result.run_mat2c()

    def test_matmul_mismatch(self):
        result = compile_source(
            "a = rand(2, 3); b = rand(2, 3); c = a * b; disp(c);"
        )
        with pytest.raises(MatlabRuntimeError):
            result.run_mat2c()

    def test_error_builtin_message(self):
        result = compile_source("error('custom failure');")
        with pytest.raises(MatlabRuntimeError, match="custom failure"):
            result.run_mat2c()

    def test_undefined_in_one_branch_ok_if_unexecuted(self):
        # `u` only defined on the taken path: fine at run time
        out = run(
            "q = 2;\nif q > 1\n u = 5;\nend\ndisp(u);"
        )
        assert out.output == "5\n"

    def test_too_many_args_to_user_function(self):
        with pytest.raises(LoweringError):
            compile_source("disp(f(1, 2));", name="main")

    def test_shape_error_messages_mention_shapes(self):
        result = compile_source("a = [1, 2]; b = [1; 2]; c = a + b; disp(c);")
        with pytest.raises(MatlabRuntimeError, match="shape"):
            result.run_mat2c()


class TestDisplayFormats:
    def test_integer_scalar(self):
        assert run("x = 42\n").output == "x =\n42\n"

    def test_float_scalar(self):
        out = run("x = 1.5\n").output
        assert "1.5" in out

    def test_matrix_display(self):
        out = run("m = [1, 2; 3, 4]\n").output
        assert "m =" in out
        assert "1  2" in out
        assert "3  4" in out

    def test_complex_display(self):
        out = run("z = 1 + 2i\n").output
        assert "1.0000" in out and "2.0000" in out
