"""Unit tests for the memory simulator: heap, stack, meter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsim.costs import CLOCK_HZ, CostModel
from repro.memsim.heap import PAGE_SIZE, HeapModel, SimulationError
from repro.memsim.meter import MemoryMeter
from repro.memsim.stack import INITIAL_STACK_BYTES, StackModel


class TestHeap:
    def test_malloc_returns_distinct_regions(self):
        heap = HeapModel()
        a = heap.malloc(100)
        b = heap.malloc(100)
        assert a != b
        assert heap.live_bytes >= 200

    def test_free_then_reuse(self):
        heap = HeapModel()
        a = heap.malloc(256)
        heap.free(a)
        b = heap.malloc(256)
        assert b == a, "first-fit must reuse the freed block"

    def test_free_list_coalesces_neighbours(self):
        heap = HeapModel()
        a = heap.malloc(128)
        b = heap.malloc(128)
        heap.free(a)
        heap.free(b)
        c = heap.malloc(256)
        assert c == a, "adjacent free blocks must merge"

    def test_double_free_raises(self):
        heap = HeapModel()
        a = heap.malloc(64)
        heap.free(a)
        with pytest.raises(SimulationError):
            heap.free(a)

    def test_brk_never_shrinks(self):
        heap = HeapModel()
        a = heap.malloc(10 * PAGE_SIZE)
        high = heap.segment_bytes
        heap.free(a)
        assert heap.segment_bytes == high

    def test_realloc_grows(self):
        heap = HeapModel()
        a = heap.malloc(64)
        new_addr, _ = heap.realloc(a, 128)
        assert heap.allocations[new_addr] >= 128

    def test_realloc_noop_when_smaller(self):
        heap = HeapModel()
        a = heap.malloc(256)
        new_addr, pages = heap.realloc(a, 64)
        assert new_addr == a and pages == 0

    def test_resident_pages_track_touches(self):
        heap = HeapModel()
        heap.malloc(3 * PAGE_SIZE)
        assert heap.resident_bytes >= 3 * PAGE_SIZE

    def test_alignment(self):
        heap = HeapModel()
        a = heap.malloc(3)
        b = heap.malloc(5)
        assert a % 8 == 0 and b % 8 == 0

    @given(
        st.lists(
            st.integers(min_value=1, max_value=4096),
            min_size=1,
            max_size=30,
        )
    )
    def test_live_bytes_conserved(self, sizes):
        heap = HeapModel()
        addrs = [heap.malloc(s) for s in sizes]
        for addr in addrs:
            heap.free(addr)
        assert heap.live_bytes == 0
        assert not heap.allocations

    @given(
        st.lists(
            st.integers(min_value=1, max_value=2048),
            min_size=2,
            max_size=20,
        )
    )
    def test_allocations_never_overlap(self, sizes):
        heap = HeapModel()
        regions = []
        for i, size in enumerate(sizes):
            addr = heap.malloc(size)
            regions.append((addr, heap.allocations[addr]))
            if i % 3 == 2:
                victim = regions.pop(0)
                heap.free(victim[0])
        regions.sort()
        for (a1, s1), (a2, _) in zip(regions, regions[1:]):
            assert a1 + s1 <= a2


class TestStack:
    def test_initial_environment_page(self):
        stack = StackModel()
        assert stack.segment_bytes == INITIAL_STACK_BYTES

    def test_grows_in_pages(self):
        stack = StackModel()
        stack.push_frame(100)
        assert stack.segment_bytes == PAGE_SIZE * 2  # env + frame page
        stack.push_frame(3 * PAGE_SIZE)
        assert stack.segment_bytes % PAGE_SIZE == 0

    def test_high_watermark_persists(self):
        stack = StackModel()
        stack.push_frame(4 * PAGE_SIZE)
        stack.pop_frame()
        assert stack.segment_bytes >= 5 * PAGE_SIZE  # env + 4 pages

    def test_current_bytes_follow_frames(self):
        stack = StackModel()
        before = stack.current_bytes
        stack.push_frame(1000)
        assert stack.current_bytes == before + 1000
        stack.pop_frame()
        assert stack.current_bytes == before


class TestMeter:
    def test_time_weighted_average(self):
        heap = HeapModel()
        stack = StackModel()
        meter = MemoryMeter(heap, stack, binary_image_bytes=0)
        addr = heap.malloc(10_000)
        meter.sample(10.0)       # 10 cycles at 10 000 live bytes
        heap.free(addr)
        meter.sample(20.0)       # 10 cycles at 0 live bytes... sampled
        report = meter.report()
        # average heap over [0, 20] = (10000·10 + 0·10)/20 = 5000 B
        assert report.avg_heap_kb == pytest.approx(10_000 * 10 / 20 / 1024)

    def test_kcore_min_definition(self):
        heap = HeapModel()
        stack = StackModel()
        meter = MemoryMeter(heap, stack, binary_image_bytes=0)
        heap.malloc(1024 * 100)
        meter.sample(CLOCK_HZ * 60)  # one minute of cycles
        report = meter.report()
        assert report.kcore_min == pytest.approx(
            report.avg_dynamic_kb * 1.0, rel=1e-6
        )

    def test_resident_image_parameter(self):
        heap = HeapModel()
        stack = StackModel()
        meter = MemoryMeter(
            heap, stack, binary_image_bytes=1000 * 1024,
            resident_image_bytes=400 * 1024,
        )
        meter.sample(100.0)
        report = meter.report()
        assert report.avg_virtual_kb > report.avg_resident_kb

    def test_peak_tracking(self):
        heap = HeapModel()
        stack = StackModel()
        meter = MemoryMeter(heap, stack, binary_image_bytes=0)
        a = heap.malloc(50_000)
        meter.sample(5.0)
        heap.free(a)
        meter.sample(10.0)
        report = meter.report()
        assert report.peak_dynamic_kb >= 50_000 / 1024


class TestCostModel:
    def test_seconds_conversion(self):
        costs = CostModel()
        assert costs.seconds(CLOCK_HZ) == pytest.approx(1.0)

    def test_library_model_dominates_compiled(self):
        costs = CostModel()
        compiled_scalar = costs.scalar_op
        mcc_scalar_boxed = (
            costs.library_call
            + costs.type_check
            + costs.mxarray_create
            + costs.mxarray_free
        )
        assert mcc_scalar_boxed > 50 * compiled_scalar
