"""Integration tests: compile and execute under all three models.

The central property is *differential correctness*: for every program,
the mat2c VM (GCTD storage), the mcc model, and the independent AST
interpreter must produce byte-identical output.
"""

import pytest

from repro.compiler.pipeline import (
    CompilerOptions,
    compile_program,
    compile_source,
)
from repro.core.gctd import GCTDOptions
from repro.runtime.builtins import RuntimeContext


def run_all(text, seed=7, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    result = compile_program(files)
    mat2c = result.run_mat2c(RuntimeContext(seed=seed))
    mcc = result.run_mcc(RuntimeContext(seed=seed))
    interp = result.run_interpreter(RuntimeContext(seed=seed))
    return result, mat2c, mcc, interp


def assert_agreement(text, **sources):
    result, mat2c, mcc, interp = run_all(text, **sources)
    assert mat2c.output == mcc.output, "mat2c vs mcc output mismatch"
    assert mat2c.output == interp.output, "mat2c vs interpreter mismatch"
    return result, mat2c, mcc, interp


class TestBasicExecution:
    def test_arithmetic(self):
        _, mat2c, _, _ = assert_agreement("disp(2 + 3 * 4);")
        assert mat2c.output == "14\n"

    def test_matrix_ops(self):
        _, mat2c, _, _ = assert_agreement(
            "a = [1, 2; 3, 4]; b = a * a; disp(b);"
        )
        assert "7" in mat2c.output and "22" in mat2c.output

    def test_if_branches(self):
        assert_agreement(
            "x = 5;\nif x > 3\n disp('big');\nelse\n disp('small');\nend"
        )

    def test_while_loop(self):
        _, mat2c, _, _ = assert_agreement(
            "i = 0; s = 0;\nwhile i < 10\n i = i + 1; s = s + i;\nend\n"
            "disp(s);"
        )
        assert mat2c.output == "55\n"

    def test_for_loop(self):
        _, mat2c, _, _ = assert_agreement(
            "s = 0;\nfor k = 1:100\n s = s + k;\nend\ndisp(s);"
        )
        assert mat2c.output == "5050\n"

    def test_for_negative_step(self):
        _, mat2c, _, _ = assert_agreement(
            "v = 0;\nfor k = 5:-1:1\n v = v * 10 + k;\nend\ndisp(v);"
        )
        assert mat2c.output == "54321\n"

    def test_nested_loops_with_break(self):
        assert_agreement(
            "c = 0;\n"
            "for i = 1:5\n for j = 1:5\n  if j > i\n   break\n  end\n"
            "  c = c + 1;\n end\nend\ndisp(c);"
        )

    def test_indexing_roundtrip(self):
        _, mat2c, _, _ = assert_agreement(
            "a = zeros(3); a(2, 2) = 5; disp(a(2, 2));"
        )
        assert mat2c.output == "5\n"

    def test_array_growth(self):
        assert_agreement(
            "v = [1];\nfor k = 2:5\n v(k) = v(k - 1) * 2;\nend\ndisp(v);"
        )

    def test_colon_slicing(self):
        assert_agreement(
            "a = [1, 2, 3; 4, 5, 6]; disp(a(:, 2)); disp(a(1, :));"
        )

    def test_end_subscript(self):
        _, mat2c, _, _ = assert_agreement(
            "v = [10, 20, 30]; disp(v(end)); disp(v(end - 1));"
        )
        assert mat2c.output == "30\n20\n"

    def test_rand_deterministic_across_models(self):
        assert_agreement(
            "a = rand(3); disp(sum(sum(a)));"
        )

    def test_user_function_call(self):
        _, mat2c, _, _ = assert_agreement(
            "disp(square(7));",
            square="function y = square(x)\ny = x * x;\n",
        )
        assert mat2c.output == "49\n"

    def test_multi_output_builtin(self):
        assert_agreement(
            "a = rand(3, 5); [m, n] = size(a); disp(m); disp(n);"
        )

    def test_fprintf(self):
        _, mat2c, _, _ = assert_agreement(
            "fprintf('value: %d\\n', 42);"
        )
        assert mat2c.output == "value: 42\n"

    def test_complex_arithmetic(self):
        assert_agreement(
            "z = 3 + 4i; disp(abs(z)); disp(real(z * z));"
        )

    def test_transpose_and_matvec(self):
        assert_agreement(
            "a = [1, 2; 3, 4]; v = [1; 1]; disp(a' * v);"
        )

    def test_display_without_semicolon(self):
        result, mat2c, mcc, interp = assert_agreement("x = 41 + 1\n")
        assert "x =" in mat2c.output
        assert "42" in mat2c.output

    def test_swap_loop(self):
        # exercises parallel-copy cycles after SSA inversion
        _, mat2c, _, _ = assert_agreement(
            "a = 1; b = 2;\nfor k = 1:3\n t = a; a = b; b = t;\nend\n"
            "disp(a); disp(b);"
        )
        assert mat2c.output == "2\n1\n"


class TestStorageBehaviour:
    def test_mat2c_memory_below_mcc(self):
        result, mat2c, mcc, _ = run_all(
            "a = rand(50); b = a + 1; c = b .* 2; d = sqrt(c);\n"
            "disp(sum(sum(d)));"
        )
        assert (
            mat2c.report.avg_dynamic_kb < mcc.report.avg_dynamic_kb
        ), "GCTD must reduce dynamic data vs the mcc model"

    def test_static_program_uses_stack(self):
        result, mat2c, _, _ = run_all(
            "a = rand(20); b = a * 2; disp(sum(sum(b)));"
        )
        assert result.plan.stack_frame_bytes() >= 20 * 20 * 8
        assert mat2c.report.avg_stack_kb > 0

    def test_mcc_stack_stays_flat(self):
        _, _, mcc, _ = run_all(
            "a = rand(40); b = a + 1; disp(sum(sum(b)));"
        )
        # handle-passing only: ~2 pages
        assert mcc.report.avg_stack_kb <= 16.0

    def test_mat2c_faster_than_mcc_on_element_loops(self):
        result, mat2c, mcc, _ = run_all(
            "a = zeros(10);\n"
            "for i = 1:10\n for j = 1:10\n"
            "  a(i, j) = i * 10 + j;\n end\nend\n"
            "disp(sum(sum(a)));"
        )
        assert (
            mat2c.report.execution_seconds
            < mcc.report.execution_seconds
        )

    def test_interpreter_slower_than_mat2c(self):
        # the paper's Fig. 5: intrp and mcc are comparable (both
        # library-bound); mat2c beats both on element loops
        _, mat2c, mcc, interp = run_all(
            "a = zeros(8);\n"
            "for i = 1:8\n for j = 1:8\n  a(i, j) = i + j;\n end\nend\n"
            "disp(sum(sum(a)));"
        )
        assert (
            interp.report.execution_seconds
            > mat2c.report.execution_seconds
        )

    def test_gctd_off_increases_memory(self):
        text = (
            "a = rand(30); b = a + 1; c = b .* 2; d = c - 3;\n"
            "disp(sum(sum(d)));"
        )
        on = compile_source(text)
        off = compile_source(
            text,
            options=CompilerOptions(gctd=GCTDOptions(enabled=False)),
        )
        r_on = on.run_mat2c(RuntimeContext(seed=7))
        r_off = off.run_mat2c(RuntimeContext(seed=7))
        assert r_on.output == r_off.output
        assert (
            r_on.report.avg_dynamic_kb <= r_off.report.avg_dynamic_kb
        )

    def test_heap_group_resizing(self):
        # symbolic sizes force heap allocation with on-the-fly resizing
        result, mat2c, _, _ = run_all(
            "n = floor(rand(1) * 20) + 5;\n"
            "a = zeros(n, n); b = a + 1; disp(sum(sum(b)));"
        )
        from repro.core.allocation import StorageClass

        assert any(
            g.storage is StorageClass.HEAP for g in result.plan.groups
        )
        assert mat2c.report.mallocs >= 1

    def test_identity_copies_folded(self):
        result, *_ = run_all(
            "q = rand(1); a = rand(8);\n"
            "if q > 0.5\n b = a + 1;\nelse\n b = a - 1;\nend\n"
            "disp(sum(sum(b)));"
        )
        assert result.identity_copies_folded >= 1


class TestExecutionGuards:
    def test_step_limit(self):
        from repro.vm.base import ExecutionLimitExceeded

        result = compile_source(
            "i = 0;\nwhile 1\n i = i + 1;\nend",
            options=CompilerOptions(max_steps=1000),
        )
        with pytest.raises(ExecutionLimitExceeded):
            result.run_mat2c()

    def test_runtime_error_propagates(self):
        from repro.runtime.errors import MatlabRuntimeError

        result = compile_source("a = [1, 2]; disp(a(9));")
        with pytest.raises(MatlabRuntimeError):
            result.run_mat2c()
