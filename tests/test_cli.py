"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture
def mfile(tmp_path):
    path = tmp_path / "prog.m"
    path.write_text(
        "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"
    )
    return str(path)


class TestCompileCommand:
    def test_prints_statistics(self, mfile, capsys):
        assert main(["compile", mfile]) == 0
        out = capsys.readouterr().out
        assert "variables at GCTD" in out
        assert "storage reduction" in out

    def test_verbose_lists_groups(self, mfile, capsys):
        main(["compile", "-v", mfile])
        out = capsys.readouterr().out
        assert "group" in out
        assert "stack" in out

    def test_no_gctd_flag(self, mfile, capsys):
        main(["compile", "--no-gctd", mfile])
        out = capsys.readouterr().out
        assert "subsumed (s/d)        : 0/0" in out


class TestRunCommand:
    def test_default_model_output(self, mfile, capsys):
        assert main(["run", mfile]) == 0
        assert capsys.readouterr().out == "32\n"

    @pytest.mark.parametrize("model", ["mat2c", "mcc", "interp"])
    def test_all_models(self, mfile, model, capsys):
        main(["run", "--model", model, mfile])
        assert capsys.readouterr().out == "32\n"

    def test_stats_to_stderr(self, mfile, capsys):
        main(["run", "--stats", mfile])
        captured = capsys.readouterr()
        assert captured.out == "32\n"
        assert "avg stack+heap" in captured.err

    def test_multiple_files(self, tmp_path, capsys):
        (tmp_path / "drv.m").write_text("disp(helper(20));\n")
        (tmp_path / "helper.m").write_text(
            "function y = helper(x)\ny = x + 1;\n"
        )
        main(["run", str(tmp_path / "drv.m"), str(tmp_path / "helper.m")])
        assert capsys.readouterr().out == "21\n"


class TestEmitCCommand:
    def test_emits_c(self, mfile, capsys):
        assert main(["emit-c", mfile]) == 0
        out = capsys.readouterr().out
        assert "int main(void)" in out
        assert "rt_print" in out


class TestArgumentErrors:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestErrorExitCodes:
    def test_compile_bad_source_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "broken.m"
        bad.write_text("a = ones(4\n")  # unbalanced paren
        assert main(["compile", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "repro: error:" in captured.err

    def test_compile_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["compile", str(tmp_path / "nope.m")]) == 1
        assert "repro: error:" in capsys.readouterr().err

    def test_bench_reports_failed_benchmarks(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.bench.experiments as experiments

        def fake_collect_records(cache_root=None, jobs=1, trace=False):
            infos = [
                {"name": "clos", "cache_hit": False, "error": "boom"},
                {"name": "fdtd", "cache_hit": False},
            ]
            return {}, infos, "serial"

        monkeypatch.setattr(
            experiments, "collect_records", fake_collect_records
        )
        code = main(
            [
                "bench",
                "--no-cache",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "1 of 2 benchmark(s) failed" in err
        assert "clos: boom" in err
        # The BENCH artifact still lands, recording the failure.
        bench_files = list(tmp_path.glob("BENCH_*.json"))
        assert len(bench_files) == 1
        assert '"error": "boom"' in bench_files[0].read_text()
