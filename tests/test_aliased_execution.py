"""GCTD soundness validation: aliased (group-keyed) execution.

In aliased mode the VM reads and writes through the shared storage
group slots, exactly like the generated C — every member of a group is
one buffer.  If Phase 1 ever let two simultaneously-live variables
share a color, or Phase 2 grouped variables whose lifetimes overlap,
the aliased run would produce different output.  Running the whole
benchmark suite this way is an end-to-end proof obligation on the
allocator.
"""

import pytest

from repro.bench.suite import BENCHMARK_NAMES, compile_benchmark
from repro.compiler.pipeline import compile_source
from repro.runtime.builtins import RuntimeContext


def check(text, **sources):
    if sources:
        from repro.compiler.pipeline import compile_program

        files = {"main.m": text}
        files.update(
            {f"{n}.m": s for n, s in sources.items()}
        )
        result = compile_program(files)
    else:
        result = compile_source(text)
    plain = result.run_mat2c(RuntimeContext(seed=5))
    aliased = result.run_mat2c(RuntimeContext(seed=5), aliased=True)
    assert plain.output == aliased.output
    return result


class TestAliasedPrograms:
    def test_elementwise_chain(self):
        check("a = rand(6); b = a + 1; c = b .* 2; disp(sum(sum(c)));")

    def test_loop_accumulation(self):
        check(
            "acc = zeros(3); img = ones(3);\n"
            "for t = 1:4\n acc = acc + img;\nend\n"
            "disp(sum(sum(acc)));"
        )

    def test_phi_web_reuse(self):
        check(
            "q = rand(1);\n"
            "if q > 0.5\n b = rand(4);\nelse\n b = rand(4) + 1;\nend\n"
            "disp(sum(sum(b)));"
        )

    def test_value_still_needed_after_loop(self):
        # the regression that motivated this mode: zeros CSE'd between
        # two variables, one consumed after the other's web mutates
        check(
            "n = 3;\n"
            "img = zeros(n, n);\n"
            "for i = 1:n\n for j = 1:n\n  img(i, j) = i + 2 * j;\n end\nend\n"
            "acc = zeros(n, n);\n"
            "for t = 1:4\n acc = acc + img;\nend\n"
            "disp(sum(sum(acc))); disp(acc(3, 2));"
        )

    def test_swap_rotation(self):
        check(
            "a = rand(3); b = rand(3);\n"
            "for k = 1:3\n t = a; a = b; b = t;\nend\n"
            "disp(sum(sum(a))); disp(sum(sum(b)));"
        )

    def test_growth_in_group(self):
        check(
            "v = [1];\n"
            "for k = 2:6\n v(k) = v(k - 1) + k;\nend\n"
            "disp(v(6));"
        )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_suite_aliased(name):
    result = compile_benchmark(name)
    plain = result.run_mat2c(RuntimeContext(seed=5))
    aliased = result.run_mat2c(RuntimeContext(seed=5), aliased=True)
    assert plain.output == aliased.output, (
        f"{name}: aliased execution diverged — unsound coalescing"
    )
