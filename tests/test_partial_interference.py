"""Tests for the §2.1 partial-interference opportunity detector."""

from repro.compiler.pipeline import compile_source
from repro.core.partial import find_partial_interference
from repro.ssa.construct import base_name


def analyze(text):
    result = compile_source(text)
    report = find_partial_interference(
        result.ssa_func, result.env, result.gctd.graph
    )
    return result, report


class TestPaperExample:
    def test_section21_example_detected(self):
        """The paper's §2.1 IR: a, b 2×2; c = a(1); d = b + c."""
        result, report = analyze(
            "a = rand(2, 2);\n"
            "b = rand(2, 2);\n"
            "c = a(1, 1);\n"
            "d = b + c;\n"
            "disp(d);"
        )
        pairs = {
            (base_name(p.array), base_name(p.other)) for p in report.pairs
        }
        assert ("a", "b") in pairs

    def test_saving_is_all_but_one_element(self):
        result, report = analyze(
            "a = rand(2, 2);\n"
            "b = rand(2, 2);\n"
            "c = a(1, 1);\n"
            "d = b + c;\n"
            "disp(d);"
        )
        pair = next(
            p for p in report.pairs if base_name(p.array) == "a"
        )
        # 2×2 doubles: (4-1)*8 = 24 bytes could have been overlapped —
        # "a total of five double precision memory locations" in all
        assert pair.potential_bytes == 3 * 8

    def test_full_array_use_not_flagged(self):
        # here `a` is used wholesale while b is live: no partial overlap
        result, report = analyze(
            "a = rand(2, 2);\n"
            "b = rand(2, 2);\n"
            "d = b + a;\n"
            "disp(d);"
        )
        pairs = {
            (base_name(p.array), base_name(p.other)) for p in report.pairs
        }
        assert ("a", "b") not in pairs

    def test_non_interfering_pair_not_flagged(self):
        result, report = analyze(
            "a = rand(2, 2); s = sum(sum(a));\n"
            "b = rand(2, 2); t = sum(sum(b));\n"
            "disp(s + t);"
        )
        pairs = {
            (base_name(p.array), base_name(p.other)) for p in report.pairs
        }
        assert ("a", "b") not in pairs

    def test_report_totals(self):
        result, report = analyze(
            "a = rand(3, 3);\n"
            "b = rand(3, 3);\n"
            "c = a(2, 2);\n"
            "d = b * c;\n"
            "disp(sum(sum(d)));"
        )
        assert report.total_potential_bytes == sum(
            p.potential_bytes for p in report.pairs
        )
        if report.pairs:
            assert report.pairs[0].potential_bytes == max(
                p.potential_bytes for p in report.pairs
            )
