"""Benchmark-level C differential testing.

Every one of the paper's eleven benchmarks is compiled to C by the
back end, built with the host C compiler, and must print exactly what
the mat2c VM prints — the strongest end-to-end check in the repo: the
generated C exercises GCTD's storage sharing (group buffers, in-place
updates, resize-on-the-fly) on real memory.
"""

import pytest

from repro.backend.cc import compile_and_run, find_compiler
from repro.backend.cgen import CodegenError, generate_c
from repro.bench.suite import BENCHMARK_NAMES, compile_benchmark
from repro.runtime.builtins import RuntimeContext

pytestmark = pytest.mark.slow  # gcc integration over the whole suite

needs_cc = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler available"
)


@needs_cc
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_c_matches_vm(name):
    compilation = compile_benchmark(name)
    c_source = generate_c(compilation)
    native = compile_and_run(c_source, timeout_seconds=60)
    assert native.returncode == 0, native.stderr
    vm = compilation.run_mat2c(RuntimeContext())
    assert native.stdout == vm.output, f"{name}: C/VM divergence"


def test_rank4_rejected():
    from repro.compiler.pipeline import compile_source

    result = compile_source(
        "a = zeros(2, 2, 2, 2); a(1, 1, 1, 2) = 5; disp(a(1, 1, 1, 2));"
    )
    with pytest.raises(CodegenError, match="rank"):
        generate_c(result)


@needs_cc
def test_dynamic_nonscalar_subscript_traps():
    # a genuinely non-scalar value used where the emitted C needs a
    # scalar must trap (exit 3), never silently truncate
    from repro.compiler.pipeline import compile_source

    result = compile_source(
        "v = [1, 2, 3];\n"
        "k = 1;\n"
        "while v(k) < 2\n k = k + 1;\nend\n"
        "w = zeros(1, k + 1) + 5;\n"   # dynamically 1x2
        "fprintf('%.1f\\n', sum(w) / w);\n"  # w used as a scalar divisor
    )
    c_source = generate_c(result)
    native = compile_and_run(c_source)
    assert native.returncode == 3
    assert "expected a scalar" in native.stderr
