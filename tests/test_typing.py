"""Unit tests for the type/shape inference engine."""

import math

from repro.analysis.pass_manager import run_cleanup_pipeline
from repro.frontend.parser import parse_program
from repro.ir.lower import lower_program
from repro.ssa.construct import base_name, construct_ssa
from repro.typing.infer import infer_types
from repro.typing.intrinsic import Intrinsic
from repro.typing.shape import ConstDim, Shape, ValueDim


def infer(text, cleanup=True, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    func = construct_ssa(lower_program(parse_program(files)))
    if cleanup:
        run_cleanup_pipeline(func)
    env = infer_types(func)
    return func, env


def type_of(func, env, base):
    """Type of the last SSA version of a base name."""
    versions = [
        r
        for i in func.instructions()
        for r in i.results
        if base_name(r) == base
    ]
    assert versions, f"no versions of {base}"
    return env.of(versions[-1])


class TestIntrinsics:
    def test_integer_literal(self):
        func, env = infer("x = 42; disp(x);", cleanup=False)
        assert type_of(func, env, "x").intrinsic is Intrinsic.INTEGER

    def test_real_literal(self):
        func, env = infer("x = 1.5; disp(x);", cleanup=False)
        assert type_of(func, env, "x").intrinsic is Intrinsic.REAL

    def test_imaginary_literal(self):
        func, env = infer("x = 3i; disp(x);", cleanup=False)
        assert type_of(func, env, "x").intrinsic is Intrinsic.COMPLEX

    def test_arithmetic_promotes(self):
        func, env = infer("x = 2 + 1.5; disp(x);", cleanup=False)
        assert type_of(func, env, "x").intrinsic is Intrinsic.REAL

    def test_comparison_is_boolean(self):
        func, env = infer("a = rand(2); x = a > 0.5; disp(x);")
        assert type_of(func, env, "x").intrinsic is Intrinsic.BOOLEAN

    def test_eye_is_boolean(self):
        # paper Example 2: MAGICA infers BOOLEAN for identity matrices
        func, env = infer("a = eye(3); disp(a);")
        assert type_of(func, env, "a").intrinsic is Intrinsic.BOOLEAN

    def test_sqrt_of_nonnegative_is_real(self):
        func, env = infer("a = rand(3); b = sqrt(a); disp(b);")
        assert type_of(func, env, "b").intrinsic is Intrinsic.REAL

    def test_sqrt_of_possibly_negative_is_complex(self):
        func, env = infer(
            "a = rand(3) - 0.5; b = sqrt(a); disp(b);"
        )
        assert type_of(func, env, "b").intrinsic is Intrinsic.COMPLEX

    def test_paper_example1_unknown_goes_complex(self):
        # t1 = t0 - 1.345 with t0 unknown infers COMPLEX (paper Ex. 1)
        func, env = infer(
            "t0 = mystery(); t1 = t0 - 1.345; t2 = 2.788 * t1;"
            " t3 = tan(t2); disp(t3);",
            mystery="function y = mystery()\ny = rand(1) * 4i;\n",
        )
        assert type_of(func, env, "t1").intrinsic is Intrinsic.COMPLEX
        assert type_of(func, env, "t3").intrinsic is Intrinsic.COMPLEX

    def test_abs_of_complex_is_real(self):
        func, env = infer("z = 3i; a = abs(z); disp(a);", cleanup=False)
        assert type_of(func, env, "a").intrinsic is Intrinsic.REAL

    def test_floor_is_integer(self):
        func, env = infer("a = rand(1); b = floor(a * 10); disp(b);")
        assert type_of(func, env, "b").intrinsic is Intrinsic.INTEGER


class TestStaticShapes:
    def test_constructor_with_constants(self):
        func, env = infer("a = zeros(3, 4); disp(a);")
        assert type_of(func, env, "a").shape == Shape.matrix(3, 4)

    def test_square_constructor(self):
        func, env = infer("a = rand(5); disp(a);")
        assert type_of(func, env, "a").shape == Shape.matrix(5, 5)

    def test_constant_propagation_feeds_shapes(self):
        func, env = infer("n = 10; a = zeros(n, n); disp(a);")
        assert type_of(func, env, "a").shape == Shape.matrix(10, 10)

    def test_elementwise_preserves_shape(self):
        func, env = infer("a = rand(3, 4); b = a + 1; disp(b);")
        assert type_of(func, env, "b").shape == Shape.matrix(3, 4)

    def test_scalar_array_op_takes_array_shape(self):
        func, env = infer("a = rand(2, 6); b = 2 * a; disp(b);")
        assert type_of(func, env, "b").shape == Shape.matrix(2, 6)

    def test_matrix_multiply_shape(self):
        func, env = infer(
            "a = rand(3, 4); b = rand(4, 5); c = a * b; disp(c);"
        )
        assert type_of(func, env, "c").shape == Shape.matrix(3, 5)

    def test_transpose_swaps(self):
        func, env = infer("a = rand(3, 4); b = a'; disp(b);")
        assert type_of(func, env, "b").shape == Shape.matrix(4, 3)

    def test_range_length(self):
        func, env = infer("v = 1:10; disp(v);")
        assert type_of(func, env, "v").shape == Shape.matrix(1, 10)

    def test_range_with_step(self):
        func, env = infer("v = 10:-2:1; disp(v);")
        assert type_of(func, env, "v").shape == Shape.matrix(1, 5)

    def test_scalar_subsref(self):
        func, env = infer("a = rand(4); c = a(2, 3); disp(c);")
        assert type_of(func, env, "c").shape.is_scalar

    def test_colon_subscript_extent(self):
        func, env = infer("a = rand(4, 7); c = a(:, 2); disp(c);")
        assert type_of(func, env, "c").shape == Shape.matrix(4, 1)

    def test_horzcat_adds_cols(self):
        func, env = infer(
            "a = rand(2, 3); b = rand(2, 4); c = [a, b]; disp(c);"
        )
        assert type_of(func, env, "c").shape == Shape.matrix(2, 7)

    def test_vertcat_adds_rows(self):
        func, env = infer("m = [1, 2; 3, 4]; disp(m);")
        assert type_of(func, env, "m").shape == Shape.matrix(2, 2)

    def test_3d_constructor(self):
        func, env = infer("a = zeros(2, 3, 4); disp(a);")
        shape = type_of(func, env, "a").shape
        assert shape.rank == 3
        assert shape == Shape((ConstDim(2), ConstDim(3), ConstDim(4)))


class TestSymbolicShapes:
    def test_symbolic_constructor_uses_valuedim(self):
        func, env = infer(
            "n = mystery(); a = zeros(n, n); disp(a);",
            mystery="function y = mystery()\ny = rand(1) * 100;\n",
        )
        shape = type_of(func, env, "a").shape
        assert not shape.is_static
        assert all(isinstance(d, ValueDim) for d in shape.dims)

    def test_elementwise_chain_shares_symbolic_shape(self):
        # the paper's Example 1: shapes of t1, t2, t3 all equal s(t0)
        func, env = infer(
            "t0 = mystery(); t1 = t0 - 1.345; t2 = 2.788 * t1;"
            " t3 = tan(t2); disp(t3);",
            mystery="function y = mystery()\nn = rand(1)*5;\ny = rand(n, n);\n",
        )
        s1 = type_of(func, env, "t1").shape
        s2 = type_of(func, env, "t2").shape
        s3 = type_of(func, env, "t3").shape
        assert s1 == s2 == s3

    def test_subsasgn_in_bounds_keeps_shape(self):
        func, env = infer("a = zeros(5); a(2, 2) = 1; disp(a);")
        assert type_of(func, env, "a").shape == Shape.matrix(5, 5)

    def test_subsasgn_growth_expands(self):
        func, env = infer("a = zeros(2); a(4, 4) = 1; disp(a);")
        shape = type_of(func, env, "a").shape
        # extent must cover index 4
        from repro.typing.shape import dim_le

        assert dim_le(ConstDim(4), shape.dims[0])

    def test_subsasgn_symbolic_growth_monotone(self):
        # paper Example 2: a = eye(x, y); b = subsasgn(a, ...)
        func, env = infer(
            "x = mystery(); y = mystery();\n"
            "a = eye(x, y); a(1, 2) = 1; disp(a);",
            mystery="function v = mystery()\nv = rand(1) * 9 + 1;\n",
        )
        shape = type_of(func, env, "a").shape
        assert shape.rank == 2


class TestRanges:
    def test_literal_exact_range(self):
        func, env = infer("x = 7; disp(x);", cleanup=False)
        rng = type_of(func, env, "x").range
        assert rng.is_exact and rng.exact_value == 7

    def test_rand_range(self):
        func, env = infer("a = rand(3); disp(a);")
        rng = type_of(func, env, "a").range
        assert rng.lo == 0.0 and rng.hi == 1.0

    def test_loop_counter_widened(self):
        func, env = infer(
            "i = 0;\nwhile i < 100\n i = i + 1;\nend\ndisp(i);"
        )
        rng = type_of(func, env, "i").range
        assert rng.hi == math.inf or rng.hi >= 100

    def test_abs_range_nonnegative(self):
        func, env = infer("a = rand(1) - 0.5; b = abs(a); disp(b);")
        assert type_of(func, env, "b").range.is_nonnegative


class TestStorageSizes:
    def test_static_storage_real(self):
        func, env = infer("a = zeros(10, 10); disp(a);")
        assert type_of(func, env, "a").static_storage_size() == 800

    def test_static_storage_boolean(self):
        func, env = infer("a = eye(10); disp(a);")
        # BOOLEAN maps to C int (4 bytes)
        assert type_of(func, env, "a").static_storage_size() == 400

    def test_symbolic_storage_is_none(self):
        func, env = infer(
            "n = mystery(); a = zeros(n); disp(a);",
            mystery="function y = mystery()\ny = rand(1) * 50;\n",
        )
        assert type_of(func, env, "a").static_storage_size() is None

    def test_phi_of_two_static_shapes(self):
        # §3.2.1 case 2: max(S(v), S(w)) for a join of static sizes
        func, env = infer(
            "q = rand(1);\n"
            "if q > 0.5\n a = zeros(4, 4);\nelse\n a = zeros(2, 8);\nend\n"
            "disp(a);"
        )
        t = type_of(func, env, "a")
        assert t.shape.is_static
        assert t.static_storage_size() == 4 * 8 * 8  # max(4x4, 2x8)=32 elems


class TestShapeFolding:
    def test_size_folds_to_const(self):
        from repro.typing.shapefold import fold_shape_queries

        func, env = infer("a = zeros(6, 2); n = size(a, 1); disp(n);")
        folded = fold_shape_queries(func, env)
        assert folded >= 1

    def test_numel_folds(self):
        from repro.typing.shapefold import fold_shape_queries

        func, env = infer("a = ones(3, 3); n = numel(a); disp(n);")
        assert fold_shape_queries(func, env) >= 1

    def test_symbolic_size_not_folded(self):
        from repro.typing.shapefold import fold_shape_queries

        func, env = infer(
            "m = mystery(); a = zeros(m, m); n = size(a, 1); disp(n);",
            mystery="function y = mystery()\ny = rand(1) * 50;\n",
        )
        size_calls = [
            i for i in func.instructions() if i.op == "call:size"
        ]
        fold_shape_queries(func, env)
        still_calls = [
            i for i in func.instructions() if i.op == "call:size"
        ]
        assert len(still_calls) == len(size_calls)
