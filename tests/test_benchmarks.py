"""Benchmark-suite tests: compilation, differential execution, and the
paper's qualitative per-benchmark characteristics."""

import pytest

from repro.bench.suite import (
    BENCHMARK_NAMES,
    SUITE,
    compile_benchmark,
    count_lines,
    load_sources,
    run_benchmark,
)
from repro.core.allocation import StorageClass

#: benchmarks the paper reports as fully static (`d = 0` in Table 2)
FULLY_STATIC = ("clos", "crni", "dich", "fdtd", "fiff")

#: benchmarks with mostly-symbolic shapes (large `d` in Table 2)
MOSTLY_DYNAMIC = ("adpt", "capr", "edit", "nb1d", "nb3d")

_COMPILED = {}


def compiled(name):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(name)
    return _COMPILED[name]


class TestSuiteStructure:
    def test_all_eleven_present(self):
        assert len(BENCHMARK_NAMES) == 11

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_sources_load(self, name):
        sources = load_sources(name)
        assert f"{name}_drv.m" in sources
        assert count_lines(sources) > 10

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_compiles(self, name):
        result = compiled(name)
        result.exec_func.verify()
        assert result.report.original_variable_count > 0

    def test_three_dimensional_benchmarks(self):
        for name in ("fdtd", "nb3d"):
            assert SUITE[name].three_dimensional


class TestDifferentialExecution:
    """mat2c = mcc = interpreter, per benchmark (capr/dich are the
    slowest; they run here too — the whole suite stays under a minute)."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_models_agree(self, name):
        run = run_benchmark(name)
        assert run.mat2c.output == run.mcc.output
        assert run.mat2c.output == run.interp.output
        assert run.mat2c.output.strip(), "benchmark must print something"


class TestPaperCharacteristics:
    @pytest.mark.parametrize("name", FULLY_STATIC)
    def test_fully_static_benchmarks_have_no_dynamic_subsumption(
        self, name
    ):
        # Table 2: d = 0 — everything stack allocated
        result = compiled(name)
        stats = result.report
        assert stats.dynamic_subsumed == 0, (
            f"{name}: paper reports d=0 but got {stats.dynamic_subsumed}"
        )

    @pytest.mark.parametrize("name", FULLY_STATIC)
    def test_fully_static_benchmarks_avoid_heap_arrays(self, name):
        result = compiled(name)
        heap_groups = [
            g
            for g in result.plan.groups
            if g.storage is StorageClass.HEAP
        ]
        assert not heap_groups, (
            f"{name}: paper stack-allocates everything, found heap "
            f"groups rooted at {[g.root for g in heap_groups]}"
        )

    @pytest.mark.parametrize("name", MOSTLY_DYNAMIC)
    def test_dynamic_benchmarks_have_symbolic_arrays(self, name):
        result = compiled(name)
        heap_groups = [
            g
            for g in result.plan.groups
            if g.storage is StorageClass.HEAP
        ]
        assert heap_groups, f"{name}: expected symbolic (heap) arrays"

    @pytest.mark.parametrize("name", MOSTLY_DYNAMIC)
    def test_dynamic_benchmarks_subsume_dynamically(self, name):
        # Table 2: d > 0 — symbolic variables still coalesce via ⪯
        result = compiled(name)
        assert result.report.dynamic_subsumed > 0, (
            f"{name}: paper reports d>0"
        )

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_reduces_variables(self, name):
        stats = compiled(name).report
        subsumed = stats.static_subsumed + stats.dynamic_subsumed
        assert subsumed > 0, f"{name}: GCTD subsumed nothing"
        assert subsumed < stats.original_variable_count

    def test_fiff_has_largest_static_reduction(self):
        # the paper's headline: fiff's large coalescent arrays
        reductions = {
            name: compiled(name).report.storage_reduction_bytes
            for name in FULLY_STATIC
        }
        assert max(reductions, key=reductions.get) == "fiff"

    def test_fiff_reduction_magnitude(self):
        # 81x81 doubles ≈ 51 KB per coalesced array; several coalesce
        stats = compiled("fiff").report
        assert stats.storage_reduction_bytes > 81 * 81 * 8

    def test_diff_uses_complex(self):
        from repro.typing.intrinsic import Intrinsic

        result = compiled("diff")
        assert any(
            g.intrinsic is Intrinsic.COMPLEX for g in result.plan.groups
        )

    def test_rank3_arrays_present(self):
        for name in ("fdtd", "nb3d"):
            result = compiled(name)
            env = result.env
            assert any(
                env.of(v).shape.rank >= 3
                for v in result.ssa_func.defined_vars()
            ), f"{name}: expected rank-3 arrays"
