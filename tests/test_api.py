"""Tests for the typed API facade (:mod:`repro.api`).

Three layers: the options round-trip (property-based), the wire
types against committed golden fixtures (so the `/v1` format cannot
drift silently), and the server's error envelope on every refusal
path (429/500/504 via the ``compile_impl`` seam)."""

import json
import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.api import (
    ApiValidationError,
    BatchRequest,
    CompileRequest,
    CompileResponse,
    CompileStats,
    ErrorEnvelope,
    UnknownOptionError,
    code_for_status,
    options_from_wire,
    options_to_wire,
)
from repro.compiler.pipeline import CompilerOptions
from repro.core.gctd import GCTDOptions
from repro.core.opsem import OpsemConfig
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.service.fingerprint import canonical_options

FIXTURES = Path(__file__).parent / "fixtures"

PROGRAM = "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"


def fixture(name: str) -> dict:
    return json.loads((FIXTURES / name).read_text())


# --------------------------------------------------------------------------
# options round-trip
# --------------------------------------------------------------------------


def option_sets():
    opsem = st.builds(
        OpsemConfig,
        use_type_info=st.booleans(),
        enabled=st.booleans(),
    )
    gctd = st.builds(
        GCTDOptions,
        enabled=st.booleans(),
        opsem=opsem,
        phi_coalescing=st.booleans(),
        phase2_symbolic=st.booleans(),
        verify=st.booleans(),
    )
    return st.builds(
        CompilerOptions,
        gctd=gctd,
        enable_cse=st.booleans(),
        enable_constfold=st.booleans(),
        enable_shapefold=st.booleans(),
        max_steps=st.integers(min_value=1, max_value=10**9),
    )


class TestOptionSetRoundTrip:
    @given(option_sets())
    def test_to_dict_from_dict_round_trips(self, options):
        rebuilt = CompilerOptions.from_dict(options.to_dict())
        assert rebuilt == options
        assert rebuilt.to_dict() == options.to_dict()

    @given(option_sets())
    def test_to_dict_keys_sorted_recursively(self, options):
        def check(d):
            assert list(d) == sorted(d)
            for value in d.values():
                if isinstance(value, dict):
                    check(value)

        check(options.to_dict())

    def test_from_dict_defaults(self):
        assert CompilerOptions.from_dict(None) == CompilerOptions()
        assert CompilerOptions.from_dict({}) == CompilerOptions()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(UnknownOptionError) as exc:
            CompilerOptions.from_dict({"frobnicate": True})
        assert "frobnicate" in str(exc.value)

    def test_from_dict_rejects_nested_unknown_keys(self):
        with pytest.raises(UnknownOptionError):
            CompilerOptions.from_dict({"gctd": {"bogus": 1}})

    def test_nested_rebuild(self):
        options = CompilerOptions.from_dict(
            {"gctd": {"enabled": False, "opsem": {"enabled": False}}}
        )
        assert isinstance(options.gctd, GCTDOptions)
        assert isinstance(options.gctd.opsem, OpsemConfig)
        assert not options.gctd.enabled
        assert not options.gctd.opsem.enabled

    @given(option_sets())
    def test_canonical_options_consumes_to_dict(self, options):
        assert canonical_options(options) == options.to_dict()


# --------------------------------------------------------------------------
# wire options
# --------------------------------------------------------------------------


class TestWireOptions:
    def test_defaults(self):
        assert options_from_wire(None) == CompilerOptions()
        assert options_from_wire({}) == CompilerOptions()
        assert options_to_wire(CompilerOptions()) == {}
        assert options_to_wire(None) == {}

    def test_unknown_key_message_matches_server(self):
        with pytest.raises(ApiValidationError) as exc:
            options_from_wire({"frob": 1})
        assert str(exc.value) == "unknown options: ['frob']"

    def test_round_trip(self):
        wire = {"gctd": False, "cse": False}
        options = options_from_wire(wire)
        assert not options.gctd.enabled
        assert not options.enable_cse
        assert options_to_wire(options) == {"gctd": False, "cse": False}


# --------------------------------------------------------------------------
# golden fixtures
# --------------------------------------------------------------------------


class TestGoldenFixtures:
    def golden_request(self) -> CompileRequest:
        return CompileRequest(
            sources={"main.m": "a = ones(3); disp(sum(sum(a)));\n"},
            entry="main",
            options=options_from_wire({"gctd": False, "cse": False}),
            name="golden",
            verify_plan=True,
            deadline_seconds=12.5,
        )

    def test_compile_request_matches_golden(self):
        assert self.golden_request().to_wire() == fixture(
            "compile_request.json"
        )

    def test_compile_request_round_trips(self):
        wire = fixture("compile_request.json")
        assert CompileRequest.from_wire(wire).to_wire() == wire

    def test_batch_request_matches_golden(self):
        batch = BatchRequest(items=[self.golden_request()], jobs=2)
        assert batch.to_wire() == fixture("batch_request.json")
        rebuilt = BatchRequest.from_wire(fixture("batch_request.json"))
        assert rebuilt.to_wire() == fixture("batch_request.json")

    def test_compile_response_matches_golden(self):
        response = CompileResponse(
            ok=True,
            name="golden",
            fingerprint="f" * 64,
            cache_hit=False,
            entry="main",
            wall_seconds=0.25,
            stats=CompileStats(
                variables=12,
                static_subsumed=4,
                dynamic_subsumed=1,
                storage_reduction_kb=0.5,
                colors=3,
                groups=5,
                stack_frame_bytes=96,
            ),
            report="== report ==",
            verification={
                "ok": True,
                "checks": {},
                "variables": 12,
                "groups": 5,
                "violations": [],
            },
        )
        assert response.to_wire() == fixture("compile_response.json")
        rebuilt = CompileResponse.from_wire(
            fixture("compile_response.json")
        )
        assert rebuilt.to_wire() == fixture("compile_response.json")

    def test_response_key_order_is_stable(self):
        # the pre-facade server emitted exactly this order; clients
        # diffing raw JSON depend on it staying put
        wire = CompileResponse(
            ok=True, stats=CompileStats()
        ).to_wire()
        assert list(wire) == [
            "ok",
            "name",
            "fingerprint",
            "cache_hit",
            "entry",
            "wall_seconds",
            "stats",
            "report",
        ]

    def test_error_envelope_matches_golden(self):
        envelope = ErrorEnvelope(
            code="queue_full",
            message="compile queue is full, retry later",
            detail={"retry_after_seconds": 1.0},
            status=429,
        )
        assert envelope.to_wire() == fixture("error_envelope.json")

    def test_error_envelope_keeps_legacy_keys(self):
        wire = ErrorEnvelope(code="bad_request", message="nope").to_wire()
        assert wire["ok"] is False
        assert wire["error"] == "nope"  # pre-envelope clients read this


# --------------------------------------------------------------------------
# request validation and envelope parsing
# --------------------------------------------------------------------------


class TestValidation:
    def test_missing_sources(self):
        with pytest.raises(ApiValidationError) as exc:
            CompileRequest.from_wire({})
        assert "missing 'sources'" in str(exc.value)

    def test_bad_source_types(self):
        with pytest.raises(ApiValidationError) as exc:
            CompileRequest.from_wire({"sources": {"a.m": 3}})
        assert "'sources' must map str -> str" in str(exc.value)

    def test_bad_entry(self):
        with pytest.raises(ApiValidationError):
            CompileRequest.from_wire(
                {"sources": {"a.m": "x = 1\n"}, "entry": 7}
            )

    def test_batch_missing_requests(self):
        with pytest.raises(ApiValidationError) as exc:
            BatchRequest.from_wire({})
        assert "missing 'requests'" in str(exc.value)

    def test_batch_names_defaulted_by_index(self):
        batch = BatchRequest.from_wire(
            {
                "requests": [
                    {"sources": {"a.m": "x = 1\n"}},
                    {"sources": {"b.m": "x = 2\n"}, "name": "named"},
                ]
            }
        )
        assert [item.name for item in batch.items] == [
            "request-0",
            "named",
        ]

    def test_envelope_from_legacy_body(self):
        envelope = ErrorEnvelope.from_wire(
            {"ok": False, "error": "kaput"}, 500
        )
        assert envelope.code == "internal_error"
        assert envelope.message == "kaput"
        assert envelope.status == 500

    def test_envelope_from_empty_body(self):
        envelope = ErrorEnvelope.from_wire(None, 504)
        assert envelope.code == "deadline_exceeded"
        assert "504" in envelope.message

    def test_code_for_status_covers_server_statuses(self):
        for status in (400, 404, 405, 413, 422, 429, 500, 503, 504):
            assert not code_for_status(status).startswith("http_")
        assert code_for_status(418) == "http_418"

    def test_summary_mentions_status_code_and_message(self):
        envelope = ErrorEnvelope.from_wire(
            {"code": "queue_full", "message": "full",
             "detail": {"retry_after_seconds": 2}},
            429,
        )
        line = envelope.summary()
        assert "429" in line
        assert "queue_full" in line
        assert "full" in line
        assert "retry after 2s" in line


# --------------------------------------------------------------------------
# server refusal paths carry the envelope
# --------------------------------------------------------------------------


def make_config(tmp_path, **overrides) -> ServerConfig:
    values = {
        "port": 0,
        "workers": 1,
        "queue_limit": 8,
        "cache_root": str(tmp_path / "cache"),
        "drain_seconds": 5.0,
    }
    values.update(overrides)
    return ServerConfig(**values)


def assert_envelope(response, status: int, code: str) -> ErrorEnvelope:
    assert response.status == status
    payload = response.payload
    # legacy keys stay for pre-envelope clients…
    assert payload["ok"] is False
    assert payload["error"] == payload["message"]
    # …and the typed envelope rides along
    assert payload["code"] == code
    assert isinstance(payload["detail"], dict)
    envelope = response.envelope()
    assert envelope.code == code
    assert envelope.status == status
    return envelope


class _InjectedCrash(BaseException):
    """Not an Exception: simulates a worker-killing failure."""


class TestServerErrorEnvelopes:
    def test_429_queue_full_envelope(self, tmp_path):
        release = threading.Event()

        def impl(payload):
            release.wait(10.0)
            return {"ok": True}

        config = make_config(tmp_path, queue_limit=1)
        with ServerThread(config, compile_impl=impl) as server:
            client = ServerClient(server.url, timeout=30.0)
            responses = []
            threads = [
                threading.Thread(
                    target=lambda: responses.append(
                        client.compile({"m.m": PROGRAM})
                    )
                )
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            # wait until the overflow requests have been shed
            deadline = time.monotonic() + 5.0
            while (
                len(responses) < 4 and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            release.set()
            for t in threads:
                t.join(10.0)
            shed = [r for r in responses if r.status == 429]
            assert shed, "expected at least one shed request"
            envelope = assert_envelope(shed[0], 429, "queue_full")
            assert envelope.detail["retry_after_seconds"] > 0
            assert "retry after" in envelope.summary()

    def test_500_crash_envelope(self, tmp_path):
        def impl(payload):
            raise _InjectedCrash("boom")

        with ServerThread(
            make_config(tmp_path), compile_impl=impl
        ) as server:
            client = ServerClient(server.url, timeout=30.0)
            response = client.compile({"m.m": PROGRAM})
            assert_envelope(response, 500, "internal_error")

    def test_504_deadline_envelope(self, tmp_path):
        def impl(payload):
            time.sleep(5.0)
            return {"ok": True}

        with ServerThread(
            make_config(tmp_path), compile_impl=impl
        ) as server:
            client = ServerClient(server.url, timeout=30.0)
            response = client.compile(
                {"m.m": PROGRAM}, deadline_seconds=0.2
            )
            envelope = assert_envelope(
                response, 504, "deadline_exceeded"
            )
            assert envelope.detail["deadline_seconds"] == 0.2

    def test_400_bad_options_envelope(self, tmp_path):
        with ServerThread(make_config(tmp_path)) as server:
            client = ServerClient(server.url, timeout=30.0)
            response = client.compile(
                {"m.m": PROGRAM}, options={"frob": 1}
            )
            envelope = assert_envelope(response, 400, "bad_request")
            assert "frob" in envelope.message

    def test_422_compile_error_envelope(self, tmp_path):
        with ServerThread(make_config(tmp_path)) as server:
            client = ServerClient(server.url, timeout=30.0)
            response = client.compile({"m.m": "x = (((\n"})
            assert_envelope(response, 422, "compile_error")


# --------------------------------------------------------------------------
# the driver consumes the facade's request type
# --------------------------------------------------------------------------


class TestDriverUsesFacadeRequest:
    def test_driver_request_is_api_request(self):
        from repro.service.driver import CompileRequest as DriverRequest

        assert DriverRequest is CompileRequest

    def test_positional_construction_still_works(self):
        request = CompileRequest(
            {"a.m": "x = 1\n"}, options=None, name="r"
        )
        assert request.sources == {"a.m": "x = 1\n"}
        assert request.name == "r"
        assert replace(request, name="s").name == "s"
