"""Focused tests for the inference details added for the reproduction:
forindex bounds, symbolic upper bounds (sym_hi), square nonnegativity,
reduction exactness, widening stability, and shape-fold interplay."""

import math

from repro.analysis.pass_manager import run_cleanup_pipeline
from repro.frontend.parser import parse_program
from repro.ir.lower import lower_program
from repro.ssa.construct import base_name, construct_ssa
from repro.typing.infer import infer_types
from repro.typing.intrinsic import Intrinsic
from repro.typing.shape import ConstDim, Shape


def infer(text, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    func = construct_ssa(lower_program(parse_program(files)))
    run_cleanup_pipeline(func)
    env = infer_types(func)
    return func, env


def type_of(func, env, base):
    versions = [
        r for i in func.instructions() for r in i.results
        if base_name(r) == base
    ]
    assert versions, base
    return env.of(versions[-1])


class TestForindexBounds:
    def test_constant_loop_bounds(self):
        func, env = infer(
            "s = 0;\nfor k = 1:10\n s = s + k;\nend\ndisp(s);"
        )
        k = type_of(func, env, "k")
        assert k.range.lo >= 1 and k.range.hi <= 10
        assert k.range.integral

    def test_bounds_enable_inbounds_subsasgn(self):
        func, env = infer(
            "a = zeros(10, 10);\n"
            "for k = 1:10\n a(k, k) = 1;\nend\ndisp(sum(sum(a)));"
        )
        assert type_of(func, env, "a").shape == Shape.matrix(10, 10)

    def test_symbolic_upper_bound(self):
        func, env = infer(
            "n = mystery();\n"
            "a = zeros(n, 1);\n"
            "for k = 1:n\n a(k, 1) = k;\nend\ndisp(sum(a));",
            mystery="function y = mystery()\ny = floor(rand(1)*9) + 2;\n",
        )
        shape = type_of(func, env, "a").shape
        # the loop writes must not expand the symbolic extent
        from repro.typing.shape import ValueDim

        assert isinstance(shape.dims[0], ValueDim)

    def test_descending_loop_no_sym_hi(self):
        func, env = infer(
            "s = 0;\nfor k = 10:-1:1\n s = s + k;\nend\ndisp(s);"
        )
        k = type_of(func, env, "k")
        assert k.range.lo >= 1 and k.range.hi <= 10


class TestRangeRefinements:
    def test_square_nonnegative(self):
        func, env = infer(
            "x = rand(1) - 0.5; y = x * x; disp(y);"
        )
        assert type_of(func, env, "y").range.lo >= 0

    def test_sqrt_of_square_plus_const_real(self):
        func, env = infer(
            "x = rand(1) - 0.5; r = sqrt(x * x + 0.1); disp(r);"
        )
        assert type_of(func, env, "r").intrinsic is Intrinsic.REAL

    def test_mod_of_nonneg_bounded(self):
        func, env = infer(
            "s = 0;\nfor k = 1:20\n m = mod(k, 5); s = s + m;\nend\n"
            "disp(s);"
        )
        m = type_of(func, env, "m")
        assert m.range.lo >= 0 and m.range.hi <= 4

    def test_mod_feeds_inbounds_subscript(self):
        func, env = infer(
            "a = zeros(6, 6);\n"
            "for k = 1:12\n a(mod(k, 6) + 1, 1) = k;\nend\n"
            "disp(sum(sum(a)));"
        )
        assert type_of(func, env, "a").shape == Shape.matrix(6, 6)


class TestReductionShapes:
    def test_matrix_sum_exact_row(self):
        func, env = infer("a = rand(4, 7); s = sum(a); disp(s);")
        assert type_of(func, env, "s").shape == Shape.matrix(1, 7)

    def test_double_sum_scalar(self):
        func, env = infer("a = rand(4, 7); s = sum(sum(a)); disp(s);")
        assert type_of(func, env, "s").shape.is_scalar

    def test_vector_sum_scalar(self):
        func, env = infer("v = 1:10; s = sum(v); disp(s);")
        assert type_of(func, env, "s").shape.is_scalar


class TestNonIntegerRanges:
    def test_fractional_step_length(self):
        func, env = infer("x = -2:0.5:2; disp(sum(x));")
        assert type_of(func, env, "x").shape == Shape.matrix(1, 9)

    def test_fractional_range_is_real(self):
        func, env = infer("x = 0:0.1:1; disp(sum(x));")
        assert type_of(func, env, "x").intrinsic is Intrinsic.REAL


class TestWideningStability:
    def test_growing_array_converges(self):
        # append in a loop: inference must terminate with a sound bound
        func, env = infer(
            "v = zeros(1, 1);\n"
            "k = 1;\n"
            "while k < 50\n k = k + 1; v(k) = k;\nend\n"
            "disp(sum(v));"
        )
        v = type_of(func, env, "v")
        assert v.shape.rank == 2  # didn't blow up

    def test_fresh_dims_stable_across_passes(self):
        # shapes built from unknowable data must not accumulate
        # ever-growing max() terms (regression test for the fixpoint)
        func, env = infer(
            "n = mystery(); a = zeros(n, n);\n"
            "for k = 1:3\n a = a + 1;\nend\ndisp(sum(sum(a)));",
            mystery="function y = mystery()\ny = floor(rand(1)*9) + 2;\n",
        )
        a = type_of(func, env, "a")
        assert len(str(a.shape)) < 300, "symbolic shape blew up"


class TestShapeFoldInterplay:
    def test_size_of_constructed_feeds_second_constructor(self):
        func, env = infer(
            "a = zeros(6, 4);\n"
            "n = size(a, 1);\n"
            "b = zeros(n, n);\n"
            "disp(sum(sum(b)) + sum(sum(a)));"
        )
        assert type_of(func, env, "b").shape == Shape.matrix(6, 6)

    def test_numel_chain(self):
        func, env = infer(
            "a = ones(3, 5);\n"
            "b = zeros(1, numel(a));\n"
            "disp(sum(b));"
        )
        assert type_of(func, env, "b").shape == Shape.matrix(1, 15)
