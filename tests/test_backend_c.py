"""C backend tests: generation properties plus gcc differential runs.

Programs here stay inside the demo backend's subset (rank ≤ 2, real
data, no rand) so compiled-C stdout must match the mat2c VM's stdout
byte for byte.
"""

import pytest

from repro.backend.cc import compile_and_run, find_compiler
from repro.backend.cgen import CodegenError, generate_c
from repro.compiler.pipeline import compile_source
from repro.runtime.builtins import RuntimeContext

needs_cc = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler available"
)


def c_of(text):
    return generate_c(compile_source(text))


def run_both(text):
    result = compile_source(text)
    c_source = generate_c(result)
    c_run = compile_and_run(c_source)
    assert c_run.returncode == 0, c_run.stderr
    vm = result.run_mat2c(RuntimeContext())
    return c_run.stdout, vm.output, c_source


class TestGenerationProperties:
    def test_stack_groups_become_fixed_buffers(self):
        c = c_of("a = zeros(4); disp(sum(sum(a)));")
        assert "static double g" in c
        assert "_buf[" in c

    def test_heap_groups_become_resizable(self):
        c = c_of(
            "n = floor(17 / 3);\n"
            "a = zeros(n, n); b = a + 1; disp(sum(sum(b)));"
        )
        # n folds to a constant here; force a symbolic case instead
        c2 = c_of(
            "v = [1, 2, 3];\n"
            "k = 1;\n"
            "while v(k) < 3\n k = k + 1;\nend\n"
            "a = zeros(k, k); disp(sum(sum(a)));"
        )
        assert "rt_resize" in c2

    def test_figure1_dispatch_emitted(self):
        """The paper's Figure 1: scalar/scalar/array branches of `+`."""
        c = c_of(
            "v = [1, 2, 3];\n"
            "k = 1;\n"
            "while v(k) < 2\n k = k + 1;\nend\n"
            "a = zeros(k, 3); b = a + k; disp(sum(sum(b)));"
        )
        assert "== 1 &&" in c  # the scalar-operand tests
        assert c.count("else") >= 1

    def test_identity_copy_emits_no_memcpy(self):
        text = (
            "q = 2;\n"
            "if q > 1\n b = zeros(3) + 1;\nelse\n b = zeros(3);\nend\n"
            "disp(sum(sum(b)));"
        )
        result = compile_source(text)
        c = generate_c(result)
        # φ coalescing makes the join copies identities: no data moves
        assert result.identity_copies_folded >= 1

    def test_complex_supported_via_c99(self):
        # rand keeps the complex value from constant-folding away
        c = c_of("z = rand(1) * 3i; disp(abs(z));")
        assert "double complex" in c
        assert "cabs" in c

    def test_3d_supported_with_page_tracking(self):
        c = c_of("a = zeros(2, 2, 2); a(1, 1, 2) = 5; disp(a(1, 1, 2));")
        assert "_q" in c  # the true-column-count tracking

    def test_rank4_rejected(self):
        with pytest.raises(CodegenError):
            c_of(
                "a = zeros(2, 2, 2, 2); a(1, 1, 1, 2) = 5;"
                " disp(a(1, 1, 1, 2));"
            )


@pytest.mark.slow
@needs_cc
class TestDifferentialExecution:
    def test_scalar_arithmetic(self):
        c_out, vm_out, _ = run_both("disp(2 + 3 * 4); disp(10 / 4);")
        assert c_out == vm_out

    def test_loops_and_indexing(self):
        c_out, vm_out, _ = run_both(
            "a = zeros(5);\n"
            "for i = 1:5\n for j = 1:5\n  a(i, j) = i * 10 + j;\n end\nend\n"
            "disp(a(3, 4)); disp(sum(sum(a)));"
        )
        assert c_out == vm_out

    def test_matrix_multiply(self):
        c_out, vm_out, _ = run_both(
            "a = [1, 2; 3, 4]; b = [5, 6; 7, 8]; disp(a * b);"
        )
        assert c_out == vm_out

    def test_elementwise_chain_in_place(self):
        c_out, vm_out, _ = run_both(
            "a = ones(4); b = a + 1; c = b .* 3; d = c - 2;\n"
            "disp(sum(sum(d)));"
        )
        assert c_out == vm_out

    def test_while_loop_with_growth(self):
        c_out, vm_out, _ = run_both(
            "v = [1];\nk = 1;\n"
            "while v(k) < 100\n k = k + 1; v(k) = v(k - 1) * 2;\nend\n"
            "disp(v(k)); disp(k);"
        )
        assert c_out == vm_out

    def test_transpose_and_norm(self):
        c_out, vm_out, _ = run_both(
            "a = [3, 4]; b = a'; disp(norm(b)); disp(b);"
        )
        assert c_out == vm_out

    def test_range_and_reductions(self):
        c_out, vm_out, _ = run_both(
            "v = 1:10; disp(sum(v)); disp(max(v)); disp(min(v));"
        )
        assert c_out == vm_out

    def test_fprintf(self):
        c_out, vm_out, _ = run_both(
            "fprintf('result: %d of %d\\n', 3, 10);"
        )
        assert c_out == vm_out

    def test_eye_and_colon_slice(self):
        c_out, vm_out, _ = run_both(
            "a = eye(3); c = a(:, 2); disp(c); disp(sum(c));"
        )
        assert c_out == vm_out

    def test_display_statement(self):
        c_out, vm_out, _ = run_both("x = 6 * 7\n")
        assert c_out == vm_out

    def test_user_function_inlined(self):
        from repro.compiler.pipeline import compile_program

        result = compile_program(
            {
                "main.m": "disp(triple(14));",
                "triple.m": "function y = triple(x)\ny = 3 * x;\n",
            }
        )
        c_run = compile_and_run(generate_c(result))
        vm = result.run_mat2c(RuntimeContext())
        assert c_run.stdout == vm.output == "42\n"

    def test_crossover_branches(self):
        c_out, vm_out, _ = run_both(
            "x = 7;\n"
            "if x > 10\n y = 1;\nelseif x > 5\n y = 2;\nelse\n y = 3;\nend\n"
            "disp(y);"
        )
        assert c_out == vm_out
        assert "2" in c_out
