"""Property-based tests (hypothesis) on core lattices and algorithms."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.coloring import color_graph, verify_coloring
from repro.core.decompose import strongly_connected_components
from repro.core.interference import InterferenceGraph
from repro.ssa.invert import _sequentialize_parallel_copies
from repro.typing.intrinsic import Intrinsic
from repro.typing.ranges import Interval
from repro.typing.shape import (
    ConstDim,
    Shape,
    ValueDim,
    dim_add,
    dim_le,
    dim_max,
    dim_mul,
)

# --------------------------------------------------------------------------
# Intrinsic lattice
# --------------------------------------------------------------------------

intrinsics = st.sampled_from(list(Intrinsic))


class TestIntrinsicLattice:
    @given(intrinsics, intrinsics)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(intrinsics, intrinsics, intrinsics)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(intrinsics)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(intrinsics, intrinsics)
    def test_join_is_upper_bound(self, a, b):
        j = a.join(b)
        assert j.value >= a.value and j.value >= b.value


# --------------------------------------------------------------------------
# Interval arithmetic soundness
# --------------------------------------------------------------------------

values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def interval_containing(draw_lo, draw_hi, value):
    lo = min(draw_lo, value)
    hi = max(draw_hi, value)
    return Interval.bounded(lo, hi)


bounded_intervals = st.builds(
    lambda a, b: Interval.bounded(min(a, b), max(a, b)), values, values
)


def pick_in(interval: Interval, fraction: float) -> float:
    value = interval.lo + (interval.hi - interval.lo) * fraction
    return min(max(value, interval.lo), interval.hi)  # clamp rounding


fractions = st.floats(min_value=0.0, max_value=1.0)


class TestIntervalSoundness:
    @given(bounded_intervals, bounded_intervals, fractions, fractions)
    def test_add_sound(self, x, y, fx, fy):
        a, b = pick_in(x, fx), pick_in(y, fy)
        assert (x + y).contains(a + b)

    @given(bounded_intervals, bounded_intervals, fractions, fractions)
    def test_sub_sound(self, x, y, fx, fy):
        a, b = pick_in(x, fx), pick_in(y, fy)
        assert (x - y).contains(a - b)

    @given(bounded_intervals, bounded_intervals, fractions, fractions)
    def test_mul_sound(self, x, y, fx, fy):
        a, b = pick_in(x, fx), pick_in(y, fy)
        result = x * y
        product = a * b
        # allow for float rounding at the interval edges
        span = max(1.0, abs(result.lo), abs(result.hi))
        assert (
            result.lo - 1e-6 * span <= product <= result.hi + 1e-6 * span
        )

    @given(bounded_intervals, fractions)
    def test_neg_sound(self, x, fx):
        a = pick_in(x, fx)
        assert (-x).contains(-a)

    @given(bounded_intervals, fractions)
    def test_abs_sound(self, x, fx):
        a = pick_in(x, fx)
        assert x.absolute().contains(abs(a))

    @given(bounded_intervals, fractions)
    def test_floor_sound(self, x, fx):
        a = pick_in(x, fx)
        assert x.floor().contains(math.floor(a))

    @given(bounded_intervals, bounded_intervals)
    def test_join_is_hull(self, x, y):
        j = x.join(y)
        assert j.lo <= min(x.lo, y.lo) + 1e-12
        assert j.hi >= max(x.hi, y.hi) - 1e-12

    @given(bounded_intervals, bounded_intervals)
    def test_widen_stable(self, prev, cur):
        w = cur.widen(prev)
        # widening must be an upper bound of the current iterate
        assert w.lo <= cur.lo and w.hi >= cur.hi
        # and re-widening by the same pair must be a fixed point
        w2 = w.widen(prev)
        assert w2.lo <= w.lo and w2.hi >= w.hi


# --------------------------------------------------------------------------
# Dimension expressions
# --------------------------------------------------------------------------

const_dims = st.integers(min_value=0, max_value=10_000).map(ConstDim)
value_dims = st.sampled_from(["n", "m", "k"]).map(ValueDim)
simple_dims = st.one_of(const_dims, value_dims)


class TestDimAlgebra:
    @given(simple_dims, simple_dims)
    def test_max_commutative(self, a, b):
        assert dim_max(a, b) == dim_max(b, a)

    @given(simple_dims, simple_dims, simple_dims)
    def test_max_associative(self, a, b, c):
        assert dim_max(dim_max(a, b), c) == dim_max(a, dim_max(b, c))

    @given(simple_dims)
    def test_max_idempotent(self, a):
        assert dim_max(a, a) == a

    @given(simple_dims, simple_dims)
    def test_le_of_max(self, a, b):
        assert dim_le(a, dim_max(a, b))
        assert dim_le(b, dim_max(a, b))

    @given(simple_dims)
    def test_le_reflexive(self, a):
        assert dim_le(a, a)

    @given(const_dims, const_dims)
    def test_le_consts(self, a, b):
        assert dim_le(a, b) == (a.value <= b.value)

    @given(simple_dims, simple_dims)
    def test_add_commutative(self, a, b):
        assert dim_add(a, b) == dim_add(b, a)

    @given(simple_dims)
    def test_mul_unit(self, a):
        assert dim_mul(a, ConstDim(1)) == a
        assert dim_mul(ConstDim(1), a) == a

    @given(const_dims, const_dims)
    def test_const_folding(self, a, b):
        assert dim_add(a, b) == ConstDim(a.value + b.value)
        assert dim_mul(a, b) == ConstDim(a.value * b.value)


shapes = st.builds(
    lambda r, c: Shape((r, c)), simple_dims, simple_dims
)


class TestShapeLattice:
    @given(shapes)
    def test_join_idempotent(self, s):
        assert s.join(s) == s

    @given(shapes, shapes)
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert a.storage_le(j)
        assert b.storage_le(j)

    @given(shapes)
    def test_storage_le_reflexive(self, s):
        assert s.storage_le(s)

    @given(shapes)
    def test_transpose_involution(self, s):
        assert s.transposed().transposed() == s


# --------------------------------------------------------------------------
# Graph coloring on random interference graphs
# --------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=14),
    ),
    max_size=40,
)


class TestColoringProperties:
    @given(edge_lists)
    def test_greedy_coloring_always_valid(self, edges):
        graph = InterferenceGraph()
        for i in range(15):
            graph.add_node(f"v{i}")
        for a, b in edges:
            if a != b:
                graph.add_edge(f"v{a}", f"v{b}")
        order = [f"v{i}" for i in range(15)]
        coloring = color_graph(graph, order)
        verify_coloring(graph, coloring)

    @given(edge_lists)
    def test_colors_bounded_by_degree_plus_one(self, edges):
        graph = InterferenceGraph()
        for i in range(15):
            graph.add_node(f"v{i}")
        for a, b in edges:
            if a != b:
                graph.add_edge(f"v{a}", f"v{b}")
        coloring = color_graph(graph, [f"v{i}" for i in range(15)])
        max_degree = max(
            (graph.degree(n) for n in graph.nodes()), default=0
        )
        assert coloring.num_colors <= max_degree + 1

    @given(edge_lists, st.lists(st.tuples(
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=14),
    ), max_size=8))
    def test_coalescing_preserves_validity(self, edges, merges):
        graph = InterferenceGraph()
        for i in range(15):
            graph.add_node(f"v{i}")
        for a, b in edges:
            if a != b:
                graph.add_edge(f"v{a}", f"v{b}")
        for a, b in merges:
            graph.coalesce(f"v{a}", f"v{b}")  # may refuse; fine
        coloring = color_graph(graph, [f"v{i}" for i in range(15)])
        verify_coloring(graph, coloring)


# --------------------------------------------------------------------------
# SCC against networkx
# --------------------------------------------------------------------------


class TestSCCAgainstNetworkx:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_matches_networkx(self, edges):
        import networkx as nx

        nodes = [f"n{i}" for i in range(10)]
        succ = {n: [] for n in nodes}
        g = nx.DiGraph()
        g.add_nodes_from(nodes)
        for a, b in edges:
            succ[f"n{a}"].append(f"n{b}")
            g.add_edge(f"n{a}", f"n{b}")
        ours = {
            frozenset(c)
            for c in strongly_connected_components(nodes, succ)
        }
        theirs = {
            frozenset(c) for c in nx.strongly_connected_components(g)
        }
        assert ours == theirs


# --------------------------------------------------------------------------
# Parallel-copy sequentialization executes parallel semantics
# --------------------------------------------------------------------------


class TestParallelCopySemantics:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=6,
            unique_by=lambda t: t[0],
        )
    )
    def test_sequentialization_correct(self, pairs):
        from repro.ir.instr import Var

        copies = [(f"x{d}", Var(f"x{s}")) for d, s in pairs]
        env = {f"x{i}": i for i in range(6)}
        # parallel semantics: all reads happen before all writes
        expected = dict(env)
        for dst, src in copies:
            expected[dst] = env[src.name]

        temps = iter(f"t{i}$" for i in range(10))
        ordered = _sequentialize_parallel_copies(
            copies, lambda: next(temps)
        )
        actual = dict(env)
        for dst, src in ordered:
            actual[dst] = actual[src.name]
        for key in expected:
            assert actual[key] == expected[key], key


# --------------------------------------------------------------------------
# Runtime ops agree with numpy on random inputs
# --------------------------------------------------------------------------

small_matrices = st.integers(min_value=1, max_value=4).flatmap(
    lambda r: st.integers(min_value=1, max_value=4).flatmap(
        lambda c: st.lists(
            st.floats(min_value=-100, max_value=100,
                      allow_nan=False, allow_infinity=False),
            min_size=r * c,
            max_size=r * c,
        ).map(lambda vals: np.array(vals).reshape(r, c))
    )
)


class TestRuntimeAgainstNumpy:
    @given(small_matrices)
    def test_add_scalar(self, m):
        from repro.runtime import ops
        from repro.runtime.marray import MArray

        a = MArray.from_numpy(m)
        result = ops.add(a, MArray.from_scalar(2.5))
        assert np.allclose(result.data, m + 2.5)

    @given(small_matrices)
    def test_transpose(self, m):
        from repro.runtime import ops
        from repro.runtime.marray import MArray

        a = MArray.from_numpy(m)
        assert np.allclose(
            ops.transpose(a, conjugate=True).data, m.T
        )

    @given(small_matrices)
    def test_matmul_with_transpose(self, m):
        from repro.runtime import ops
        from repro.runtime.marray import MArray

        a = MArray.from_numpy(m)
        at = ops.transpose(a, conjugate=True)
        result = ops.mul(at, a)
        assert np.allclose(result.data, m.T @ m)

    @given(small_matrices)
    def test_subsref_roundtrip(self, m):
        from repro.runtime.indexing import subsasgn, subsref
        from repro.runtime.marray import MArray

        a = MArray.from_numpy(m)
        rows, cols = m.shape
        i, j = rows, cols  # last element
        written = subsasgn(
            a,
            MArray.from_scalar(123.0),
            [MArray.from_scalar(i), MArray.from_scalar(j)],
        )
        read = subsref(
            written,
            [MArray.from_scalar(i), MArray.from_scalar(j)],
        )
        assert read.scalar_real() == 123.0

    @given(small_matrices)
    def test_linear_index_column_major(self, m):
        from repro.runtime.indexing import subsref
        from repro.runtime.marray import MArray

        a = MArray.from_numpy(m)
        flat = np.asfortranarray(m).flatten(order="F")
        for k in range(min(3, flat.size)):
            got = subsref(a, [MArray.from_scalar(k + 1)]).scalar_real()
            assert got == pytest.approx(flat[k])
