"""Unit tests for AST → SO-form IR lowering and the CFG."""

import pytest

from repro.frontend.parser import parse_program
from repro.ir.cfg import IRFunction
from repro.ir.instr import Branch, Const, Instr, Jump, Ret, Var
from repro.ir.lower import LoweringError, lower_program


def lower(text, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    return lower_program(parse_program(files))


def ops(func):
    return [i.op for i in func.instructions()]


class TestSingleOperatorForm:
    def test_compound_expression_split(self):
        func = lower("a = 1; b = 2; c = a + b * 3;")
        # b * 3 must land in a temporary, then be added.
        muls = [i for i in func.instructions() if i.op == "mul"]
        assert len(muls) == 1
        assert muls[0].results[0].endswith("$")
        adds = [i for i in func.instructions() if i.op == "add"]
        assert adds[0].results == ["c"]

    def test_every_instr_single_op(self):
        func = lower("x = (1 + 2) * (3 - 4) / 5;")
        for instr in func.instructions():
            assert len(instr.args) <= 3

    def test_copy_statement(self):
        func = lower("a = 1; b = a;")
        copies = [i for i in func.instructions() if i.op == "copy"]
        assert any(i.results == ["b"] for i in copies)

    def test_const_materialization(self):
        func = lower("x = 42;")
        consts = [i for i in func.instructions() if i.op == "const"]
        assert consts[0].results == ["x"]
        assert consts[0].args[0] == Const(complex(42.0))

    def test_display_emitted_without_semicolon(self):
        func = lower("x = 1\ny = 2;")
        displays = [i for i in func.instructions() if i.op == "display"]
        assert len(displays) == 1


class TestIndexingAndCalls:
    def test_subsref_for_assigned_variable(self):
        func = lower("a = rand(2, 2); c = a(1);")
        assert "subsref" in ops(func)

    def test_call_for_builtin(self):
        func = lower("a = rand(2, 2);")
        assert "call:rand" in ops(func)

    def test_subsasgn_for_lhs_indexing(self):
        func = lower("a = zeros(3); a(2, 2) = 5;")
        sa = next(i for i in func.instructions() if i.op == "subsasgn")
        assert sa.results == ["a"]
        # args: base, rhs, subscripts...
        assert len(sa.args) == 4

    def test_end_in_single_subscript_is_numel(self):
        func = lower("a = rand(1, 5); x = a(end);")
        assert "call:numel" in ops(func)

    def test_end_in_multi_subscript_is_size(self):
        func = lower("a = rand(3, 4); x = a(1, end);")
        size_calls = [i for i in func.instructions() if i.op == "call:size"]
        assert len(size_calls) == 1
        assert size_calls[0].args[1] == Const(complex(2.0))

    def test_multi_output_size(self):
        func = lower("a = rand(3, 4); [m, n] = size(a);")
        size_instr = next(
            i for i in func.instructions() if i.op == "call:size"
        )
        assert size_instr.results == ["m", "n"]

    def test_unknown_function_raises(self):
        with pytest.raises(LoweringError):
            lower("x = mystery(1);")

    def test_undefined_variable_raises(self):
        with pytest.raises(LoweringError):
            lower("x = y + 1;")


class TestControlFlow:
    def test_if_creates_branch(self):
        func = lower("a = 1;\nif a > 0\n b = 1;\nelse\n b = 2;\nend")
        branches = [
            b for b in func.blocks.values()
            if isinstance(b.terminator, Branch)
        ]
        assert len(branches) == 1

    def test_while_loop_shape(self):
        func = lower("i = 0;\nwhile i < 10\n i = i + 1;\nend")
        func.verify()
        # must contain a back edge: some block jumps to an earlier block
        has_back_edge = any(
            succ <= bid
            for bid, blk in func.blocks.items()
            for succ in blk.successors()
        )
        assert has_back_edge

    def test_for_loop_counted(self):
        func = lower("s = 0;\nfor i = 1:10\n s = s + i;\nend")
        assert "call:floor" in ops(func)
        func.verify()

    def test_for_loop_with_step(self):
        func = lower("s = 0;\nfor i = 10:-2:1\n s = s + i;\nend")
        func.verify()

    def test_break_jumps_to_exit(self):
        func = lower(
            "i = 0;\nwhile 1\n i = i + 1;\n if i > 3\n  break\n end\nend"
        )
        func.verify()

    def test_continue_in_for_reaches_increment(self):
        func = lower(
            "s = 0;\nfor i = 1:10\n if i > 5\n  continue\n end\n"
            " s = s + i;\nend"
        )
        func.verify()

    def test_return_terminates(self):
        func = lower("x = 1;\nreturn\n")
        func.verify()

    def test_break_outside_loop_raises(self):
        with pytest.raises(LoweringError):
            lower("break")


class TestMatrixLiterals:
    def test_row_vector(self):
        func = lower("v = [1, 2, 3];")
        assert "horzcat" in ops(func)

    def test_matrix_rows(self):
        func = lower("m = [1, 2; 3, 4];")
        assert "vertcat" in ops(func)

    def test_empty_matrix(self):
        func = lower("e = [];")
        assert "empty" in ops(func)

    def test_range_op(self):
        func = lower("v = 1:5;")
        rng = next(i for i in func.instructions() if i.op == "range")
        assert len(rng.args) == 3


class TestInlining:
    def test_user_function_inlined(self):
        func = lower(
            "y = double_it(21);",
            double_it="function y = double_it(x)\ny = x * 2;\n",
        )
        # no call instruction for the user function remains
        assert not any(i.op == "call:double_it" for i in func.instructions())
        assert "mul" in ops(func)

    def test_inlined_variables_renamed(self):
        func = lower(
            "x = 5; y = addone(x);",
            addone="function out = addone(x)\nout = x + 1;\n",
        )
        names = func.defined_vars()
        # the callee's `x` must not collide with the caller's `x`
        assert "x" in names
        assert any(n.startswith("x@") for n in names)

    def test_nested_inlining(self):
        func = lower(
            "y = outer(3);",
            outer="function y = outer(x)\ny = inner(x) + 1;\n",
            inner="function y = inner(x)\ny = x * 10;\n",
        )
        assert "mul" in ops(func)
        assert "add" in ops(func)

    def test_multiple_call_sites_unique_names(self):
        func = lower(
            "a = f(1); b = f(2);",
            f="function y = f(x)\ny = x + 1;\n",
        )
        renamed = [n for n in func.defined_vars() if n.startswith("y@")]
        assert len(renamed) == 2

    def test_recursion_rejected(self):
        with pytest.raises(LoweringError, match="recursive"):
            lower(
                "y = f(3);",
                f="function y = f(x)\ny = f(x - 1);\n",
            )

    def test_multi_output_user_function(self):
        func = lower(
            "[a, b] = two();",
            two="function [p, q] = two()\np = 1;\nq = 2;\n",
        )
        func.verify()
        copies = [
            i for i in func.instructions()
            if i.op == "copy" and i.results[0] in ("a", "b")
        ]
        assert len(copies) == 2

    def test_return_inside_inlined_function(self):
        func = lower(
            "y = f(3);",
            f=(
                "function y = f(x)\n"
                "y = 0;\n"
                "if x > 1\n y = 99;\n return\nend\n"
                "y = x;\n"
            ),
        )
        func.verify()


class TestDominance:
    def test_entry_dominates_all(self):
        from repro.ir.dominance import compute_dominators

        func = lower(
            "a = 1;\nif a\n b = 1;\nelse\n b = 2;\nend\nc = b;"
        )
        dom = compute_dominators(func)
        for bid in dom.order:
            assert dom.dominates(func.entry, bid)

    def test_branch_sides_not_dominating_join(self):
        from repro.ir.dominance import compute_dominators

        func = lower(
            "a = 1;\nif a\n b = 1;\nelse\n b = 2;\nend\nc = b;"
        )
        dom = compute_dominators(func)
        branch_block = next(
            b for b in func.blocks.values() if isinstance(b.terminator, Branch)
        )
        then_id, else_id = branch_block.terminator.successors()
        join_candidates = [
            bid for bid in dom.order
            if dom.frontier.get(then_id) and bid in dom.frontier[then_id]
        ]
        assert join_candidates, "then-side must have a dominance frontier"
        join = join_candidates[0]
        assert not dom.dominates(then_id, join)
        assert not dom.dominates(else_id, join)

    def test_loop_header_frontier_contains_itself(self):
        from repro.ir.dominance import compute_dominators

        func = lower("i = 0;\nwhile i < 3\n i = i + 1;\nend")
        dom = compute_dominators(func)
        assert any(bid in dom.frontier[bid] for bid in dom.order)
