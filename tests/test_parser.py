"""Unit tests for the MATLAB parser."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_program, parse_source
from repro.frontend.source import MatlabSyntaxError


def parse_stmts(text):
    funcs = parse_source(text, "test.m")
    assert len(funcs) == 1
    return funcs[0].body


def first_expr(text):
    stmt = parse_stmts(text)[0]
    if isinstance(stmt, ast.Assign):
        return stmt.value
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.value


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = first_expr("x = a + b * c;")
        assert isinstance(e, ast.BinaryOp) and e.op == "+"
        assert isinstance(e.right, ast.BinaryOp) and e.right.op == "*"

    def test_precedence_pow_over_unary_minus(self):
        # MATLAB: -2^2 == -4
        e = first_expr("x = -2^2;")
        assert isinstance(e, ast.UnaryOp) and e.op == "-"
        assert isinstance(e.operand, ast.BinaryOp) and e.operand.op == "^"

    def test_power_right_operand_unary(self):
        e = first_expr("x = 2^-3;")
        assert isinstance(e, ast.BinaryOp) and e.op == "^"
        assert isinstance(e.right, ast.UnaryOp)

    def test_comparison_below_arith(self):
        e = first_expr("x = a + 1 < b * 2;")
        assert isinstance(e, ast.BinaryOp) and e.op == "<"

    def test_logical_precedence(self):
        e = first_expr("x = a < b & c > d;")
        assert isinstance(e, ast.BinaryOp) and e.op == "&"

    def test_range_two_part(self):
        e = first_expr("x = 1:10;")
        assert isinstance(e, ast.Range)
        assert e.step is None

    def test_range_three_part(self):
        e = first_expr("x = 10:-2:1;")
        assert isinstance(e, ast.Range)
        assert isinstance(e.step, ast.UnaryOp)
        assert isinstance(e.stop, ast.Num) and e.stop.value == 1

    def test_range_with_arith_bounds(self):
        e = first_expr("x = a+1:b-1;")
        assert isinstance(e, ast.Range)
        assert isinstance(e.start, ast.BinaryOp)
        assert isinstance(e.stop, ast.BinaryOp)

    def test_transpose_postfix(self):
        e = first_expr("x = a';")
        assert isinstance(e, ast.Transpose) and e.conjugate

    def test_nonconj_transpose(self):
        e = first_expr("x = a.';")
        assert isinstance(e, ast.Transpose) and not e.conjugate

    def test_call_and_index_are_apply(self):
        e = first_expr("x = f(a, b);")
        assert isinstance(e, ast.Apply)
        assert len(e.args) == 2

    def test_nested_apply(self):
        e = first_expr("x = a(f(i), j);")
        assert isinstance(e, ast.Apply)
        assert isinstance(e.args[0], ast.Apply)

    def test_colon_all_subscript(self):
        e = first_expr("x = a(:, 2);")
        assert isinstance(e.args[0], ast.ColonAll)

    def test_end_in_subscript(self):
        e = first_expr("x = a(end);")
        assert isinstance(e.args[0], ast.EndMarker)

    def test_end_arith_in_subscript(self):
        e = first_expr("x = a(end-1);")
        arg = e.args[0]
        assert isinstance(arg, ast.BinaryOp)
        assert isinstance(arg.left, ast.EndMarker)

    def test_end_outside_subscript_raises(self):
        with pytest.raises(MatlabSyntaxError):
            parse_stmts("x = end;")

    def test_string_literal(self):
        e = first_expr("disp('hello world');")
        assert isinstance(e.args[0], ast.Str)


class TestMatrixLiterals:
    def test_comma_separated(self):
        e = first_expr("x = [1, 2, 3];")
        assert isinstance(e, ast.MatrixLit)
        assert len(e.rows) == 1 and len(e.rows[0]) == 3

    def test_space_separated(self):
        e = first_expr("x = [1 2 3];")
        assert len(e.rows[0]) == 3

    def test_semicolon_rows(self):
        e = first_expr("x = [1, 2; 3, 4];")
        assert len(e.rows) == 2

    def test_space_minus_is_new_element(self):
        e = first_expr("x = [1 -2];")
        assert len(e.rows[0]) == 2

    def test_spaced_minus_is_binary(self):
        e = first_expr("x = [1 - 2];")
        assert len(e.rows[0]) == 1

    def test_tight_minus_is_binary(self):
        e = first_expr("x = [1-2];")
        assert len(e.rows[0]) == 1

    def test_empty_matrix(self):
        e = first_expr("x = [];")
        assert isinstance(e, ast.MatrixLit) and not e.rows

    def test_nested_expression_elements(self):
        e = first_expr("x = [a(1) b(2)];")
        assert len(e.rows[0]) == 2
        assert all(isinstance(el, ast.Apply) for el in e.rows[0])

    def test_multiline_rows(self):
        e = first_expr("x = [1, 2\n3, 4];")
        assert len(e.rows) == 2


class TestStatements:
    def test_assign_display_flag(self):
        stmts = parse_stmts("x = 1\ny = 2;")
        assert stmts[0].display is True
        assert stmts[1].display is False

    def test_if_elseif_else(self):
        stmts = parse_stmts(
            "if a < 1\n x = 1;\nelseif a < 2\n x = 2;\nelse\n x = 3;\nend"
        )
        node = stmts[0]
        assert isinstance(node, ast.If)
        assert len(node.branches) == 2
        assert len(node.orelse) == 1

    def test_while(self):
        stmts = parse_stmts("while x < 10\n x = x + 1;\nend")
        assert isinstance(stmts[0], ast.While)

    def test_for_range(self):
        stmts = parse_stmts("for i = 1:10\n s = s + i;\nend")
        node = stmts[0]
        assert isinstance(node, ast.For)
        assert node.var == "i"
        assert isinstance(node.iterable, ast.Range)

    def test_break_continue_return(self):
        stmts = parse_stmts(
            "while 1\n if a\n break\n end\n continue\nend\nreturn"
        )
        assert isinstance(stmts[-1], ast.Return)

    def test_lhs_indexing(self):
        stmts = parse_stmts("a(i, j) = 5;")
        assert isinstance(stmts[0], ast.Assign)
        assert isinstance(stmts[0].target, ast.Apply)

    def test_multi_assign(self):
        stmts = parse_stmts("[m, n] = size(a);")
        node = stmts[0]
        assert isinstance(node, ast.MultiAssign)
        assert len(node.targets) == 2

    def test_matrix_stmt_not_multiassign(self):
        stmts = parse_stmts("[1, 2, 3];")
        assert isinstance(stmts[0], ast.ExprStmt)

    def test_expr_statement_call(self):
        stmts = parse_stmts("disp(x);")
        assert isinstance(stmts[0], ast.ExprStmt)

    def test_comma_separated_statements(self):
        stmts = parse_stmts("x = 1, y = 2")
        assert len(stmts) == 2


class TestFunctions:
    def test_function_header_forms(self):
        funcs = parse_source(
            "function y = f(x)\ny = x;\n", "f.m"
        )
        assert funcs[0].name == "f"
        assert funcs[0].inputs == ["x"]
        assert funcs[0].outputs == ["y"]

    def test_function_multiple_outputs(self):
        funcs = parse_source(
            "function [a, b] = f(x, y)\na = x;\nb = y;\n", "f.m"
        )
        assert funcs[0].outputs == ["a", "b"]

    def test_function_no_output(self):
        funcs = parse_source("function go()\ndisp(1);\n", "go.m")
        assert funcs[0].outputs == []

    def test_subfunctions(self):
        text = (
            "function y = main(x)\ny = helper(x);\n"
            "function z = helper(w)\nz = w + 1;\n"
        )
        funcs = parse_source(text, "main.m")
        assert [f.name for f in funcs] == ["main", "helper"]

    def test_script_wrapped(self):
        funcs = parse_source("x = 1;\ndisp(x);\n", "myscript.m")
        assert funcs[0].name == "myscript"
        assert funcs[0].inputs == []

    def test_program_entry(self):
        prog = parse_program(
            {
                "drv.m": "function drv()\nx = f(2);\n",
                "f.m": "function y = f(x)\ny = x * 2;\n",
            }
        )
        assert prog.entry == "drv"
        assert set(prog.functions) == {"drv", "f"}

    def test_duplicate_function_raises(self):
        with pytest.raises(MatlabSyntaxError):
            parse_program(
                {
                    "a.m": "function f()\nx = 1;\n",
                    "b.m": "function f()\ny = 2;\n",
                }
            )

    def test_function_with_terminating_end(self):
        funcs = parse_source(
            "function y = f(x)\ny = x;\nend\n", "f.m"
        )
        assert funcs[0].name == "f"
