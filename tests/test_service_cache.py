"""Artifact-cache tests: fingerprints, hit/miss/invalidation, repair."""

import json
import multiprocessing
import pickle

import pytest

from repro.compiler.pipeline import (
    CompilerOptions,
    PIPELINE_VERSION,
    compile_source,
)
from repro.core.gctd import GCTDOptions
from repro.service.cache import ArtifactCache
from repro.service.fingerprint import (
    canonical_options,
    fingerprint_request,
    normalize_source,
)

SRC = "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestFingerprint:
    def test_deterministic(self):
        fp1 = fingerprint_request({"m.m": SRC})
        fp2 = fingerprint_request({"m.m": SRC})
        assert fp1 == fp2
        assert len(fp1) == 64

    def test_source_order_independent(self):
        a = {"a.m": "x = 1;", "b.m": "y = 2;"}
        b = {"b.m": "y = 2;", "a.m": "x = 1;"}
        assert fingerprint_request(a) == fingerprint_request(b)

    def test_line_endings_normalized(self):
        unix = fingerprint_request({"m.m": "x = 1;\ny = 2;\n"})
        dos = fingerprint_request({"m.m": "x = 1;\r\ny = 2;\r\n"})
        mac = fingerprint_request({"m.m": "x = 1;\ry = 2;\r"})
        assert unix == dos == mac
        assert normalize_source("a\r\nb\rc") == "a\nb\nc"

    def test_none_options_match_defaults(self):
        explicit = fingerprint_request(
            {"m.m": SRC}, options=CompilerOptions()
        )
        implicit = fingerprint_request({"m.m": SRC}, options=None)
        assert explicit == implicit

    def test_option_change_changes_fingerprint(self):
        on = fingerprint_request({"m.m": SRC}, options=CompilerOptions())
        off = fingerprint_request(
            {"m.m": SRC},
            options=CompilerOptions(gctd=GCTDOptions(enabled=False)),
        )
        assert on != off

    def test_source_edit_changes_fingerprint(self):
        assert fingerprint_request({"m.m": SRC}) != fingerprint_request(
            {"m.m": SRC + "disp(1);\n"}
        )

    def test_entry_changes_fingerprint(self):
        sources = {"a.m": "x = 1;", "b.m": "y = 2;"}
        assert fingerprint_request(
            sources, entry="a"
        ) != fingerprint_request(sources, entry="b")

    def test_pipeline_version_changes_fingerprint(self):
        assert fingerprint_request(
            {"m.m": SRC}, pipeline_version=PIPELINE_VERSION
        ) != fingerprint_request(
            {"m.m": SRC}, pipeline_version=PIPELINE_VERSION + "-next"
        )

    def test_canonical_options_sorted_and_json_safe(self):
        canon = canonical_options(CompilerOptions())
        encoded = json.dumps(canon)  # must not raise
        assert list(canon) == sorted(canon)
        assert "gctd" in canon and canon["gctd"]["enabled"] is True
        assert json.loads(encoded) == canon


class TestCacheHitMiss:
    def test_miss_then_hit(self, cache):
        r1 = compile_source(SRC, cache=cache)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        r2 = compile_source(SRC, cache=cache)
        assert cache.stats.hits == 1
        assert r2 is r1  # served from the in-process LRU

    def test_disk_hit_from_fresh_process_object(self, cache):
        r1 = compile_source(SRC, cache=cache)
        other = ArtifactCache(cache.root)
        r2 = compile_source(SRC, cache=other)
        assert other.stats.hits == 1 and other.stats.memory_hits == 0
        assert r2.report.original_variable_count == (
            r1.report.original_variable_count
        )
        assert r2.run_mat2c().output == r1.run_mat2c().output

    def test_source_edit_misses(self, cache):
        compile_source(SRC, cache=cache)
        compile_source(SRC + "disp(9);\n", cache=cache)
        assert cache.stats.misses == 2
        assert len(cache.entries()) == 2

    def test_option_change_misses(self, cache):
        compile_source(SRC, cache=cache)
        compile_source(
            SRC,
            options=CompilerOptions(gctd=GCTDOptions(enabled=False)),
            cache=cache,
        )
        assert cache.stats.misses == 2

    def test_pipeline_version_bump_misses(self, cache):
        compile_source(SRC, cache=cache)
        bumped = ArtifactCache(
            cache.root, pipeline_version=PIPELINE_VERSION + "-next"
        )
        compile_source(SRC, cache=bumped)
        assert bumped.stats.misses == 1 and bumped.stats.stores == 1

    def test_entry_layout(self, cache):
        compile_source(SRC, cache=cache)
        (fp,) = cache.entries()
        directory = cache.object_dir(fp)
        names = sorted(p.name for p in directory.iterdir())
        assert names == ["c_source", "meta.json", "plan", "report"]
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["fingerprint"] == fp
        assert meta["pipeline_version"] == PIPELINE_VERSION
        assert "int main" in (directory / "c_source").read_text()
        assert "variables subsumed" in (directory / "report").read_text()


class TestInvalidation:
    def test_invalidate_one(self, cache):
        compile_source(SRC, cache=cache)
        (fp,) = cache.entries()
        assert cache.invalidate(fp)
        assert cache.entries() == []
        assert cache.load(fp) is None
        assert not cache.invalidate(fp)  # already gone

    def test_clear(self, cache):
        compile_source(SRC, cache=cache)
        compile_source(SRC + "disp(2);\n", cache=cache)
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_lru_eviction_keeps_disk(self, tmp_path):
        small = ArtifactCache(tmp_path, max_memory_entries=1)
        compile_source(SRC, cache=small)
        compile_source(SRC + "disp(2);\n", cache=small)
        assert len(small._memory) == 1  # first entry evicted
        # evicted entry still answers from disk
        compile_source(SRC, cache=small)
        assert small.stats.hits == 1 and small.stats.memory_hits == 0


class TestCorruptionRecovery:
    def test_truncated_plan_falls_back_and_repairs(self, cache):
        compile_source(SRC, cache=cache)
        (fp,) = cache.entries()
        (cache.object_dir(fp) / "plan").write_bytes(b"not a pickle")
        fresh = ArtifactCache(cache.root)
        result = compile_source(SRC, cache=fresh)  # recompiles
        assert result is not None
        assert fresh.stats.repairs == 1
        assert fresh.stats.misses == 1 and fresh.stats.stores == 1
        # the store repaired the entry: next load hits from disk
        again = ArtifactCache(cache.root)
        assert again.load(fp) is not None
        assert again.stats.hits == 1

    def test_missing_meta_is_a_repairable_miss(self, cache):
        compile_source(SRC, cache=cache)
        (fp,) = cache.entries()
        (cache.object_dir(fp) / "meta.json").unlink()
        fresh = ArtifactCache(cache.root)
        assert fresh.load(fp) is None
        assert fresh.stats.repairs == 1
        assert not cache.object_dir(fp).exists()

    def test_corrupted_extra_ignored(self, cache):
        compile_source(SRC, cache=cache)
        (fp,) = cache.entries()
        cache.store_extra(fp, "side.pkl", b"garbage")
        assert cache.load_extra(fp, "side.pkl") == b"garbage"
        assert cache.load_extra(fp, "absent.pkl") is None


def _compile_into(root: str) -> None:
    cache = ArtifactCache(root)
    result = compile_source(SRC, cache=cache)
    assert result.run_mat2c().output == "32\n"


class TestConcurrentWriters:
    def test_two_workers_same_program(self, tmp_path):
        """Racing writers of one fingerprint leave one valid entry."""
        root = str(tmp_path / "cache")
        workers = [
            multiprocessing.Process(target=_compile_into, args=(root,))
            for _ in range(2)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=120)
        assert all(w.exitcode == 0 for w in workers)
        cache = ArtifactCache(root)
        assert len(cache.entries()) == 1
        (fp,) = cache.entries()
        result = cache.load(fp)
        assert result is not None and cache.stats.repairs == 0
        assert result.run_mat2c().output == "32\n"


class TestBinaryCache:
    def test_compiled_binary_reused(self, tmp_path):
        from repro.backend.cc import compile_and_run, find_compiler

        if find_compiler() is None:
            pytest.skip("no C compiler on PATH")
        c_source = (
            "#include <stdio.h>\n"
            "int main(void) { printf(\"7\\n\"); return 0; }\n"
        )
        first = compile_and_run(c_source, cache_dir=tmp_path)
        assert first.stdout == "7\n" and not first.cached
        second = compile_and_run(c_source, cache_dir=tmp_path)
        assert second.stdout == "7\n" and second.cached

    def test_source_change_rebuilds(self, tmp_path):
        from repro.backend.cc import compile_and_run, find_compiler

        if find_compiler() is None:
            pytest.skip("no C compiler on PATH")
        a = "#include <stdio.h>\nint main(void){printf(\"1\");return 0;}\n"
        b = "#include <stdio.h>\nint main(void){printf(\"2\");return 0;}\n"
        compile_and_run(a, cache_dir=tmp_path)
        other = compile_and_run(b, cache_dir=tmp_path)
        assert other.stdout == "2" and not other.cached
