"""Telemetry tests: tracer spans, aggregation, stats rendering, CLI."""

import json

import pytest

from repro.__main__ import main
from repro.compiler.pipeline import compile_source
from repro.compiler.reports import telemetry_table
from repro.service.cache import ArtifactCache
from repro.service.telemetry import Tracer, aggregate_passes
from repro.service.stats import (
    find_latest_telemetry,
    render_stats,
    write_telemetry,
)

SRC = "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"


class TestTracer:
    def test_pipeline_pass_spans(self):
        tracer = Tracer(label="t")
        compile_source(SRC, tracer=tracer)
        names = [p.name for p in tracer.passes]
        assert names[:5] == ["parse", "lower", "ssa", "cleanup", "infer"]
        assert "gctd" in names and names[-1] == "invert"
        assert all(p.wall_seconds >= 0 for p in tracer.passes)

    def test_ir_instruction_counts_recorded(self):
        tracer = Tracer()
        compile_source(SRC, tracer=tracer)
        by_name = {p.name: p for p in tracer.passes}
        assert by_name["ssa"].instructions > 0
        assert by_name["parse"].instructions is None  # no IR yet

    def test_gctd_details(self):
        tracer = Tracer()
        compile_source(SRC, tracer=tracer)
        gctd = next(p for p in tracer.passes if p.name == "gctd")
        assert gctd.details["interference_nodes"] >= 1
        assert gctd.details["colors"] >= 1
        assert "interference_edges" in gctd.details

    def test_cache_events(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        tracer = Tracer()
        compile_source(SRC, tracer=tracer, cache=cache)
        assert tracer.cache_misses == 1 and tracer.cache_hits == 0
        compile_source(SRC, tracer=tracer, cache=cache)
        assert tracer.cache_hits == 1

    def test_to_json_round_trips(self):
        tracer = Tracer(label="x")
        compile_source(SRC, tracer=tracer)
        payload = json.loads(tracer.to_json())
        assert payload["label"] == "x"
        assert payload["total_wall_seconds"] > 0
        assert len(payload["passes"]) == len(tracer.passes)

    def test_tracer_off_is_default(self):
        # no tracer: the pipeline must not require one
        result = compile_source(SRC)
        assert result.run_mat2c().output == "32\n"


class TestAggregation:
    def test_aggregate_passes_merges_and_orders(self):
        t1, t2 = Tracer(), Tracer()
        compile_source(SRC, tracer=t1)
        compile_source(SRC + "disp(1);\n", tracer=t2)
        rows = aggregate_passes([t1.to_dict(), t2.to_dict()])
        assert rows[0]["name"] == "parse" and rows[0]["calls"] == 2
        cleanup = next(r for r in rows if r["name"] == "cleanup")
        assert cleanup["instructions"] > 0

    def test_telemetry_table_renders(self):
        tracer = Tracer()
        compile_source(SRC, tracer=tracer)
        table = telemetry_table(aggregate_passes([tracer.to_dict()]))
        assert "pass" in table and "gctd" in table and "total" in table

    def test_empty_table(self):
        assert "no pass telemetry" in telemetry_table([])


class TestStatsRendering:
    def test_render_single_trace(self):
        tracer = Tracer()
        compile_source(SRC, tracer=tracer)
        text = render_stats(tracer.to_dict())
        assert "gctd" in text

    def test_render_batch_payload(self):
        payload = {
            "wall_seconds": 1.5,
            "batch": {"executor": "pool", "jobs": 4, "wall_seconds": 1.5},
            "cache": {"root": "/c", "hits": 2, "misses": 1, "entries": 3},
            "benchmarks": [
                {
                    "name": "edit",
                    "compile_seconds": 0.2,
                    "measure_seconds": 0.9,
                    "cache_hit": True,
                    "record_cached": False,
                    "traces": [],
                }
            ],
        }
        text = render_stats(payload)
        assert "edit" in text and "pool" in text
        assert "2 hits" in text

    def test_write_and_find_latest(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert find_latest_telemetry(cache_root="nope") is None
        path = write_telemetry({"passes": []}, tmp_path / "cache")
        assert path.is_file()
        found = find_latest_telemetry(cache_root=tmp_path / "cache")
        assert found == path
        # a BENCH file in cwd wins over the cache's last.json
        bench = tmp_path / "BENCH_20990101-000000.json"
        bench.write_text("{}")
        assert (
            find_latest_telemetry(cache_root=tmp_path / "cache") == bench
        )


class TestStatsCommand:
    def test_stats_no_telemetry(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["stats", "--cache-dir", str(tmp_path / "c")]) == 1
        assert "no telemetry" in capsys.readouterr().err

    def test_stats_renders_file(self, tmp_path, capsys):
        tracer = Tracer()
        compile_source(SRC, tracer=tracer)
        path = tmp_path / "trace.json"
        path.write_text(tracer.to_json())
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "gctd" in out and str(path) in out

    def test_compile_cache_writes_telemetry(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        prog = tmp_path / "prog.m"
        prog.write_text(SRC)
        cache_dir = str(tmp_path / "cache")
        assert (
            main(
                ["compile", "--cache", "--cache-dir", cache_dir,
                 "--trace", str(prog)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "artifact cache        : miss" in out
        assert "gctd" in out  # the --trace table
        assert main(["stats", "--cache-dir", cache_dir]) == 0
        # second compile hits
        main(["compile", "--cache", "--cache-dir", cache_dir, str(prog)])
        assert "artifact cache        : hit" in capsys.readouterr().out


class TestBenchCommand:
    @pytest.fixture
    def single_benchmark(self, monkeypatch):
        import repro.bench.experiments as experiments

        monkeypatch.setattr(experiments, "BENCHMARK_NAMES", ("edit",))

    def test_bench_writes_json_and_hits_cache(
        self, tmp_path, monkeypatch, capsys, single_benchmark
    ):
        monkeypatch.chdir(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert (
            main(["bench", "--cache-dir", cache_dir, "--jobs", "1"]) == 0
        )
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        bench_files = sorted(tmp_path.glob("BENCH_*.json"))
        assert len(bench_files) == 1
        payload = json.loads(bench_files[0].read_text())
        assert payload["cache"]["hits"] == 0
        assert payload["benchmarks"][0]["name"] == "edit"
        assert payload["benchmarks"][0]["executors"]["mat2c"] > 0
        assert payload["benchmarks"][0]["traces"][0]["passes"]

        # warm re-run answers from the cache and reports the hit
        assert (
            main(["bench", "--cache-dir", cache_dir, "--jobs", "1"]) == 0
        )
        capsys.readouterr()
        bench_files = sorted(tmp_path.glob("BENCH_*.json"))
        payload2 = json.loads(bench_files[-1].read_text())
        assert payload2["cache"]["hits"] == 1
        assert payload2["benchmarks"][0]["record_cached"]
        assert payload2["wall_seconds"] < payload["wall_seconds"]

        # and `repro stats` picks the newest BENCH file up
        assert main(["stats"]) == 0
        assert "edit" in capsys.readouterr().out
