"""Tests for the differential harness and the `repro verify` CLI.

The harness runs real programs under all four execution models, so
this lane sticks to the small/fast benchmarks and memoizes each
compilation once per module."""

import pytest

from repro.__main__ import main
from repro.bench.suite import compile_benchmark
from repro.verify import (
    DEFAULT_SEED,
    DifferentialReport,
    run_differential,
)

_COMPILED = {}


def compiled(name):
    if name not in _COMPILED:
        _COMPILED[name] = compile_benchmark(name)
    return _COMPILED[name]


FAST_NAMES = ("edit", "adpt")


class TestDifferentialHarness:
    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_all_models_agree_on_benchmark(self, name):
        report = run_differential(compiled(name), name=name)
        assert report.ok, report.summary()
        assert set(report.models_run) == {
            "interp",
            "mat2c",
            "mat2c-aliased",
            "mcc",
        }
        assert all(steps > 0 for steps in report.steps.values())

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_meter_matches_plan_prediction(self, name):
        report = run_differential(compiled(name), name=name)
        assert report.predicted_stack_bytes > 0
        assert (
            report.observed_stack_bytes == report.predicted_stack_bytes
        )

    def test_check_meter_off_skips_prediction(self):
        report = run_differential(
            compiled("edit"), name="edit", check_meter=False
        )
        assert report.ok
        assert report.predicted_stack_bytes == 0
        assert report.observed_stack_bytes == 0

    def test_seed_is_the_bench_suite_seed(self):
        assert DEFAULT_SEED == 20030609

    def test_report_serializes(self):
        report = run_differential(compiled("edit"), name="edit")
        doc = report.to_dict()
        assert doc["ok"] is True
        assert doc["name"] == "edit"
        assert doc["predicted_stack_bytes"] == (
            report.predicted_stack_bytes
        )
        assert "models agree" in report.summary()

    def test_problems_flip_verdict_and_summary(self):
        report = DifferentialReport(
            name="x", problems=["mcc output diverges"]
        )
        assert not report.ok
        assert "1 problem(s)" in report.summary()
        assert "mcc output diverges" in report.summary()


class TestVerifyCli:
    def test_verify_single_program_ok(self, tmp_path, capsys):
        mfile = tmp_path / "prog.m"
        mfile.write_text(
            "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"
        )
        assert main(["verify", str(mfile)]) == 0
        out = capsys.readouterr().out
        assert "plan OK" in out

    def test_verify_with_differential_and_mutation(
        self, tmp_path, capsys
    ):
        mfile = tmp_path / "prog.m"
        mfile.write_text(
            "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"
        )
        assert (
            main(
                ["verify", str(mfile), "--differential", "--mutation"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "models agree" in out
        # either outcome is a pass; missing it would have exited 1
        assert "mutation flagged" in out or "no coalescing" in out

    def test_verify_without_targets_fails(self, capsys):
        assert main(["verify"]) != 0

    def test_verify_compile_error_counts_as_failure(
        self, tmp_path, capsys
    ):
        mfile = tmp_path / "broken.m"
        mfile.write_text("x = (((\n")
        assert main(["verify", str(mfile)]) == 1
        captured = capsys.readouterr()
        assert "compile failed" in captured.out
        assert "failure" in captured.err

    def test_compile_verify_plan_flag(self, tmp_path, capsys):
        mfile = tmp_path / "prog.m"
        mfile.write_text(
            "a = ones(4); b = a * 2; disp(sum(sum(b)));\n"
        )
        assert main(["compile", str(mfile), "--verify-plan"]) == 0
        assert "plan OK" in capsys.readouterr().out
