"""Unit tests for SSA construction and inversion."""

import pytest

from repro.frontend.parser import parse_program
from repro.ir.cfg import IRError
from repro.ir.instr import Instr, Var
from repro.ir.lower import lower_program
from repro.ssa.construct import base_name, construct_ssa
from repro.ssa.invert import (
    _sequentialize_parallel_copies,
    invert_ssa,
    split_critical_edges,
)
from repro.ssa.verify import verify_ssa


def to_ssa(text, **sources):
    files = {"main.m": text}
    for name, src in sources.items():
        files[f"{name}.m"] = src
    func = lower_program(parse_program(files))
    return construct_ssa(func)


class TestConstruction:
    def test_straightline_versions(self):
        func = to_ssa("x = 1; x = x + 1; x = x * 2;")
        verify_ssa(func)
        versions = [
            r for i in func.instructions() for r in i.results
            if base_name(r) == "x"
        ]
        assert len(versions) == len(set(versions)) == 3

    def test_if_join_gets_phi(self):
        func = to_ssa(
            "a = 1;\nif a > 0\n b = 1;\nelse\n b = 2;\nend\nc = b;"
        )
        verify_ssa(func)
        phis = [i for i in func.instructions() if i.is_phi]
        assert any(base_name(p.results[0]) == "b" for p in phis)

    def test_loop_header_phi(self):
        func = to_ssa("i = 0;\nwhile i < 10\n i = i + 1;\nend\nd = i;")
        verify_ssa(func)
        phis = [i for i in func.instructions() if i.is_phi]
        assert any(base_name(p.results[0]) == "i" for p in phis)

    def test_local_temp_gets_no_phi(self):
        # single-block temporaries must not grow φs (semi-pruned SSA)
        func = to_ssa(
            "a = 1;\nif a > 0\n b = 2 + 3 * a;\nelse\n b = 0;\nend\nc = b;"
        )
        verify_ssa(func)
        for phi in (i for i in func.instructions() if i.is_phi):
            assert not base_name(phi.results[0]).endswith("$")

    def test_use_before_def_synthesizes_undef(self):
        # `b` defined only on one path but used after the join
        func = to_ssa(
            "a = 1;\nif a > 0\n b = 2;\nend\nc = b;"
        )
        verify_ssa(func)
        assert any(i.op == "undef" for i in func.instructions())

    def test_verify_rejects_double_def(self):
        func = to_ssa("x = 1; y = x;")
        # manually break SSA
        func.entry_block().append(
            Instr(op="const", results=[func.entry_block().instrs[0].results[0]])
        )
        func.entry_block().terminator, saved = None, func.entry_block().terminator
        func.entry_block().terminator = saved
        with pytest.raises(IRError):
            verify_ssa(func)

    def test_nested_loops(self):
        func = to_ssa(
            "s = 0;\nfor i = 1:3\n for j = 1:3\n  s = s + i * j;\n end\nend"
        )
        verify_ssa(func)

    def test_all_uses_renamed(self):
        func = to_ssa("x = 1;\nwhile x < 5\n x = x + 1;\nend\ny = x;")
        for instr in func.instructions():
            for arg in instr.args:
                if isinstance(arg, Var) and instr.op != "undef":
                    assert "#" in arg.name, f"unrenamed use in {instr}"


class TestParallelCopies:
    def test_independent_copies_kept(self):
        temps = iter([f"tmp{i}$" for i in range(10)])
        out = _sequentialize_parallel_copies(
            [("a", Var("x")), ("b", Var("y"))], lambda: next(temps)
        )
        assert ("a", Var("x")) in out and ("b", Var("y")) in out

    def test_chain_ordered_correctly(self):
        temps = iter([f"tmp{i}$" for i in range(10)])
        # b := a must run after c := b reads the old b
        out = _sequentialize_parallel_copies(
            [("b", Var("a")), ("c", Var("b"))], lambda: next(temps)
        )
        assert out.index(("c", Var("b"))) < out.index(("b", Var("a")))

    def test_swap_cycle_uses_temp(self):
        temps = iter([f"tmp{i}$" for i in range(10)])
        out = _sequentialize_parallel_copies(
            [("a", Var("b")), ("b", Var("a"))], lambda: next(temps)
        )
        assert len(out) == 3  # temp save + two moves
        dests = [d for d, _ in out]
        assert "tmp0$" in dests

    def test_identity_copy_elided(self):
        out = _sequentialize_parallel_copies(
            [("a", Var("a"))], lambda: "t$"
        )
        assert out == []


class TestInversion:
    def test_phis_removed(self):
        func = to_ssa("i = 0;\nwhile i < 4\n i = i + 1;\nend\nz = i;")
        invert_ssa(func)
        assert not any(i.is_phi for i in func.instructions())
        func.verify()

    def test_copies_inserted_on_edges(self):
        func = to_ssa(
            "a = 1;\nif a > 0\n b = 1;\nelse\n b = 2;\nend\nc = b;"
        )
        n_phis = sum(1 for i in func.instructions() if i.is_phi)
        assert n_phis >= 1
        invert_ssa(func)
        copies = [i for i in func.instructions() if i.op == "copy"]
        assert len(copies) >= 2 * n_phis  # one per incoming edge

    def test_critical_edge_split(self):
        # while-loop exit edge from the header (2 succs) to a join with
        # the preheader would be critical once phis exist there.
        func = to_ssa(
            "a = 1;\nif a > 0\n b = 1;\nelse\n b = 2;\nend\nc = b;"
        )
        before = len(func.blocks)
        split_critical_edges(func)
        assert len(func.blocks) >= before  # splitting never removes blocks
        func.verify()

    def test_inverted_function_still_executes_structure(self):
        func = to_ssa(
            "s = 0;\nfor i = 1:5\n s = s + i;\nend\ndisp(s);"
        )
        invert_ssa(func)
        func.verify()

    def test_swap_pattern_through_loop(self):
        # classic swap: values rotate each iteration; inversion must not
        # clobber one before the other is copied.
        func = to_ssa(
            "a = 1; b = 2;\nfor k = 1:3\n t = a; a = b; b = t;\nend\n"
            "disp(a); disp(b);"
        )
        verify_ssa(func)
        invert_ssa(func)
        func.verify()
