"""Shared IR execution engine.

Both executors — the mat2c model (GCTD-allocated storage) and the mcc
model (everything a heap ``mxArray``) — run the same SSA-inverted IR
through this engine, so their *semantics* are identical by
construction and only their storage/cost accounting differs (the
subclass hooks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.source import MatlabError
from repro.ir.cfg import IRFunction
from repro.ir.instr import (
    Branch,
    Const,
    Instr,
    Jump,
    Operand,
    Ret,
    StrConst,
    Var,
)
from repro.memsim.costs import CostModel, DEFAULT_COSTS
from repro.memsim.meter import MemoryReport
from repro.runtime import ops
from repro.runtime.builtins import RuntimeContext, call_builtin
from repro.runtime.errors import MatlabRuntimeError
from repro.runtime.indexing import COLON, subsasgn, subsref
from repro.runtime.marray import MArray


class ExecutionLimitExceeded(MatlabError):
    pass


@dataclass(slots=True)
class ExecutionResult:
    output: str
    report: MemoryReport
    steps: int
    env: dict[str, MArray] = field(default_factory=dict)


_BINOPS = {
    "add": ops.add,
    "sub": ops.sub,
    "elmul": ops.elmul,
    "eldiv": ops.eldiv,
    "elldiv": ops.elldiv,
    "elpow": ops.elpow,
    "mul": ops.mul,
    "div": ops.div,
    "ldiv": ops.ldiv,
    "pow": ops.pow_,
    "lt": ops.lt,
    "le": ops.le,
    "gt": ops.gt,
    "ge": ops.ge,
    "eq": ops.eq,
    "ne": ops.ne,
    "and": ops.and_,
    "or": ops.or_,
}


class BaseIRExecutor:
    """Executes non-SSA IR; subclasses implement the accounting hooks."""

    def __init__(
        self,
        func: IRFunction,
        ctx: RuntimeContext | None = None,
        costs: CostModel = DEFAULT_COSTS,
        max_steps: int = 20_000_000,
    ) -> None:
        self.func = func
        self.ctx = ctx or RuntimeContext()
        self.costs = costs
        self.max_steps = max_steps
        self.env: dict[str, MArray] = {}
        self.clock = 0.0
        self.steps = 0

    # -- subclass hooks ----------------------------------------------------

    def on_start(self) -> None: ...

    def on_finish(self) -> None: ...

    def account(
        self, instr: Instr, args: list, results: list[MArray]
    ) -> None:
        """Charge cycles and update memory models for one instruction."""

    def on_block_end(self, block_id: int) -> None: ...

    def build_report(self) -> MemoryReport:
        return MemoryReport()

    # -- main loop ------------------------------------------------------

    def run(self) -> ExecutionResult:
        self.on_start()
        block_id = self.func.entry
        while True:
            block = self.func.blocks[block_id]
            for instr in block.instrs:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise ExecutionLimitExceeded(
                        f"exceeded {self.max_steps} executed instructions"
                    )
                self._execute(instr)
            self.on_block_end(block_id)
            # count the control transfer too: an empty loop (all body
            # instructions dead-coded away) must still hit the limit
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {self.max_steps} executed instructions"
                )
            term = block.terminator
            if isinstance(term, Ret):
                break
            if isinstance(term, Jump):
                block_id = term.target
            elif isinstance(term, Branch):
                cond = self._operand_value(term.condition)
                self.clock += self.costs.branch
                block_id = (
                    term.true_target if cond.is_true() else term.false_target
                )
            else:
                raise MatlabRuntimeError("block without terminator")
        self.on_finish()
        return ExecutionResult(
            output=self.ctx.captured(),
            report=self.build_report(),
            steps=self.steps,
            env=self.env,
        )

    # -- evaluation ----------------------------------------------------

    def _operand_value(self, operand: Operand) -> MArray:
        if isinstance(operand, Var):
            try:
                return self.env[operand.name]
            except KeyError:
                raise MatlabRuntimeError(
                    f"use of undefined variable {operand.name!r}"
                ) from None
        if isinstance(operand, Const):
            return MArray.from_scalar(operand.value)
        return MArray.from_string(operand.value)

    def _execute(self, instr: Instr) -> None:
        op = instr.op
        if op == "display":
            value = self._operand_value(instr.args[0])
            label = instr.args[1].value  # type: ignore[union-attr]
            self.ctx.write(f"{label} =\n")
            call_builtin(self.ctx, "disp", [value])
            self.account(instr, [value], [])
            return
        args: list = []
        for operand in instr.args:
            if isinstance(operand, StrConst) and operand.value == ":" and (
                op in ("subsref", "subsasgn")
            ):
                args.append(COLON)
            else:
                args.append(self._operand_value(operand))
        results = self._evaluate(instr, args)
        for name, value in zip(instr.results, results):
            self.define(name, value, instr)
        self.account(instr, args, results)

    def define(self, name: str, value: MArray, instr: Instr) -> None:
        self.env[name] = value

    def _evaluate(self, instr: Instr, args: list) -> list[MArray]:
        op = instr.op
        if op in _BINOPS:
            return [_BINOPS[op](args[0], args[1])]
        if op in ("const", "copy"):
            return [args[0]]
        if op == "neg":
            return [ops.neg(args[0])]
        if op == "not":
            return [ops.not_(args[0])]
        if op == "transpose":
            return [ops.transpose(args[0], conjugate=False)]
        if op == "ctranspose":
            return [ops.transpose(args[0], conjugate=True)]
        if op == "range":
            return [ops.make_range(args[0], args[1], args[2])]
        if op == "forindex":
            # start + counter*step (bounds args[2] carried for analysis)
            value = (
                args[0].scalar() + args[3].scalar() * args[1].scalar()
            )
            return [MArray.from_scalar(value)]
        if op == "subsref":
            return [subsref(args[0], args[1:])]
        if op == "subsasgn":
            return [subsasgn(args[0], args[1], args[2:])]
        if op == "horzcat":
            return [ops.horzcat(args)]
        if op == "vertcat":
            return [ops.vertcat(args)]
        if op == "empty":
            return [MArray.empty()]
        if op == "undef":
            return [MArray.empty()]
        if instr.is_call:
            return call_builtin(
                self.ctx,
                instr.callee,
                args,
                nargout=max(1, len(instr.results)),
            )
        raise MatlabRuntimeError(f"unsupported IR op {op!r}")
