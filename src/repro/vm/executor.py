"""The mat2c execution model: GCTD-allocated storage.

Runs the inverted IR against the :mod:`repro.memsim` machine exactly as
the paper's generated C would use memory:

* one stack frame holding every STACK group at its maximal size, fixed
  for the activation (§3.2.1) — scalars and statically-sized arrays
  live here;
* one heap buffer per HEAP group, created on first definition and
  *resized on the fly* to each member's needs (§3.2.2); definitions
  marked ``∘`` skip even the resize check;
* in-place operations write through the group buffer — no allocation,
  no copy;
* identity copies (same group) cost nothing — they were folded away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import (
    AllocationPlan,
    MAY_RESIZE,
    NO_RESIZE,
)
from repro.ir.cfg import IRFunction
from repro.ir.instr import Instr, Var
from repro.memsim.costs import CostModel, DEFAULT_COSTS
from repro.memsim.heap import HeapModel
from repro.memsim.meter import MemoryMeter, MemoryReport
from repro.memsim.stack import StackModel
from repro.runtime.builtins import RuntimeContext
from repro.runtime.marray import MArray

from repro.vm.base import BaseIRExecutor
from repro.vm.work import computation_work

#: fixed text+data of a mat2c binary, plus per-instruction inlined code
MAT2C_IMAGE_BASE = 400 * 1024
MAT2C_IMAGE_PER_INSTR = 96

#: C scalars/locals bookkeeping per frame
FRAME_OVERHEAD_BYTES = 512


@dataclass(slots=True)
class _HeapBuffer:
    addr: int
    size: int


class Mat2CExecutor(BaseIRExecutor):
    def __init__(
        self,
        func: IRFunction,
        plan: AllocationPlan,
        ctx: RuntimeContext | None = None,
        costs: CostModel = DEFAULT_COSTS,
        max_steps: int = 20_000_000,
        aliased: bool = False,
    ) -> None:
        super().__init__(func, ctx, costs, max_steps)
        self.plan = plan
        #: aliased mode keys the environment by *storage group* instead
        #: of name — reads and writes go through the shared buffer just
        #: like the generated C, so a coalescing bug that a name-keyed
        #: environment would hide corrupts output here.  Used by the
        #: soundness-validation tests.
        self.aliased = aliased
        self.heap = HeapModel()
        self.stack = StackModel()
        image = MAT2C_IMAGE_BASE + MAT2C_IMAGE_PER_INSTR * sum(
            len(b.instrs) for b in func.blocks.values()
        )
        # inlined code is hot: most of the (larger) image is resident
        self.meter = MemoryMeter(
            self.heap, self.stack, image,
            resident_image_bytes=int(image * 0.85),
        )
        self._buffers: dict[int, _HeapBuffer] = {}

    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.stack.push_frame(
            self.plan.stack_frame_bytes() + FRAME_OVERHEAD_BYTES
        )
        self.meter.sample(self.clock)

    def on_finish(self) -> None:
        for buffer in self._buffers.values():
            self.heap.free(buffer.addr)
            self.clock += self.costs.free_call
        self._buffers.clear()
        self.stack.pop_frame()
        self.clock += 1.0
        self.meter.sample(self.clock)

    def _slot(self, name: str) -> str:
        gid = self.plan.group_of.get(name)
        return f"@group{gid}" if gid is not None else name

    def define(self, name: str, value: MArray, instr: Instr) -> None:
        if self.aliased:
            self.env[self._slot(name)] = value
        else:
            super().define(name, value, instr)
        gid = self.plan.group_of.get(name)
        if gid is None:
            return
        group = self.plan.groups[gid]
        if group.is_stack:
            return  # frame space is preallocated and fixed
        need = value.byte_size()
        mark = self.plan.resize_marks.get(name, MAY_RESIZE)
        buffer = self._buffers.get(gid)
        if buffer is None:
            addr = self.heap.malloc(max(need, 8))
            self._buffers[gid] = _HeapBuffer(addr, max(need, 8))
            self.clock += self.costs.malloc_call
            return
        if mark != NO_RESIZE:
            self.clock += self.costs.resize_check
        if need > buffer.size:
            new_addr, new_pages = self.heap.realloc(buffer.addr, need)
            buffer.addr, buffer.size = new_addr, need
            self.clock += (
                self.costs.realloc_base
                + self.costs.page_touch * new_pages
            )
        elif need < buffer.size and mark == MAY_RESIZE:
            # shrink to the member's needs to relieve heap pressure
            new_addr, _ = self.heap.realloc(buffer.addr, max(need, 8))
            buffer.addr, buffer.size = new_addr, max(need, 8)
            self.clock += self.costs.realloc_base * 0.25

    def _operand_value(self, operand):
        if self.aliased and isinstance(operand, Var):
            slot = self._slot(operand.name)
            if slot in self.env:
                return self.env[slot]
        return super()._operand_value(operand)

    def account(self, instr, args, results) -> None:
        if instr.op == "copy" and isinstance(instr.args[0], Var):
            src = instr.args[0].name
            dst = instr.results[0]
            if self.plan.same_storage(src, dst):
                return  # identity assignment: folded away
            # cross-group copy: move the bytes
            self.clock += (
                self.costs.element_copy * results[0].numel + 2.0
            )
            self._touch_write(dst, results)
            self.meter.sample(self.clock)
            return
        work = computation_work(instr, args, results)
        op = instr.op
        if op == "subsref":
            self.clock += self.costs.subsref_compiled * max(1.0, work)
        elif op == "subsasgn":
            self.clock += self.costs.subsasgn_compiled * max(1.0, work)
        elif op == "display" or (
            instr.is_call and instr.callee in ("disp", "fprintf")
        ):
            self.clock += self.costs.library_call + work
        else:
            self.clock += self.costs.scalar_op * work
        if results:
            self._touch_write(instr.results[0], results)
        self.meter.sample(self.clock)

    def _touch_write(self, name: str, results: list[MArray]) -> None:
        gid = self.plan.group_of.get(name)
        if gid is None:
            return
        buffer = self._buffers.get(gid)
        if buffer is not None:
            self.heap.touch_bytes(buffer.addr, min(
                buffer.size, results[0].byte_size() or 1
            ))

    def build_report(self) -> MemoryReport:
        return self.meter.report()
