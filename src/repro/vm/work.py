"""Pure computational work (scalar operations) of one IR instruction.

This is the cost both compilation models share — the actual numeric
work.  What distinguishes mat2c, mcc, and the interpreter is the
*overhead* they add around it, charged by each executor.
"""

from __future__ import annotations

from repro.ir.instr import Instr
from repro.runtime.marray import MArray

_CHEAP_CALLS = frozenset(
    {"size", "numel", "length", "ndims", "isempty", "isreal", "tic", "toc"}
)

#: libm-grade per-element cost (UltraSPARC-era transcendentals are two
#: orders of magnitude above an add — this is why adpt, dominated by
#: integrand evaluations, shows the paper's smallest mat2c/mcc gap)
_TRANSCENDENTAL_COST = 150.0
_TRANSCENDENTALS = frozenset(
    {
        "sin",
        "cos",
        "tan",
        "asin",
        "acos",
        "atan",
        "atan2",
        "sinh",
        "cosh",
        "tanh",
        "exp",
        "log",
        "log2",
        "log10",
    }
)
_SLOWISH_CALLS = frozenset({"sqrt", "norm", "mod", "rem"})
_SLOWISH_COST = 25.0


def computation_work(instr: Instr, args: list, results: list[MArray]) -> float:
    """Approximate scalar-operation count for the instruction."""
    op = instr.op
    if op == "mul" and len(args) == 2:
        a, b = args[0], args[1]
        if isinstance(a, MArray) and isinstance(b, MArray):
            if not a.is_scalar and not b.is_scalar:
                # (m×k)·(k×n): m·k·n multiply-adds
                return float(
                    a.shape[0] * a.shape[1] * b.shape[1]
                )
    if op in ("div", "ldiv") and len(args) == 2:
        a, b = args[0], args[1]
        if isinstance(a, MArray) and isinstance(b, MArray):
            if not a.is_scalar and not b.is_scalar:
                n = max(a.shape[0], a.shape[1])
                return float(n**3) / 3.0  # LU-style solve
    if op == "subsasgn":
        rhs = args[1] if len(args) > 1 else None
        moved = rhs.numel if isinstance(rhs, MArray) else 1
        if results and results[0].numel > args[0].numel:
            moved += results[0].numel  # expansion copies the old array
        return float(moved)
    if instr.is_call and instr.callee in _CHEAP_CALLS:
        return 1.0
    if instr.is_call and args:
        input_elems = max(
            (a.numel for a in args if isinstance(a, MArray)), default=1
        )
        output_elems = max((r.numel for r in results), default=1)
        elems = float(max(input_elems, output_elems))
        if instr.callee in _TRANSCENDENTALS:
            return elems * _TRANSCENDENTAL_COST
        if instr.callee in _SLOWISH_CALLS:
            return elems * _SLOWISH_COST
        return elems
    if instr.op in ("elpow", "pow"):
        return float(
            max((r.numel for r in results), default=1)
        ) * _TRANSCENDENTAL_COST
    if results:
        return float(max(r.numel for r in results))
    if args and isinstance(args[0], MArray):
        return float(args[0].numel)
    return 1.0


def moved_bytes(results: list[MArray]) -> int:
    return sum(r.byte_size() for r in results)
