"""mat2c execution model: runs GCTD-allocated IR on the memory simulator."""

from repro.vm.base import BaseIRExecutor, ExecutionLimitExceeded, ExecutionResult
from repro.vm.executor import Mat2CExecutor
from repro.vm.work import computation_work

__all__ = [
    "BaseIRExecutor",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Mat2CExecutor",
    "computation_work",
]
