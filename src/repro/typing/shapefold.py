"""Shape-driven folding: materialize statically-known ``size``/``numel``.

After inference, a ``size(a, k)`` or ``numel(a)`` whose answer the shape
engine knows exactly is rewritten to a constant.  Re-running the scalar
cleanup pipeline afterwards lets those constants flow into array
constructors, which frequently upgrades more shapes from symbolic to
static — so the compiler driver alternates inference and folding until
quiescent (MAGICA's reuse of inferences plays the same role [18]).
"""

from __future__ import annotations

from repro.ir.cfg import IRFunction
from repro.ir.instr import Const, Instr
from repro.typing.infer import TypeEnvironment


def fold_shape_queries(func: IRFunction, env: TypeEnvironment) -> int:
    """Rewrite size/numel/length/ndims with static answers to consts."""
    folded = 0
    for block in func.blocks.values():
        for instr in block.instrs:
            if len(instr.results) != 1:
                continue
            value = _static_answer(instr, env)
            if value is not None:
                instr.op = "const"
                instr.args = [Const(complex(value))]
                folded += 1
    return folded


def _static_answer(instr: Instr, env: TypeEnvironment) -> float | None:
    if not instr.is_call or not instr.args:
        return None
    name = instr.callee
    if name not in ("size", "numel", "length", "ndims"):
        return None
    base = env.of_operand(instr.args[0])
    shape = base.shape
    if not shape.exact or not shape.is_static:
        return None
    extents = [d.value for d in shape.dims]  # type: ignore[union-attr]
    if name == "numel":
        n = 1
        for e in extents:
            n *= e
        return float(n)
    if name == "length":
        return float(max(extents) if min(extents) > 0 else 0)
    if name == "ndims":
        return float(len(extents)) if shape.rank_exact else None
    # size with an explicit constant dim argument
    if len(instr.args) >= 2 and isinstance(instr.args[1], Const):
        k = int(instr.args[1].value.real)
        return float(extents[k - 1]) if 1 <= k <= len(extents) else 1.0
    return None
