"""MAGICA-style type, shape, and value-range inference."""

from repro.typing.infer import (
    TypeEnvironment,
    TypeInference,
    elementwise_shape,
    infer_types,
    type_of_literal,
)
from repro.typing.intrinsic import (
    Intrinsic,
    STORAGE_SIZE,
    arithmetic_result,
    comparison_result,
    division_result,
    intrinsic_of_literal,
    scalar_size,
)
from repro.typing.ranges import Interval
from repro.typing.shape import (
    ConstDim,
    Dim,
    FreshDim,
    OpDim,
    Shape,
    ValueDim,
    dim_add,
    dim_le,
    dim_max,
    dim_mul,
    dim_rangelen,
    fresh_dim,
)
from repro.typing.shapefold import fold_shape_queries
from repro.typing.types import VarType

__all__ = [
    "TypeEnvironment",
    "TypeInference",
    "elementwise_shape",
    "infer_types",
    "type_of_literal",
    "Intrinsic",
    "STORAGE_SIZE",
    "arithmetic_result",
    "comparison_result",
    "division_result",
    "intrinsic_of_literal",
    "scalar_size",
    "Interval",
    "ConstDim",
    "Dim",
    "FreshDim",
    "OpDim",
    "Shape",
    "ValueDim",
    "dim_add",
    "dim_le",
    "dim_max",
    "dim_mul",
    "dim_rangelen",
    "fresh_dim",
    "fold_shape_queries",
    "VarType",
]
