"""Symbolic shape tuples (paper §3.1–3.2).

A shape tuple s(u) is a tuple of dimension *extents*.  Extents are
symbolic expressions:

* :class:`ConstDim` — a compile-time integer;
* :class:`ValueDim` — "the run-time value of SSA variable v" (how
  ``zeros(n, m)`` gets the shape ``(⌊n⌋, ⌊m⌋)``; two arrays built from
  the same SSA variables get *structurally equal* shapes, which is the
  reproduction of MAGICA's symbolic-equivalence reuse [18]);
* :class:`FreshDim` — an opaque unknown, unique per allocation site;
* :class:`OpDim` — ``max``/``add``/``mul``/``rangelen`` over extents,
  built through smart constructors that canonicalize and fold.

``dim_le`` is the symbolic ≤ used by Relation 1's second criterion: it
proves S(u) ≤ S(v) when v's extents contain u's under ``max`` (the
``subsasgn`` growth pattern of the paper's Example 2) or match exactly
(Example 1's elementwise chains).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import reduce


# --------------------------------------------------------------------------
# Dimension expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ConstDim:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class ValueDim:
    """Extent equal to (the floor of) SSA variable ``var``'s value."""

    var: str

    def __str__(self) -> str:
        return f"⌊{self.var}⌋"


_fresh_counter = itertools.count()

# When set, fresh dims are memoized per (context key, call index) so a
# fixpoint engine re-running a transfer function gets the *same* dims
# each pass — otherwise φ joins accumulate ever-growing max() terms.
_fresh_context: dict | None = None
_fresh_key: object = None
_fresh_calls: int = 0


@dataclass(frozen=True, slots=True)
class FreshDim:
    ident: int

    def __str__(self) -> str:
        return f"?{self.ident}"


def set_fresh_context(cache: dict | None, key: object = None) -> None:
    """Enter (or, with ``cache=None``, leave) a stable-fresh scope."""
    global _fresh_context, _fresh_key, _fresh_calls
    _fresh_context = cache
    _fresh_key = key
    _fresh_calls = 0


@dataclass(frozen=True, slots=True)
class OpDim:
    op: str  # 'max' | 'add' | 'mul' | 'rangelen'
    args: tuple["Dim", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}({inner})"


Dim = ConstDim | ValueDim | FreshDim | OpDim


def fresh_dim() -> FreshDim:
    global _fresh_calls
    if _fresh_context is not None:
        memo_key = (_fresh_key, _fresh_calls)
        _fresh_calls += 1
        dim = _fresh_context.get(memo_key)
        if dim is None:
            dim = FreshDim(next(_fresh_counter))
            _fresh_context[memo_key] = dim
        return dim
    return FreshDim(next(_fresh_counter))


# -- smart constructors -----------------------------------------------------


def dim_max(*dims: Dim) -> Dim:
    """max over extents, flattened, deduplicated, constants folded."""
    flat: list[Dim] = []
    for d in dims:
        if isinstance(d, OpDim) and d.op == "max":
            flat.extend(d.args)
        else:
            flat.append(d)
    consts = [d.value for d in flat if isinstance(d, ConstDim)]
    rest: list[Dim] = []
    for d in flat:
        if not isinstance(d, ConstDim) and d not in rest:
            rest.append(d)
    if consts:
        folded = ConstDim(max(consts))
        if not rest:
            return folded
        rest.append(folded)
    if len(rest) == 1:
        return rest[0]
    # canonical order so max(a,b) == max(b,a)
    rest.sort(key=str)
    return OpDim("max", tuple(rest))


def dim_add(a: Dim, b: Dim) -> Dim:
    if isinstance(a, ConstDim) and isinstance(b, ConstDim):
        return ConstDim(a.value + b.value)
    if isinstance(a, ConstDim) and a.value == 0:
        return b
    if isinstance(b, ConstDim) and b.value == 0:
        return a
    parts = []
    for d in (a, b):
        if isinstance(d, OpDim) and d.op == "add":
            parts.extend(d.args)
        else:
            parts.append(d)
    parts.sort(key=str)
    return OpDim("add", tuple(parts))


def dim_mul(a: Dim, b: Dim) -> Dim:
    if isinstance(a, ConstDim) and isinstance(b, ConstDim):
        return ConstDim(a.value * b.value)
    if isinstance(a, ConstDim) and a.value == 1:
        return b
    if isinstance(b, ConstDim) and b.value == 1:
        return a
    if (isinstance(a, ConstDim) and a.value == 0) or (
        isinstance(b, ConstDim) and b.value == 0
    ):
        return ConstDim(0)
    parts = []
    for d in (a, b):
        if isinstance(d, OpDim) and d.op == "mul":
            parts.extend(d.args)
        else:
            parts.append(d)
    parts.sort(key=str)
    return OpDim("mul", tuple(parts))


def dim_rangelen(start: Dim, step: Dim, stop: Dim) -> Dim:
    """Number of elements of ``start:step:stop`` (0 when empty)."""
    if (
        isinstance(start, ConstDim)
        and isinstance(step, ConstDim)
        and isinstance(stop, ConstDim)
        and step.value != 0
    ):
        n = (stop.value - start.value) // step.value + 1
        return ConstDim(max(0, n))
    return OpDim("rangelen", (start, step, stop))


def dim_le(a: Dim, b: Dim) -> bool:
    """Sound symbolic test for extent(a) ≤ extent(b); False = unknown."""
    if a == b:
        return True
    if isinstance(a, ConstDim) and isinstance(b, ConstDim):
        return a.value <= b.value
    if isinstance(b, OpDim) and b.op == "max":
        # a ≤ max(..., m, ...) if a ≤ m for some argument m
        return any(dim_le(a, m) for m in b.args)
    if isinstance(a, OpDim) and a.op == "max":
        # max(xs) ≤ b iff every x ≤ b
        return all(dim_le(x, b) for x in a.args)
    return False


# --------------------------------------------------------------------------
# Shape tuples
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Shape:
    """A shape tuple: extents plus exactness flags.

    ``exact``      — dims are the true run-time extents (safe to fold
                     ``size``/``numel`` against);
    ``rank_exact`` — the *number* of dimensions is certain even when
                     the extents are not.

    An inexact shape is still a sound **upper bound** on storage, which
    is all Phase 2 of GCTD needs.
    """

    dims: tuple[Dim, ...]
    exact: bool = True
    rank_exact: bool = True

    # -- constructors ----------------------------------------------------

    @staticmethod
    def scalar() -> "Shape":
        return Shape((ConstDim(1), ConstDim(1)))

    @staticmethod
    def matrix(rows: int, cols: int) -> "Shape":
        return Shape((ConstDim(rows), ConstDim(cols)))

    @staticmethod
    def row_vector(n: Dim) -> "Shape":
        return Shape((ConstDim(1), n))

    @staticmethod
    def column_vector(n: Dim) -> "Shape":
        return Shape((n, ConstDim(1)))

    @staticmethod
    def unknown(rank: int = 2) -> "Shape":
        return Shape(
            tuple(fresh_dim() for _ in range(rank)),
            exact=False,
            rank_exact=False,
        )

    @staticmethod
    def empty() -> "Shape":
        return Shape((ConstDim(0), ConstDim(0)))

    # -- queries ---------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def is_static(self) -> bool:
        """Paper §3.2.1 case 1: the shape tuple is explicit."""
        return all(isinstance(d, ConstDim) for d in self.dims)

    @property
    def is_scalar(self) -> bool:
        """Definitely 1×1×···×1 (requires exact extents)."""
        return self.exact and all(
            isinstance(d, ConstDim) and d.value == 1 for d in self.dims
        )

    @property
    def maybe_scalar(self) -> bool:
        """Cannot rule out being scalar."""
        if self.is_scalar:
            return True
        if not self.exact:
            return True
        return not any(
            isinstance(d, ConstDim) and d.value != 1 for d in self.dims
        )

    def numel(self) -> Dim:
        return reduce(dim_mul, self.dims, ConstDim(1))

    def static_numel(self) -> int | None:
        n = self.numel()
        return n.value if isinstance(n, ConstDim) else None

    def extent(self, dim_index: int) -> Dim:
        """1-based extent; trailing dimensions are 1 (MATLAB rule)."""
        if 1 <= dim_index <= len(self.dims):
            return self.dims[dim_index - 1]
        return ConstDim(1)

    # -- relations -----------------------------------------------------------

    def storage_le(self, other: "Shape") -> bool:
        """Symbolically prove numel(self) ≤ numel(other)."""
        if self.dims == other.dims:
            return True
        if self.numel() == other.numel():
            return True
        if self.rank == other.rank:
            if all(dim_le(a, b) for a, b in zip(self.dims, other.dims)):
                return True
        return dim_le(self.numel(), other.numel())

    def join(self, other: "Shape") -> "Shape":
        """Lattice join for φ merges.

        Equal shapes join to themselves; shapes of equal rank join to
        the per-extent ``max`` (a sound storage bound — the paper's
        static-estimation case 2 is the all-constant instance of this),
        exact only if they were equal.
        """
        if self == other:
            return self
        if self.rank == other.rank:
            dims = tuple(
                dim_max(a, b) for a, b in zip(self.dims, other.dims)
            )
            return Shape(
                dims,
                exact=False,
                rank_exact=self.rank_exact and other.rank_exact,
            )
        return Shape.unknown(max(self.rank, other.rank))

    def transposed(self) -> "Shape":
        if self.rank == 2:
            return Shape(
                (self.dims[1], self.dims[0]), self.exact, self.rank_exact
            )
        return Shape.unknown(self.rank)

    def with_exact(self, exact: bool) -> "Shape":
        return Shape(self.dims, exact, self.rank_exact)

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.dims)
        marker = "" if self.exact else "~"
        return f"{marker}({inner})"


def pick_better_shape(a: Shape, b: Shape) -> Shape:
    """Of two shapes known equal at run time, keep the more informative.

    Used for elementwise ops on two nonscalars: a legal MATLAB program
    guarantees the operand shapes agree, so either describes the result;
    we prefer static > exact-symbolic > inexact.
    """

    def score(s: Shape) -> int:
        if s.is_static:
            return 3
        if s.exact:
            return 2
        if s.rank_exact:
            return 1
        return 0

    return a if score(a) >= score(b) else b
