"""The combined abstract value: intrinsic × shape × value range."""

from __future__ import annotations

from dataclasses import dataclass

from repro.typing.intrinsic import Intrinsic, scalar_size
from repro.typing.ranges import Interval
from repro.typing.shape import ConstDim, Dim, Shape, dim_mul


@dataclass(frozen=True, slots=True)
class VarType:
    """What MAGICA infers per variable: τ(w), s(w) (and ρ implicitly
    as the shape's rank), and the value range ν(w)."""

    intrinsic: Intrinsic
    shape: Shape
    range: Interval
    #: symbolic upper bound: the value is ≤ ⌊value of SSA var sym_hi⌋
    #: (set for loop indices ``for k = 1:n``; lets Phase-2-relevant
    #: subscript checks prove in-boundedness against symbolic extents)
    sym_hi: str | None = None

    # -- constructors --------------------------------------------------

    @staticmethod
    def scalar(
        intrinsic: Intrinsic = Intrinsic.REAL,
        rng: Interval | None = None,
    ) -> "VarType":
        return VarType(intrinsic, Shape.scalar(), rng or Interval.top())

    @staticmethod
    def unknown() -> "VarType":
        return VarType(Intrinsic.COMPLEX, Shape.unknown(), Interval.top())

    # -- queries ---------------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.shape.is_scalar

    @property
    def maybe_nonscalar(self) -> bool:
        return not self.is_scalar

    def storage_size(self) -> Dim:
        """|s(u)|·|τ(u)| as a (possibly symbolic) byte count."""
        return dim_mul(self.shape.numel(), ConstDim(scalar_size(self.intrinsic)))

    def static_storage_size(self) -> int | None:
        size = self.storage_size()
        return size.value if isinstance(size, ConstDim) else None

    # -- lattice -----------------------------------------------------------

    def join(self, other: "VarType") -> "VarType":
        return VarType(
            self.intrinsic.join(other.intrinsic),
            self.shape.join(other.shape),
            self.range.join(other.range),
            self.sym_hi if self.sym_hi == other.sym_hi else None,
        )

    def __str__(self) -> str:
        return f"{self.intrinsic.name}{self.shape}"
