"""Transfer functions for MATLAB builtins (the engine's "signatures").

Each handler receives the instruction's operand abstractions and
returns the abstraction(s) of the result(s).  Handlers are registered
by builtin name; unknown builtins fall back to a conservative
COMPLEX/unknown-shape result, which is always sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.instr import Const, Instr, Operand, StrConst, Var
from repro.typing.intrinsic import Intrinsic
from repro.typing.ranges import Interval
from repro.typing.shape import (
    ConstDim,
    Dim,
    Shape,
    ValueDim,
    dim_mul,
    fresh_dim,
)
from repro.typing.types import VarType


@dataclass(slots=True)
class ArgView:
    """An operand together with its abstraction (None for strings)."""

    operand: Operand
    vartype: VarType | None

    @property
    def is_const(self) -> bool:
        return isinstance(self.operand, Const)

    @property
    def const_value(self) -> complex:
        assert isinstance(self.operand, Const)
        return self.operand.value

    def as_dim(self) -> Dim:
        """Interpret a size argument as an extent expression."""
        if isinstance(self.operand, Const) and self.operand.is_integer:
            return ConstDim(int(self.operand.value.real))
        if isinstance(self.operand, Var):
            vt = self.vartype
            if vt is not None and vt.range.is_exact and vt.range.integral:
                return ConstDim(int(vt.range.exact_value))
            return ValueDim(self.operand.name)
        return fresh_dim()

    def vt(self) -> VarType:
        if self.vartype is not None:
            return self.vartype
        if isinstance(self.operand, Const):
            from repro.typing.infer import type_of_literal

            return type_of_literal(self.operand.value)
        return VarType.unknown()


Handler = "callable[[list[ArgView], int], list[VarType]]"

_HANDLERS: dict[str, object] = {}


def handler(name: str):
    def register(fn):
        _HANDLERS[name] = fn
        return fn

    return register


def lookup_handler(name: str):
    return _HANDLERS.get(name)


# --------------------------------------------------------------------------
# Array constructors
# --------------------------------------------------------------------------


def _constructor_shape(args: list[ArgView]) -> Shape:
    if not args:
        return Shape.scalar()
    if len(args) == 1:
        d = args[0].as_dim()
        return Shape((d, d))
    return Shape(tuple(a.as_dim() for a in args))


@handler("zeros")
def _zeros(args, nresults):
    return [VarType(Intrinsic.REAL, _constructor_shape(args), Interval.exact(0.0))]


@handler("ones")
def _ones(args, nresults):
    return [VarType(Intrinsic.REAL, _constructor_shape(args), Interval.exact(1.0))]


@handler("eye")
def _eye(args, nresults):
    # MAGICA infers BOOLEAN for identity matrices (paper Example 2).
    return [
        VarType(
            Intrinsic.BOOLEAN,
            _constructor_shape(args),
            Interval.bounded(0.0, 1.0, integral=True),
        )
    ]


@handler("rand")
@handler("randn")
def _rand(args, nresults):
    rng = Interval.bounded(0.0, 1.0) if True else Interval.top()
    return [VarType(Intrinsic.REAL, _constructor_shape(args), rng)]


@handler("linspace")
def _linspace(args, nresults):
    n = args[2].as_dim() if len(args) >= 3 else ConstDim(100)
    return [VarType(Intrinsic.REAL, Shape.row_vector(n), Interval.top())]


@handler("repmat")
def _repmat(args, nresults):
    base = args[0].vt()
    if len(args) >= 3:
        m, n = args[1].as_dim(), args[2].as_dim()
        dims = (
            dim_mul(base.shape.extent(1), m),
            dim_mul(base.shape.extent(2), n),
        )
        return [
            VarType(
                base.intrinsic,
                Shape(dims, exact=base.shape.exact),
                base.range,
            )
        ]
    return [VarType(base.intrinsic, Shape.unknown(), base.range)]


@handler("reshape")
def _reshape(args, nresults):
    base = args[0].vt()
    dims = tuple(a.as_dim() for a in args[1:])
    if dims:
        return [VarType(base.intrinsic, Shape(dims), base.range)]
    return [VarType(base.intrinsic, Shape.unknown(), base.range)]


# --------------------------------------------------------------------------
# Shape observers
# --------------------------------------------------------------------------


@handler("size")
def _size(args, nresults):
    base = args[0].vt()
    if len(args) >= 2:
        rng = Interval(1.0, math.inf, integral=True)
        dim_arg = args[1]
        if dim_arg.is_const:
            extent = base.shape.extent(int(dim_arg.const_value.real))
            if isinstance(extent, ConstDim) and base.shape.exact:
                rng = Interval.exact(float(extent.value))
        return [VarType(Intrinsic.INTEGER, Shape.scalar(), rng)]
    if nresults <= 1:
        return [
            VarType(
                Intrinsic.INTEGER,
                Shape.row_vector(ConstDim(base.shape.rank)),
                Interval(0.0, math.inf, integral=True),
            )
        ]
    out = []
    for i in range(nresults):
        extent = base.shape.extent(i + 1)
        if isinstance(extent, ConstDim) and base.shape.exact:
            rng = Interval.exact(float(extent.value))
        else:
            rng = Interval(0.0, math.inf, integral=True)
        out.append(VarType(Intrinsic.INTEGER, Shape.scalar(), rng))
    return out


@handler("numel")
@handler("length")
def _numel(args, nresults):
    base = args[0].vt()
    n = base.shape.static_numel()
    if n is not None and base.shape.exact:
        rng = Interval.exact(float(n))
    else:
        rng = Interval(0.0, math.inf, integral=True)
    return [VarType(Intrinsic.INTEGER, Shape.scalar(), rng)]


@handler("ndims")
def _ndims(args, nresults):
    base = args[0].vt()
    if base.shape.rank_exact:
        rng = Interval.exact(float(base.shape.rank))
    else:
        rng = Interval(2.0, math.inf, integral=True)
    return [VarType(Intrinsic.INTEGER, Shape.scalar(), rng)]


@handler("isempty")
@handler("isreal")
def _predicate(args, nresults):
    return [
        VarType(
            Intrinsic.BOOLEAN,
            Shape.scalar(),
            Interval.bounded(0.0, 1.0, integral=True),
        )
    ]


# --------------------------------------------------------------------------
# Elementwise math
# --------------------------------------------------------------------------


def _elementwise(intrinsic_fn, range_fn=None):
    def apply(args, nresults):
        base = args[0].vt()
        rng = range_fn(base.range) if range_fn else Interval.top()
        return [VarType(intrinsic_fn(base), base.shape, rng)]

    return apply


def _real_preserving(base: VarType) -> Intrinsic:
    if base.intrinsic is Intrinsic.COMPLEX:
        return Intrinsic.COMPLEX
    return Intrinsic.REAL


_HANDLERS["exp"] = _elementwise(_real_preserving)
_HANDLERS["sin"] = _elementwise(
    _real_preserving, lambda r: Interval.bounded(-1.0, 1.0)
)
_HANDLERS["cos"] = _elementwise(
    _real_preserving, lambda r: Interval.bounded(-1.0, 1.0)
)
_HANDLERS["tan"] = _elementwise(_real_preserving)
_HANDLERS["asin"] = _elementwise(_real_preserving)
_HANDLERS["acos"] = _elementwise(_real_preserving)
_HANDLERS["atan"] = _elementwise(
    _real_preserving, lambda r: Interval.bounded(-math.pi / 2, math.pi / 2)
)
_HANDLERS["sinh"] = _elementwise(_real_preserving)
_HANDLERS["cosh"] = _elementwise(_real_preserving)
_HANDLERS["tanh"] = _elementwise(
    _real_preserving, lambda r: Interval.bounded(-1.0, 1.0)
)


@handler("sqrt")
def _sqrt(args, nresults):
    base = args[0].vt()
    if base.intrinsic is not Intrinsic.COMPLEX and base.range.is_nonnegative:
        out = Intrinsic.REAL
    else:
        out = Intrinsic.COMPLEX
    return [VarType(out, base.shape, Interval.top())]


@handler("log")
@handler("log2")
@handler("log10")
def _log(args, nresults):
    base = args[0].vt()
    if base.intrinsic is not Intrinsic.COMPLEX and base.range.is_positive:
        out = Intrinsic.REAL
    else:
        out = Intrinsic.COMPLEX
    return [VarType(out, base.shape, Interval.top())]


@handler("abs")
def _abs(args, nresults):
    base = args[0].vt()
    out = (
        Intrinsic.REAL
        if base.intrinsic is Intrinsic.COMPLEX
        else base.intrinsic
    )
    return [VarType(out, base.shape, base.range.absolute())]


@handler("real")
@handler("imag")
def _realpart(args, nresults):
    base = args[0].vt()
    return [VarType(Intrinsic.REAL, base.shape, Interval.top())]


@handler("conj")
def _conj(args, nresults):
    base = args[0].vt()
    return [base]


@handler("angle")
def _angle(args, nresults):
    base = args[0].vt()
    return [
        VarType(
            Intrinsic.REAL, base.shape, Interval.bounded(-math.pi, math.pi)
        )
    ]


@handler("floor")
@handler("ceil")
@handler("round")
@handler("fix")
def _integerize(args, nresults):
    base = args[0].vt()
    out = (
        Intrinsic.COMPLEX
        if base.intrinsic is Intrinsic.COMPLEX
        else Intrinsic.INTEGER
    )
    return [VarType(out, base.shape, base.range.floor())]


@handler("sign")
def _sign(args, nresults):
    base = args[0].vt()
    return [
        VarType(
            Intrinsic.INTEGER,
            base.shape,
            Interval.bounded(-1.0, 1.0, integral=True),
        )
    ]


@handler("mod")
@handler("rem")
def _mod(args, nresults):
    a, b = args[0].vt(), args[1].vt()
    from repro.typing.infer import elementwise_shape

    shape = elementwise_shape(a, b)
    integral = a.range.integral and b.range.integral
    if a.range.is_nonnegative and b.range.is_positive and math.isfinite(
        b.range.hi
    ):
        # mod(x, m) ∈ [0, m) for x ≥ 0, m > 0 — tight enough to prove
        # subscripts like mod(k, n) + 1 in bounds
        hi = b.range.hi - 1.0 if integral else b.range.hi
        rng = Interval.bounded(0.0, hi, integral=integral)
    else:
        hi = abs(b.range.hi) if math.isfinite(b.range.hi) else math.inf
        rng = Interval.bounded(-hi, hi, integral=integral)
    return [
        VarType(
            Intrinsic.REAL if not integral else Intrinsic.INTEGER,
            shape,
            rng,
        )
    ]


@handler("atan2")
def _atan2(args, nresults):
    a, b = args[0].vt(), args[1].vt()
    from repro.typing.infer import elementwise_shape

    return [
        VarType(
            Intrinsic.REAL,
            elementwise_shape(a, b),
            Interval.bounded(-math.pi, math.pi),
        )
    ]


# --------------------------------------------------------------------------
# Reductions and orderings
# --------------------------------------------------------------------------


def _reduction_shape(base: VarType) -> Shape:
    """sum/prod/any/all reduce the first non-singleton dimension."""
    shape = base.shape
    if shape.is_scalar:
        return Shape.scalar()
    rows = shape.extent(1)
    if isinstance(rows, ConstDim) and rows.value == 1 and shape.exact:
        return Shape.scalar()  # row vector reduces to a scalar
    cols = shape.extent(2)
    if isinstance(cols, ConstDim) and cols.value == 1 and shape.exact:
        return Shape.scalar()  # column vector too
    if isinstance(rows, ConstDim) and rows.value > 1:
        # definitely a matrix reduction: (1, cols), exactness inherited
        return Shape((ConstDim(1), cols), exact=shape.exact)
    # rows unknown: could be a row vector (⇒ scalar) or a matrix
    return Shape((ConstDim(1), cols), exact=False)


def _accumulation_intrinsic(base: VarType) -> Intrinsic:
    if base.intrinsic is Intrinsic.COMPLEX:
        return Intrinsic.COMPLEX
    return Intrinsic(max(base.intrinsic.value, Intrinsic.INTEGER.value))


@handler("sum")
@handler("prod")
def _sum(args, nresults):
    base = args[0].vt()
    return [
        VarType(
            _accumulation_intrinsic(base),
            _reduction_shape(base),
            Interval.top(),
        )
    ]


@handler("cumsum")
def _cumsum(args, nresults):
    base = args[0].vt()
    return [
        VarType(_accumulation_intrinsic(base), base.shape, Interval.top())
    ]


@handler("any")
@handler("all")
def _anyall(args, nresults):
    base = args[0].vt()
    return [
        VarType(
            Intrinsic.BOOLEAN,
            _reduction_shape(base),
            Interval.bounded(0.0, 1.0, integral=True),
        )
    ]


@handler("min")
@handler("max")
def _minmax(args, nresults):
    if len(args) >= 2:
        a, b = args[0].vt(), args[1].vt()
        from repro.typing.infer import elementwise_shape

        return [
            VarType(
                a.intrinsic.join(b.intrinsic),
                elementwise_shape(a, b),
                a.range.join(b.range),
            )
        ][:nresults] + [
            VarType.scalar(Intrinsic.INTEGER)
        ] * max(0, nresults - 1)
    base = args[0].vt()
    first = VarType(base.intrinsic, _reduction_shape(base), base.range)
    rest = [
        VarType.scalar(Intrinsic.INTEGER) for _ in range(nresults - 1)
    ]
    return [first, *rest]


@handler("sort")
def _sort(args, nresults):
    base = args[0].vt()
    out = [base]
    if nresults > 1:
        out.append(
            VarType(
                Intrinsic.INTEGER,
                base.shape,
                Interval(1.0, math.inf, integral=True),
            )
        )
    return out


@handler("find")
def _find(args, nresults):
    return [
        VarType(
            Intrinsic.INTEGER,
            Shape((fresh_dim(), ConstDim(1)), exact=False),
            Interval(1.0, math.inf, integral=True),
        )
        for _ in range(max(1, nresults))
    ]


# --------------------------------------------------------------------------
# Linear algebra and structure
# --------------------------------------------------------------------------


@handler("norm")
@handler("dot")
@handler("trace")
def _scalar_real(args, nresults):
    return [VarType.scalar(Intrinsic.REAL)]


@handler("fliplr")
@handler("flipud")
def _flip(args, nresults):
    return [args[0].vt()]


@handler("diag")
def _diag(args, nresults):
    base = args[0].vt()
    return [VarType(base.intrinsic, Shape.unknown(), base.range)]


@handler("kron")
def _kron(args, nresults):
    a, b = args[0].vt(), args[1].vt()
    dims = (
        dim_mul(a.shape.extent(1), b.shape.extent(1)),
        dim_mul(a.shape.extent(2), b.shape.extent(2)),
    )
    return [
        VarType(
            a.intrinsic.join(b.intrinsic),
            Shape(dims, exact=a.shape.exact and b.shape.exact),
            Interval.top(),
        )
    ]


# --------------------------------------------------------------------------
# Strings / misc
# --------------------------------------------------------------------------


@handler("num2str")
@handler("int2str")
def _tostring(args, nresults):
    return [
        VarType(
            Intrinsic.BYTE,
            Shape((ConstDim(1), fresh_dim()), exact=False),
            Interval(0.0, 255.0, integral=True),
        )
    ]


@handler("toc")
def _toc(args, nresults):
    return [VarType.scalar(Intrinsic.REAL, Interval.nonnegative())]
