"""Value-range analysis domain: closed intervals with an integrality bit.

MAGICA infers a value range ν(w) for each variable (paper §3.1).  The
reproduction uses ranges for the same things the paper does:

* proving an operand *scalar-and-positive-integral* where subscript
  legality matters;
* proving subscripts stay within an array's extents (so ``subsasgn``
  does not expand storage and shape equivalence is preserved);
* refining intrinsic types (integral interval ⇒ INTEGER).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Interval:
    """[lo, hi] over the extended reals; ``integral`` = all values ∈ ℤ."""

    lo: float = -math.inf
    hi: float = math.inf
    integral: bool = False

    # -- constructors --------------------------------------------------

    @staticmethod
    def exact(value: float) -> "Interval":
        return Interval(value, value, integral=float(value).is_integer())

    @staticmethod
    def top() -> "Interval":
        return Interval()

    @staticmethod
    def nonnegative() -> "Interval":
        return Interval(0.0, math.inf)

    @staticmethod
    def bounded(lo: float, hi: float, integral: bool = False) -> "Interval":
        return Interval(lo, hi, integral)

    # -- queries ---------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        return self.lo == self.hi and math.isfinite(self.lo)

    @property
    def exact_value(self) -> float:
        assert self.is_exact
        return self.lo

    @property
    def is_positive(self) -> bool:
        return self.lo > 0

    @property
    def is_nonnegative(self) -> bool:
        return self.lo >= 0

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def definitely_le(self, other: "Interval") -> bool:
        return self.hi <= other.lo

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.integral and other.integral,
        )

    def widen(self, previous: "Interval") -> "Interval":
        """Standard interval widening against the previous iterate."""
        lo = self.lo if self.lo >= previous.lo else -math.inf
        hi = self.hi if self.hi <= previous.hi else math.inf
        return Interval(lo, hi, self.integral and previous.integral)

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(
            self.lo + other.lo,
            self.hi + other.hi,
            self.integral and other.integral,
        )

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(
            self.lo - other.hi,
            self.hi - other.lo,
            self.integral and other.integral,
        )

    def __mul__(self, other: "Interval") -> "Interval":
        candidates = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        finite = [c for c in candidates if not math.isnan(c)]
        if not finite:
            return Interval.top()
        return Interval(
            min(finite), max(finite), self.integral and other.integral
        )

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo, self.integral)

    def divide(self, other: "Interval") -> "Interval":
        if other.contains(0.0):
            return Interval.top()
        candidates = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        finite = [c for c in candidates if not math.isnan(c)]
        return Interval(min(finite), max(finite), False)

    def floor(self) -> "Interval":
        return Interval(
            math.floor(self.lo) if math.isfinite(self.lo) else self.lo,
            math.floor(self.hi) if math.isfinite(self.hi) else self.hi,
            True,
        )

    def absolute(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi), self.integral)
