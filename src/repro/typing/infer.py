"""The type/shape inference engine (the paper's MAGICA stand-in, §3.1).

Forward abstract interpretation over SSA IR to a fixed point.  Per SSA
name the engine infers a :class:`VarType` — intrinsic type, (symbolic)
shape tuple, and value range.  φ nodes join; loop-carried ranges are
widened after a few iterations so the fixpoint terminates.

The symbolic-equivalence-reuse behaviour of MAGICA [18] falls out of
two decisions: shape extents name the SSA variables they depend on
(:class:`ValueDim`), and elementwise operators *reuse the operand's
shape object*, so two arrays with the same symbolic pedigree compare
structurally equal — exactly what Phase 2's Relation 1 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import IRFunction
from repro.ir.instr import (
    Const,
    ELEMENTWISE_BINARY,
    Instr,
    MATRIX_BINARY,
    Operand,
    StrConst,
    Var,
)
from repro.typing.builtins_sigs import ArgView, lookup_handler
from repro.typing.intrinsic import (
    Intrinsic,
    arithmetic_result,
    comparison_result,
    division_result,
    intrinsic_of_literal,
)
from repro.typing.ranges import Interval
from repro.typing.shape import (
    ConstDim,
    Shape,
    dim_max,
    dim_rangelen,
    fresh_dim,
    pick_better_shape,
)
from repro.typing.types import VarType

_WIDEN_AFTER = 4
_MAX_PASSES = 40


def type_of_literal(value: complex) -> VarType:
    rng = (
        Interval.exact(value.real)
        if value.imag == 0
        else Interval.top()
    )
    return VarType(intrinsic_of_literal(value), Shape.scalar(), rng)


def _effective_intrinsic(vartype: VarType) -> Intrinsic:
    """Refine an intrinsic with value-range knowledge.

    Writing the literal ``1`` into a BOOLEAN array keeps it BOOLEAN
    (paper Example 2 relies on exactly this: eye(x, y) stays BOOLEAN
    through the subsasgn).
    """
    rng = vartype.range
    if vartype.intrinsic in (Intrinsic.INTEGER, Intrinsic.REAL):
        if rng.integral and rng.lo >= 0.0 and rng.hi <= 1.0:
            return Intrinsic.BOOLEAN
        if rng.integral and rng.lo >= 0.0 and rng.hi <= 255.0:
            return Intrinsic.BYTE
        if rng.integral and vartype.intrinsic is Intrinsic.REAL:
            return Intrinsic.INTEGER
    return vartype.intrinsic


def elementwise_shape(a: VarType, b: VarType) -> Shape:
    """Result shape of an elementwise binary op (paper §2.3.1 rules)."""
    if a.is_scalar and b.is_scalar:
        return Shape.scalar()
    if a.is_scalar:
        return b.shape
    if b.is_scalar:
        return a.shape
    if a.shape == b.shape:
        return a.shape
    # Legal MATLAB guarantees the operand shapes agree at run time;
    # keep the more informative description.
    return pick_better_shape(a.shape, b.shape)


@dataclass(slots=True)
class TypeEnvironment:
    """Inference results for one function."""

    types: dict[str, VarType] = field(default_factory=dict)

    def of(self, name: str) -> VarType:
        return self.types.get(name, VarType.unknown())

    def of_operand(self, operand: Operand) -> VarType:
        if isinstance(operand, Const):
            return type_of_literal(operand.value)
        if isinstance(operand, StrConst):
            return VarType(
                Intrinsic.BYTE,
                Shape.matrix(1, len(operand.value)),
                Interval(0.0, 255.0, integral=True),
            )
        return self.of(operand.name)

    def __contains__(self, name: str) -> bool:
        return name in self.types


class TypeInference:
    def __init__(self, func: IRFunction):
        self._func = func
        self._env = TypeEnvironment()
        self._change_counts: dict[str, int] = {}
        self._fresh_cache: dict = {}

    def run(self) -> TypeEnvironment:
        for param in self._func.params:
            self._env.types[param] = VarType.unknown()
        order = self._func.block_order()
        for _ in range(_MAX_PASSES):
            changed = False
            for bid in order:
                for instr in self._func.blocks[bid].instrs:
                    if self._transfer(instr):
                        changed = True
            if not changed:
                break
        return self._env

    # ------------------------------------------------------------------

    def _update(self, name: str, new: VarType) -> bool:
        old = self._env.types.get(name)
        if old is not None:
            count = self._change_counts.get(name, 0)
            if new != old:
                if count >= _WIDEN_AFTER:
                    from repro.typing.shape import set_fresh_context

                    set_fresh_context(self._fresh_cache, ("widen", name))
                    try:
                        new = self._widen(old, new)
                    finally:
                        set_fresh_context(None)
            merged = old.join(new) if new != old else old
            if merged == old:
                return False
            self._change_counts[name] = count + 1
            self._env.types[name] = merged
            return True
        self._env.types[name] = new
        self._change_counts[name] = 0
        return True

    def _widen(self, old: VarType, new: VarType) -> VarType:
        widened_range = new.range.widen(old.range)
        shape = new.shape
        if shape != old.shape:
            if shape.rank == old.shape.rank:
                shape = Shape(
                    tuple(fresh_dim() for _ in shape.dims),
                    exact=False,
                    rank_exact=shape.rank_exact and old.shape.rank_exact,
                )
            else:
                shape = Shape.unknown()
        return VarType(new.intrinsic, shape, widened_range)

    def _transfer(self, instr: Instr) -> bool:
        from repro.typing.shape import set_fresh_context

        set_fresh_context(self._fresh_cache, id(instr))
        try:
            results = self._infer_instr(instr)
        finally:
            set_fresh_context(None)
        changed = False
        for name, vartype in zip(instr.results, results):
            if self._update(name, vartype):
                changed = True
        return changed

    # -- per-op inference ----------------------------------------------

    def _infer_instr(self, instr: Instr) -> list[VarType]:
        op = instr.op
        env = self._env
        if not instr.results:
            return []
        if op == "phi":
            known = [
                env.of_operand(a)
                for a in instr.args
                if not (isinstance(a, Var) and a.name not in env)
            ]
            if not known:
                return [VarType.unknown()]
            result = known[0]
            for other in known[1:]:
                result = result.join(other)
            return [result]
        if op in ("const", "copy"):
            return [env.of_operand(instr.args[0])]
        if op == "undef":
            return [VarType.unknown()]
        if op in ELEMENTWISE_BINARY:
            return [self._elementwise_binary(instr)]
        if op in MATRIX_BINARY:
            return [self._matrix_binary(instr)]
        if op == "neg":
            base = env.of_operand(instr.args[0])
            return [
                VarType(
                    arithmetic_result(base.intrinsic, Intrinsic.INTEGER),
                    base.shape,
                    -base.range,
                )
            ]
        if op == "not":
            base = env.of_operand(instr.args[0])
            return [
                VarType(
                    Intrinsic.BOOLEAN,
                    base.shape,
                    Interval.bounded(0.0, 1.0, integral=True),
                )
            ]
        if op in ("transpose", "ctranspose"):
            base = env.of_operand(instr.args[0])
            return [VarType(base.intrinsic, base.shape.transposed(), base.range)]
        if op == "range":
            return [self._range_op(instr)]
        if op == "forindex":
            return [self._forindex_op(instr)]
        if op == "subsref":
            return [self._subsref(instr)]
        if op == "subsasgn":
            return [self._subsasgn(instr)]
        if op == "horzcat":
            return [self._concat(instr, axis=2)]
        if op == "vertcat":
            return [self._concat(instr, axis=1)]
        if op == "empty":
            return [VarType(Intrinsic.REAL, Shape.empty(), Interval.top())]
        if instr.is_call:
            return self._call(instr)
        return [VarType.unknown() for _ in instr.results]

    def _elementwise_binary(self, instr: Instr) -> VarType:
        env = self._env
        a = env.of_operand(instr.args[0])
        b = env.of_operand(instr.args[1])
        shape = elementwise_shape(a, b)
        op = instr.op
        if op in ("lt", "le", "gt", "ge", "eq", "ne", "and", "or"):
            return VarType(
                comparison_result(a.intrinsic, b.intrinsic),
                shape,
                Interval.bounded(0.0, 1.0, integral=True),
            )
        if op == "add":
            return VarType(
                arithmetic_result(a.intrinsic, b.intrinsic),
                shape,
                a.range + b.range,
            )
        if op == "sub":
            return VarType(
                arithmetic_result(a.intrinsic, b.intrinsic),
                shape,
                a.range - b.range,
            )
        if op == "elmul":
            rng = a.range * b.range
            if self._is_square(instr):
                # x .* x is never negative (MAGICA-style refinement,
                # needed so sqrt(dx*dx + soft) stays REAL)
                rng = Interval.bounded(
                    max(0.0, rng.lo), rng.hi, integral=rng.integral
                )
            return VarType(
                arithmetic_result(a.intrinsic, b.intrinsic),
                shape,
                rng,
            )
        if op in ("eldiv", "elldiv"):
            num, den = (a, b) if op == "eldiv" else (b, a)
            return VarType(
                division_result(a.intrinsic, b.intrinsic),
                shape,
                num.range.divide(den.range),
            )
        if op == "elpow":
            intrinsic = division_result(a.intrinsic, b.intrinsic)
            if (
                a.intrinsic is not Intrinsic.COMPLEX
                and b.range.integral
                and a.range.is_nonnegative
            ):
                intrinsic = Intrinsic.REAL
            elif a.intrinsic is not Intrinsic.COMPLEX and not a.range.is_nonnegative:
                # negative base to fractional power may go complex
                intrinsic = (
                    Intrinsic.REAL if b.range.integral else Intrinsic.COMPLEX
                )
            return VarType(intrinsic, shape, Interval.top())
        raise AssertionError(op)

    def _matrix_binary(self, instr: Instr) -> VarType:
        env = self._env
        a = env.of_operand(instr.args[0])
        b = env.of_operand(instr.args[1])
        op = instr.op
        if a.is_scalar or b.is_scalar:
            shape = elementwise_shape(a, b)
        elif op == "mul":
            shape = Shape(
                (a.shape.extent(1), b.shape.extent(2)),
                exact=a.shape.exact and b.shape.exact,
            )
        elif op == "div":  # A/B ~ A·B⁻¹ : (m,n)/(p,n) → (m,p)
            shape = Shape(
                (a.shape.extent(1), b.shape.extent(1)),
                exact=a.shape.exact and b.shape.exact,
            )
        elif op == "ldiv":  # A\B : (m,n)\(m,p) → (n,p)
            shape = Shape(
                (a.shape.extent(2), b.shape.extent(2)),
                exact=a.shape.exact and b.shape.exact,
            )
        else:  # pow with matrix base
            shape = a.shape
        if op == "mul":
            intrinsic = arithmetic_result(a.intrinsic, b.intrinsic)
            rng = (
                a.range * b.range
                if a.is_scalar or b.is_scalar
                else Interval.top()
            )
            if self._is_square(instr):
                rng = Interval.bounded(
                    max(0.0, rng.lo), rng.hi, integral=rng.integral
                )
            return VarType(intrinsic, shape, rng)
        if op in ("div", "ldiv"):
            return VarType(
                division_result(a.intrinsic, b.intrinsic),
                shape,
                (
                    a.range.divide(b.range)
                    if (a.is_scalar or b.is_scalar) and op == "div"
                    else Interval.top()
                ),
            )
        # pow
        intrinsic = division_result(a.intrinsic, b.intrinsic)
        if (
            a.intrinsic is not Intrinsic.COMPLEX
            and b.range.integral
        ):
            intrinsic = Intrinsic.REAL
        return VarType(intrinsic, shape, Interval.top())

    def _range_op(self, instr: Instr) -> VarType:
        env = self._env
        start = env.of_operand(instr.args[0])
        step = env.of_operand(instr.args[1])
        stop = env.of_operand(instr.args[2])

        # All-constant bounds (integral or not): the length is exact.
        if (
            start.range.is_exact
            and step.range.is_exact
            and stop.range.is_exact
            and step.range.exact_value != 0
        ):
            import math

            span = stop.range.exact_value - start.range.exact_value
            n = int(math.floor(span / step.range.exact_value + 1e-10)) + 1
            length: "ConstDim | object" = ConstDim(max(0, n))
            integral = start.range.integral and step.range.integral
            lo = min(start.range.lo, stop.range.lo)
            hi = max(start.range.hi, stop.range.hi)
            return VarType(
                Intrinsic.INTEGER if integral else Intrinsic.REAL,
                Shape.row_vector(length),
                Interval.bounded(lo, hi, integral=integral),
            )

        def as_dim(operand, vartype):
            if isinstance(operand, Const) and operand.is_integer:
                return ConstDim(int(operand.value.real))
            if vartype.range.is_exact and vartype.range.integral:
                return ConstDim(int(vartype.range.exact_value))
            if isinstance(operand, Var):
                from repro.typing.shape import ValueDim

                return ValueDim(operand.name)
            return fresh_dim()

        length = dim_rangelen(
            as_dim(instr.args[0], start),
            as_dim(instr.args[1], step),
            as_dim(instr.args[2], stop),
        )
        integral = (
            start.range.integral and step.range.integral
        )
        lo = min(start.range.lo, stop.range.lo)
        hi = max(start.range.hi, stop.range.hi)
        intrinsic = Intrinsic.INTEGER if integral else Intrinsic.REAL
        return VarType(
            intrinsic,
            Shape.row_vector(length),
            Interval.bounded(lo, hi, integral=integral),
        )

    @staticmethod
    def _is_square(instr: Instr) -> bool:
        a, b = instr.args[0], instr.args[1]
        return (
            isinstance(a, Var)
            and isinstance(b, Var)
            and a.name == b.name
        )

    def _forindex_op(self, instr: Instr) -> VarType:
        """Loop variable of ``for v = start:step:stop``: its value stays
        within [min(start, stop), max(start, stop)]."""
        env = self._env
        start = env.of_operand(instr.args[0])
        step = env.of_operand(instr.args[1])
        stop = env.of_operand(instr.args[2])
        lo = min(start.range.lo, stop.range.lo)
        hi = max(start.range.hi, stop.range.hi)
        integral = start.range.integral and step.range.integral
        intrinsic = Intrinsic.INTEGER if integral else Intrinsic.REAL
        # ascending loops are bounded above by their stop variable
        sym_hi = None
        step_pos = step.range.is_positive
        if step_pos and isinstance(instr.args[2], Var):
            sym_hi = instr.args[2].name
        return VarType(
            intrinsic,
            Shape.scalar(),
            Interval.bounded(lo, hi, integral=integral),
            sym_hi,
        )

    def _subsref(self, instr: Instr) -> VarType:
        env = self._env
        base = env.of_operand(instr.args[0])
        subs = instr.args[1:]
        sub_types = [
            None if isinstance(s, StrConst) else env.of_operand(s)
            for s in subs
        ]
        # All-scalar subscripts select one element.
        if all(
            st is not None and st.is_scalar for st in sub_types
        ):
            return VarType(base.intrinsic, Shape.scalar(), base.range)
        if len(subs) == 1:
            sub = subs[0]
            if isinstance(sub, StrConst) and sub.value == ":":
                # a(:) — column vector of all elements
                return VarType(
                    base.intrinsic,
                    Shape.column_vector(base.shape.numel()),
                    base.range,
                )
            st = sub_types[0]
            assert st is not None
            # a(v): result has v's shape (MATLAB rule for non-vector a
            # differs in orientation only; sizes agree).
            return VarType(base.intrinsic, st.shape, base.range)
        dims = []
        exact = base.shape.exact
        for position, (sub, st) in enumerate(
            zip(subs, sub_types), start=1
        ):
            if isinstance(sub, StrConst) and sub.value == ":":
                dims.append(base.shape.extent(position))
            elif st is not None and st.is_scalar:
                dims.append(ConstDim(1))
            elif st is not None:
                dims.append(st.shape.numel())
                exact = exact and st.shape.exact
            else:
                dims.append(fresh_dim())
                exact = False
        return VarType(
            base.intrinsic, Shape(tuple(dims), exact=exact), base.range
        )

    def _subsasgn(self, instr: Instr) -> VarType:
        """b = subsasgn(a, r, l1..lm): per-dim growth via max (§2.3.3)."""
        env = self._env
        base = env.of_operand(instr.args[0])
        rhs = env.of_operand(instr.args[1])
        subs = instr.args[2:]
        intrinsic = base.intrinsic.join(_effective_intrinsic(rhs))
        dims = list(base.shape.dims)
        exact = base.shape.exact
        grew = False
        for position, sub in enumerate(subs, start=1):
            if isinstance(sub, StrConst) and sub.value == ":":
                continue  # ':' never expands
            st = env.of_operand(sub)
            extent = base.shape.extent(position)
            hi = st.range.hi
            extent_floor = self._extent_lower_bound(extent)
            if (
                extent_floor is not None
                and hi <= extent_floor
                and st.range.is_positive
            ):
                continue  # provably in bounds: no growth in this dim
            from repro.typing.shape import ValueDim

            if (
                isinstance(extent, ValueDim)
                and st.sym_hi == extent.var
                and st.range.is_positive
            ):
                continue  # loop index bounded by the extent's variable
            import math

            index_dim = (
                ConstDim(int(hi))
                if st.range.integral and math.isfinite(hi) and hi > 0
                and hi == int(hi)
                else fresh_dim()
            )
            while len(dims) < position:
                dims.append(ConstDim(1))
            new_extent = dim_max(dims[position - 1], index_dim)
            if new_extent != dims[position - 1]:
                grew = True
                exact = False
            dims[position - 1] = new_extent
        shape = Shape(
            tuple(dims), exact=exact and not grew,
            rank_exact=base.shape.rank_exact,
        )
        return VarType(intrinsic, shape, base.range.join(rhs.range))

    def _extent_lower_bound(self, extent) -> float | None:
        """A provable lower bound on an extent expression, if any."""
        from repro.typing.shape import ValueDim

        if isinstance(extent, ConstDim):
            return float(extent.value)
        if isinstance(extent, ValueDim):
            rng = self._env.of(extent.var).range
            if rng.lo > float("-inf"):
                import math

                return float(math.floor(rng.lo))
        return None

    def _concat(self, instr: Instr, axis: int) -> VarType:
        env = self._env
        parts = [env.of_operand(a) for a in instr.args]
        intrinsic = parts[0].intrinsic
        rng = parts[0].range
        for p in parts[1:]:
            intrinsic = intrinsic.join(p.intrinsic)
            rng = rng.join(p.range)
        intrinsic = Intrinsic(
            max(intrinsic.value, Intrinsic.INTEGER.value)
        ) if intrinsic is not Intrinsic.COMPLEX else intrinsic
        from repro.typing.shape import dim_add

        if axis == 2:
            rows = parts[0].shape.extent(1)
            cols = parts[0].shape.extent(2)
            for p in parts[1:]:
                cols = dim_add(cols, p.shape.extent(2))
        else:
            cols = parts[0].shape.extent(2)
            rows = parts[0].shape.extent(1)
            for p in parts[1:]:
                rows = dim_add(rows, p.shape.extent(1))
        exact = all(p.shape.exact for p in parts)
        return VarType(intrinsic, Shape((rows, cols), exact=exact), rng)

    def _call(self, instr: Instr) -> list[VarType]:
        env = self._env
        name = instr.callee
        views = [
            ArgView(
                a,
                None
                if isinstance(a, StrConst)
                else env.of_operand(a),
            )
            for a in instr.args
        ]
        fn = lookup_handler(name)
        nresults = len(instr.results)
        if fn is None:
            return [VarType.unknown() for _ in range(nresults)]
        out = fn(views, nresults)
        while len(out) < nresults:
            out.append(VarType.unknown())
        return out[:nresults]


def infer_types(func: IRFunction) -> TypeEnvironment:
    """Run inference on an SSA function, returning name → VarType."""
    return TypeInference(func).run()
