"""Intrinsic types and their lattice (paper §3.1, footnote 8).

MAGICA's intrinsic types are BOOLEAN, BYTE, INTEGER, REAL, COMPLEX,
NONREAL and the abstract illegal type ILLEGAL.  For inference we order
them in a chain BOOLEAN ⊑ BYTE ⊑ INTEGER ⊑ REAL ⊑ COMPLEX — each type's
value set embeds in the next — with NONREAL sitting between REAL and
COMPLEX as "any non-complex" and ILLEGAL as the error element.  The join
of two types is the least type whose value set contains both.

``storage_size`` is |τ(u)| in the paper: the byte size of one scalar of
that type in the C translation.  Relation 1 deliberately requires
*identical* intrinsic types on both sides, so these sizes are only ever
compared within one type.
"""

from __future__ import annotations

from enum import IntEnum


class Intrinsic(IntEnum):
    """Chain position doubles as the lattice height."""

    BOOLEAN = 1
    BYTE = 2
    INTEGER = 3
    REAL = 4
    NONREAL = 5   # abstract: any of BOOLEAN..REAL
    COMPLEX = 6
    ILLEGAL = 7   # intrinsic type error (lattice top)

    def join(self, other: "Intrinsic") -> "Intrinsic":
        return Intrinsic(max(self.value, other.value))

    @property
    def is_concrete(self) -> bool:
        return self not in (Intrinsic.NONREAL, Intrinsic.ILLEGAL)


#: |τ| — bytes per scalar in the generated C (paper §3.2).
STORAGE_SIZE: dict[Intrinsic, int] = {
    Intrinsic.BOOLEAN: 4,   # mapped to C `int`
    Intrinsic.BYTE: 1,      # C `char`
    Intrinsic.INTEGER: 4,   # C `int`
    Intrinsic.REAL: 8,      # C `double`
    Intrinsic.NONREAL: 8,   # conservatively sized as REAL
    Intrinsic.COMPLEX: 16,  # two C `double`s
    Intrinsic.ILLEGAL: 0,
}


def scalar_size(intrinsic: Intrinsic) -> int:
    return STORAGE_SIZE[intrinsic]


def arithmetic_result(a: Intrinsic, b: Intrinsic) -> Intrinsic:
    """Intrinsic type of ``a ⊕ b`` for +, -, .*, * and friends.

    MATLAB arithmetic never yields BOOLEAN/BYTE results (logicals are
    promoted), so the result is at least INTEGER.
    """
    joined = a.join(b)
    if joined is Intrinsic.ILLEGAL:
        return joined
    return Intrinsic(max(joined.value, Intrinsic.INTEGER.value))


def division_result(a: Intrinsic, b: Intrinsic) -> Intrinsic:
    """Division generally leaves the integers (3/2 = 1.5)."""
    joined = arithmetic_result(a, b)
    if joined is Intrinsic.ILLEGAL:
        return joined
    return Intrinsic(max(joined.value, Intrinsic.REAL.value))


def comparison_result(a: Intrinsic, b: Intrinsic) -> Intrinsic:
    if Intrinsic.ILLEGAL in (a, b):
        return Intrinsic.ILLEGAL
    return Intrinsic.BOOLEAN


def intrinsic_of_literal(value: complex) -> Intrinsic:
    if value.imag != 0:
        return Intrinsic.COMPLEX
    real = value.real
    if real in (0.0, 1.0):
        # still INTEGER, not BOOLEAN: MATLAB literals are double
        return Intrinsic.INTEGER
    if real == int(real) and abs(real) < 2**31:
        return Intrinsic.INTEGER
    return Intrinsic.REAL
