"""Content-addressed, disk-backed compilation artifact cache.

Layout (default root ``.repro-cache/``)::

    objects/<fingerprint>/
        plan        pickled CompilationResult (IR, env, allocation plan)
        report      human-readable Table-2-style report
        c_source    the C translation
        meta.json   fingerprint, pipeline version, payload checksums
    quarantine/<fingerprint>-<n>/   corrupted entries, kept for autopsy
    bin/<c-hash>/program    compiled binaries (see repro.backend.cc)

Writes are atomic: each entry is materialized in a temporary sibling
directory and ``os.rename``\\ d into place, so concurrent writers of
the same fingerprint race benignly (one rename wins, the content is
identical by construction).  A small in-process LRU keeps hot results
unpickled.

Integrity: ``meta.json`` records a SHA-256 per payload file.  A load
whose payload bytes fail their checksum (torn write, bit rot) — or
fail to unpickle — **quarantines** the entry: it is moved aside into
``quarantine/`` (never re-served, preserved for inspection), counted
on :attr:`CacheStats.quarantined`, reported through the
``on_quarantine`` hook, and the caller's recompile-and-store
transparently re-derives a clean entry.  Metadata-level problems
(missing/unreadable meta, pipeline version skew) are ordinary
repairable misses, removed in place.  A store that fails with
``OSError`` (e.g. ``ENOSPC``) degrades to memory-only: the result
stays servable from the in-process LRU and the disk entry is simply
absent.

Fault injection: the optional ``injector``
(:class:`repro.faults.FaultInjector`) mangles payload bytes or raises
``ENOSPC`` at the ``cache.write`` site, which is how the chaos suite
proves the checksum/quarantine machinery actually holds.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.compiler.pipeline import PIPELINE_VERSION
from repro.service.fingerprint import (
    canonical_options,
    fingerprint_request,
    fingerprint_text,
)

DEFAULT_CACHE_ROOT = ".repro-cache"

_PLAN = "plan"
_REPORT = "report"
_C_SOURCE = "c_source"
_META = "meta.json"

#: payload files covered by the meta.json checksums.
_CHECKSUMMED = (_PLAN, _REPORT, _C_SOURCE)

#: injection-site name consulted on every payload write.
_WRITE_SITE = "cache.write"


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    stores: int = 0
    invalidations: int = 0
    repairs: int = 0
    quarantined: int = 0
    write_errors: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "repairs": self.repairs,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
        }


@dataclass(slots=True)
class _Entry:
    result: object
    meta: dict = field(default_factory=dict)


class _CorruptEntry(ValueError):
    """A payload file failed its checksum or would not unpickle."""


class ArtifactCache:
    """Disk + in-process LRU store keyed by request fingerprint."""

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_ROOT,
        max_memory_entries: int = 64,
        pipeline_version: str | None = None,
        injector=None,
        on_quarantine=None,
    ) -> None:
        self.root = Path(root)
        self.pipeline_version = (
            pipeline_version
            if pipeline_version is not None
            else PIPELINE_VERSION
        )
        self.max_memory_entries = max_memory_entries
        self.stats = CacheStats()
        #: optional :class:`repro.faults.FaultInjector` for chaos runs.
        self.injector = injector
        #: optional callback ``fn(fingerprint)`` on each quarantine.
        self.on_quarantine = on_quarantine
        self._memory: OrderedDict[str, _Entry] = OrderedDict()
        # The server's worker threads share one cache; the in-process
        # LRU (ordered-dict reordering + eviction) needs a lock.  Disk
        # writes stay lock-free — they are atomic renames by design.
        self._lock = threading.RLock()

    # -- keys and paths --------------------------------------------------

    def fingerprint(self, sources, entry=None, options=None) -> str:
        return fingerprint_request(
            sources, entry, options, pipeline_version=self.pipeline_version
        )

    def object_dir(self, fingerprint: str) -> Path:
        return self.root / "objects" / fingerprint

    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- pipeline-facing interface ---------------------------------------

    def get_program(self, sources, entry, options, tracer=None):
        """Cache lookup used by ``pipeline.compile_program``."""
        fp = self.fingerprint(sources, entry, options)
        result = self.load(fp)
        if tracer is not None:
            tracer.event("cache", hit=result is not None, fingerprint=fp)
        return result

    def put_program(self, sources, entry, options, result, tracer=None):
        fp = self.fingerprint(sources, entry, options)
        meta = {
            "entry": entry,
            "options": canonical_options(options),
            "source_files": sorted(sources),
        }
        self.store(fp, result, meta)
        if tracer is not None:
            tracer.event("cache_store", fingerprint=fp)
        return fp

    # -- load / store ----------------------------------------------------

    def load(self, fingerprint: str):
        """Return the cached CompilationResult, or None on miss.

        A corrupted disk entry (checksum mismatch, bad pickle) is
        quarantined; metadata problems are removed in place.  Either
        way the load reports a miss so the caller's recompile-and-store
        re-derives a clean entry.
        """
        with self._lock:
            entry = self._memory.get(fingerprint)
            if entry is not None:
                self._memory.move_to_end(fingerprint)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return entry.result
        directory = self.object_dir(fingerprint)
        plan_path = directory / _PLAN
        meta_path = directory / _META
        if not plan_path.is_file():
            self.stats.misses += 1
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("pipeline_version") != self.pipeline_version:
                raise ValueError("pipeline version mismatch")
        except Exception:
            # Unreadable/absent meta or version skew: not corruption,
            # just staleness — drop the entry so the caller's
            # recompile-and-store repairs it.
            self._remove_entry(directory)
            self.stats.repairs += 1
            self.stats.misses += 1
            return None
        try:
            plan_bytes = plan_path.read_bytes()
            self._verify_checksums(directory, meta, plan_bytes)
            result = pickle.loads(plan_bytes)
        except Exception:
            # Payload-level corruption (torn write, flipped bytes,
            # truncated pickle): never serve it, never silently lose
            # the evidence — quarantine, then report a miss.
            self._quarantine(fingerprint, directory)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._remember(fingerprint, _Entry(result=result, meta=meta))
        return result

    @staticmethod
    def _verify_checksums(
        directory: Path, meta: dict, plan_bytes: bytes
    ) -> None:
        """Check every recorded payload digest; raises on mismatch.

        Entries written before checksums existed (no ``checksums`` in
        meta) still load — their plan payload is vetted by the
        unpickle itself.
        """
        checksums = meta.get("checksums")
        if not isinstance(checksums, dict):
            return
        for name, expected in checksums.items():
            if name == _PLAN:
                data = plan_bytes
            else:
                data = (directory / name).read_bytes()
            if hashlib.sha256(data).hexdigest() != expected:
                raise _CorruptEntry(f"checksum mismatch on {name}")

    def store(self, fingerprint: str, result, meta: dict | None = None):
        """Atomically write a full entry (plan, report, C, meta).

        The meta records a SHA-256 per payload, computed *before* the
        bytes reach the filesystem, so any later divergence — however
        it happened — is caught by :meth:`load`.  An ``OSError`` from
        the filesystem (disk full) downgrades to a memory-only store.
        """
        from repro.compiler.reports import full_report

        payloads = {
            _PLAN: pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
            _REPORT: full_report(result).encode("utf-8"),
            _C_SOURCE: result.generate_c().encode("utf-8"),
        }
        directory = self.object_dir(fingerprint)
        full_meta = {
            "fingerprint": fingerprint,
            "pipeline_version": self.pipeline_version,
            "created": time.time(),
            "checksums": {
                name: hashlib.sha256(data).hexdigest()
                for name, data in payloads.items()
            },
            **(meta or {}),
        }
        try:
            directory.parent.mkdir(parents=True, exist_ok=True)
            tmp = Path(
                tempfile.mkdtemp(
                    prefix=f".tmp-{fingerprint[:12]}-", dir=directory.parent
                )
            )
        except OSError:
            self.stats.write_errors += 1
            tmp = None
        if tmp is not None:
            try:
                try:
                    for name, data in payloads.items():
                        (tmp / name).write_bytes(self._faulty(data))
                    (tmp / _META).write_bytes(
                        self._faulty(
                            json.dumps(full_meta, indent=2).encode("utf-8")
                        )
                    )
                    self._rename_entry(tmp, directory)
                except OSError:
                    # Disk full (real or injected): the entry stays
                    # memory-only; a later store retries the disk.
                    self.stats.write_errors += 1
            finally:
                if tmp.exists():
                    shutil.rmtree(tmp, ignore_errors=True)
        self.stats.stores += 1
        self._remember(
            fingerprint, _Entry(result=result, meta=full_meta)
        )
        return directory

    def _faulty(self, data: bytes) -> bytes:
        """Route payload bytes through the fault injector, if any."""
        if self.injector is None:
            return data
        return self.injector.mangle(_WRITE_SITE, data)

    # -- side artifacts (bench records, …) -------------------------------

    def load_extra(self, fingerprint: str, name: str) -> bytes | None:
        path = self.object_dir(fingerprint) / name
        try:
            return path.read_bytes()
        except OSError:
            return None

    def store_extra(self, fingerprint: str, name: str, data: bytes) -> None:
        """Atomic write of a side artifact next to an existing entry."""
        directory = self.object_dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".tmp-{name}-", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, directory / name)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- invalidation and quarantine -------------------------------------

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry (memory + disk); True if anything was removed."""
        with self._lock:
            removed = self._memory.pop(fingerprint, None) is not None
        directory = self.object_dir(fingerprint)
        if directory.exists():
            self._remove_entry(directory)
            removed = True
        if removed:
            self.stats.invalidations += 1
        return removed

    def clear(self) -> int:
        """Drop every entry; returns the number of disk entries removed."""
        with self._lock:
            self._memory.clear()
        objects = self.root / "objects"
        count = 0
        if objects.is_dir():
            for child in objects.iterdir():
                if child.is_dir():
                    shutil.rmtree(child, ignore_errors=True)
                    count += 1
        self.stats.invalidations += count
        return count

    def entries(self) -> list[str]:
        """Fingerprints currently on disk."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(
            child.name
            for child in objects.iterdir()
            if child.is_dir() and not child.name.startswith(".tmp-")
        )

    def quarantined_entries(self) -> list[str]:
        """Quarantine directory names (``<fingerprint>-<n>``)."""
        quarantine = self.quarantine_dir()
        if not quarantine.is_dir():
            return []
        return sorted(
            child.name for child in quarantine.iterdir() if child.is_dir()
        )

    def _quarantine(self, fingerprint: str, directory: Path) -> None:
        """Move a corrupt entry aside so it can never be served again."""
        with self._lock:
            self._memory.pop(fingerprint, None)
        quarantine = self.quarantine_dir()
        moved = False
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            for attempt in range(1000):
                dest = quarantine / f"{fingerprint}-{attempt}"
                try:
                    os.rename(directory, dest)
                    moved = True
                    break
                except FileExistsError:
                    continue
                except OSError:
                    break
        except OSError:
            pass
        if not moved:
            # Could not move it (cross-device, permissions): removal is
            # the fallback that still guarantees it is never served.
            self._remove_entry(directory)
        self.stats.quarantined += 1
        self.stats.repairs += 1
        if self.on_quarantine is not None:
            self.on_quarantine(fingerprint)

    # -- binary cache keys (used by repro.backend.cc) --------------------

    def binary_dir(self, c_source: str) -> Path:
        return self.root / "bin" / fingerprint_text(c_source)

    # -- internals -------------------------------------------------------

    def _remember(self, fingerprint: str, entry: _Entry) -> None:
        with self._lock:
            self._memory[fingerprint] = entry
            self._memory.move_to_end(fingerprint)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    @staticmethod
    def _rename_entry(tmp: Path, final: Path) -> None:
        try:
            os.rename(tmp, final)
        except OSError:
            # The entry appeared concurrently (or survives a previous
            # run).  Content is identical by construction — replace it
            # wholesale so a partially corrupted loser is repaired.
            shutil.rmtree(final, ignore_errors=True)
            try:
                os.rename(tmp, final)
            except OSError:
                pass  # lost the second race too; their copy is fine
    @staticmethod
    def _remove_entry(directory: Path) -> None:
        shutil.rmtree(directory, ignore_errors=True)
