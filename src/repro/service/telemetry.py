"""Pass-level telemetry for the compilation pipeline.

A :class:`Tracer` is threaded through ``pipeline.compile_program`` as
an optional injected dependency.  Each pipeline pass runs inside a
:meth:`Tracer.span`, which records wall time, the IR instruction count
after the pass, and any pass-specific details (interference-graph
size, colors, folded queries, …).  Cache hits and misses arrive as
:meth:`Tracer.event` records.  ``to_dict``/``to_json`` produce the
machine-readable form consumed by ``python -m repro stats``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(slots=True)
class PassRecord:
    """One pipeline pass execution."""

    name: str
    wall_seconds: float = 0.0
    instructions: int | None = None
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
        }
        if self.instructions is not None:
            out["instructions"] = self.instructions
        if self.details:
            out["details"] = dict(self.details)
        return out


class Tracer:
    """Collects pass spans and cache events for one or more compiles.

    Implements the same duck-typed interface as the pipeline's
    internal null tracer: ``span(name, func=None)`` and
    ``event(name, **details)``.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.passes: list[PassRecord] = []
        self.events: list[dict] = []
        self._started = time.time()

    # -- recording ------------------------------------------------------

    @contextmanager
    def span(self, name: str, func=None):
        record = PassRecord(name=name)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_seconds = time.perf_counter() - start
            if func is not None:
                record.instructions = sum(1 for _ in func.instructions())
            self.passes.append(record)

    def event(self, name: str, **details) -> None:
        self.events.append({"name": name, **details})

    # -- cache accounting ----------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(
            1
            for e in self.events
            if e["name"] == "cache" and e.get("hit")
        )

    @property
    def cache_misses(self) -> int:
        return sum(
            1
            for e in self.events
            if e["name"] == "cache" and not e.get("hit")
        )

    # -- serialization --------------------------------------------------

    @property
    def total_wall_seconds(self) -> float:
        return sum(p.wall_seconds for p in self.passes)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "started": self._started,
            "total_wall_seconds": self.total_wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "passes": [p.to_dict() for p in self.passes],
            "events": list(self.events),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def aggregate_passes(traces: list[dict]) -> list[dict]:
    """Merge per-compile traces into per-pass totals (calls, time, IR).

    Accepts ``Tracer.to_dict()`` payloads; preserves first-seen pass
    order, which for pipeline traces is the pipeline order.
    """
    order: list[str] = []
    totals: dict[str, dict] = {}
    for trace in traces:
        for record in trace.get("passes", ()):
            name = record["name"]
            if name not in totals:
                order.append(name)
                totals[name] = {
                    "name": name,
                    "calls": 0,
                    "wall_seconds": 0.0,
                    "instructions": None,
                }
            agg = totals[name]
            agg["calls"] += 1
            agg["wall_seconds"] += record.get("wall_seconds", 0.0)
            instrs = record.get("instructions")
            if instrs is not None:
                agg["instructions"] = (agg["instructions"] or 0) + instrs
    return [totals[name] for name in order]
