"""Parallel batch compilation driver.

``compile_many`` fans a list of :class:`CompileRequest`\\ s out over a
``ProcessPoolExecutor``:

* requests are fingerprinted first; duplicate fingerprints in the
  batch are **single-flighted** — one leader compiles, followers share
  its result and are marked ``deduped``;
* leaders are answered from the :class:`~repro.service.cache.
  ArtifactCache` when possible, so only true misses reach the pool;
* workers write their artifacts straight into the shared disk cache
  (atomic renames make the concurrent writes safe) and additionally
  consult it on entry, which single-flights racing workers across
  processes on a best-effort basis;
* any pool-level failure (fork refusal, broken pool, pickling issues)
  degrades gracefully to in-process serial compilation — the batch
  still completes, just without the parallelism.

Per-request compile errors are captured on the item (``error``), not
raised, so one broken program cannot sink a batch.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pickle import PicklingError

from repro.api.types import CompileRequest
from repro.compiler.pipeline import (
    PIPELINE_VERSION,
    compile_program,
)
from repro.service.fingerprint import fingerprint_request
from repro.service.telemetry import Tracer

#: Exception types that indicate the *pool* (not the compile) failed
#: and the batch should fall back to serial execution.
_POOL_FAILURES = (
    BrokenProcessPool,
    PicklingError,
    AttributeError,
    ImportError,
    OSError,
)


# The request type is the API facade's — one definition serves the
# CLI, this driver, and the server wire format.
__all__ = ["CompileRequest", "BatchItem", "BatchResult", "compile_many"]


@dataclass(slots=True)
class BatchItem:
    """Outcome for one request, in request order."""

    name: str
    fingerprint: str
    result: object = None
    cache_hit: bool = False
    deduped: bool = False
    wall_seconds: float = 0.0
    trace: dict | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "deduped": self.deduped,
            "wall_seconds": self.wall_seconds,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass(slots=True)
class BatchResult:
    items: list[BatchItem] = field(default_factory=list)
    executor: str = "serial"
    jobs: int = 1
    wall_seconds: float = 0.0

    def results(self) -> list:
        return [item.result for item in self.items]

    @property
    def cache_hits(self) -> int:
        return sum(1 for item in self.items if item.cache_hit)

    @property
    def errors(self) -> list[BatchItem]:
        return [item for item in self.items if item.error is not None]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit status for CLI callers: 1 if any item failed."""
        return 0 if self.ok else 1

    def error_summary(self) -> str:
        """One line per failed item, for stderr reporting."""
        lines = [
            f"  {item.name}: {item.error}" for item in self.errors
        ]
        header = (
            f"{len(lines)} of {len(self.items)} batch item(s) failed:"
        )
        return "\n".join([header, *lines])

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "items": [item.to_dict() for item in self.items],
        }


def effective_jobs(jobs: int | None, pending: int) -> int:
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, pending))


def parallel_map(func, items, jobs: int | None = None):
    """``map`` over a process pool, degrading to serial on pool failure.

    Returns ``(results, executor_label)``.  ``func`` must be a
    module-level (picklable) callable; exceptions raised by ``func``
    itself propagate — only pool-infrastructure failures trigger the
    serial fallback.
    """
    items = list(items)
    jobs = effective_jobs(jobs, len(items))
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items], "serial"
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(func, items)), "pool"
    except _POOL_FAILURES as exc:
        results = [func(item) for item in items]
        return results, f"serial (pool failed: {type(exc).__name__})"


def _compile_worker(payload: dict) -> dict:
    """Pool entry point: compile one request, artifacts into the cache.

    Runs in a worker process; must stay a module-level function so the
    executor can pickle it.
    """
    from repro.service.cache import ArtifactCache

    cache = None
    if payload.get("cache_root"):
        cache = ArtifactCache(
            payload["cache_root"],
            pipeline_version=payload.get(
                "pipeline_version", PIPELINE_VERSION
            ),
        )
    tracer = Tracer(label=payload.get("name", "")) if payload.get(
        "trace"
    ) else None
    start = time.perf_counter()
    out: dict = {"fingerprint": payload["fingerprint"]}
    try:
        out["result"] = compile_program(
            payload["sources"],
            payload["entry"],
            payload["options"],
            tracer=tracer,
            cache=cache,
        )
    except Exception as exc:  # captured per-item, not batch-fatal
        out["error"] = f"{type(exc).__name__}: {exc}"
    out["wall_seconds"] = time.perf_counter() - start
    if tracer is not None:
        out["trace"] = tracer.to_dict()
    return out


def compile_many(
    requests: list[CompileRequest],
    jobs: int | None = None,
    cache=None,
    trace: bool = False,
) -> BatchResult:
    """Compile a batch of requests, in parallel, through the cache."""
    start = time.perf_counter()
    items: list[BatchItem] = []
    leaders: dict[str, BatchItem] = {}
    pending: list[tuple[BatchItem, CompileRequest]] = []

    for index, request in enumerate(requests):
        if cache is not None:
            fp = cache.fingerprint(
                request.sources, request.entry, request.options
            )
        else:
            fp = fingerprint_request(
                request.sources, request.entry, request.options
            )
        item = BatchItem(
            name=request.name or f"request-{index}", fingerprint=fp
        )
        items.append(item)
        if fp in leaders:
            item.deduped = True  # single-flight: follow the leader
            continue
        leaders[fp] = item
        if cache is not None:
            cached = cache.load(fp)
            if cached is not None:
                item.result = cached
                item.cache_hit = True
                continue
        pending.append((item, request))

    executor = "cache"
    jobs = effective_jobs(jobs, len(pending)) if pending else 1
    if pending:
        payloads = [
            {
                "name": item.name,
                "fingerprint": item.fingerprint,
                "sources": request.sources,
                "entry": request.entry,
                "options": request.options,
                "cache_root": str(cache.root) if cache is not None else "",
                "pipeline_version": (
                    cache.pipeline_version
                    if cache is not None
                    else PIPELINE_VERSION
                ),
                "trace": trace,
            }
            for item, request in pending
        ]
        outcomes, executor = parallel_map(_compile_worker, payloads, jobs)
        for (item, _request), outcome in zip(pending, outcomes):
            item.result = outcome.get("result")
            item.error = outcome.get("error")
            item.wall_seconds = outcome["wall_seconds"]
            item.trace = outcome.get("trace")

    # Single-flight followers inherit their leader's outcome.
    for item in items:
        if item.deduped:
            leader = leaders[item.fingerprint]
            item.result = leader.result
            item.cache_hit = leader.cache_hit
            item.error = leader.error

    return BatchResult(
        items=items,
        executor=executor,
        jobs=jobs,
        wall_seconds=time.perf_counter() - start,
    )
