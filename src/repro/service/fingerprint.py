"""Stable content fingerprints for compilation requests.

A fingerprint is a SHA-256 over a canonical JSON encoding of
``(sources, entry, options, pipeline version)``.  Canonicalization is
what makes the cache deterministic:

* source text is normalized to ``\\n`` line endings (a CRLF checkout
  of the same M-file must hit the same entry);
* source files are sorted by name (dict insertion order is a loading
  accident, not program identity);
* options dataclasses are flattened to nested dicts and serialized
  with sorted keys, so two ``CompilerOptions`` that compare equal
  always hash equal.

The pipeline version is baked in so bumping
:data:`repro.compiler.pipeline.PIPELINE_VERSION` invalidates every
previously cached artifact at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum

from repro.compiler.pipeline import PIPELINE_VERSION, CompilerOptions
from repro.core.optionset import OptionSet


def normalize_source(text: str) -> str:
    """Normalize line endings so logically identical sources hash equal."""
    return text.replace("\r\n", "\n").replace("\r", "\n")


def canonical_options(options) -> dict:
    """Flatten an options object to a JSON-safe, order-independent form.

    ``None`` means "the defaults" everywhere in the pipeline, so it
    canonicalizes to the same form as an explicit ``CompilerOptions()``
    — otherwise the same request would get two fingerprints depending
    on which spelling the caller used.

    Option sets canonicalize through their own ``to_dict`` (the
    round-trip :class:`repro.core.optionset.OptionSet` defines); the
    generic dataclass walk below remains only for non-OptionSet values
    nested inside.
    """
    if options is None:
        options = CompilerOptions()
    return _canonical(options)


def _canonical(value):
    if isinstance(value, OptionSet):
        return {
            key: _canonical(val)
            for key, val in value.to_dict().items()
        }
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in sorted(fields(value), key=lambda f: f.name)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {
            str(k): _canonical(value[k])
            for k in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=repr)
        return items
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def fingerprint_request(
    sources: dict[str, str],
    entry: str | None = None,
    options=None,
    pipeline_version: str | None = None,
) -> str:
    """Content-addressed key for one compilation request."""
    payload = {
        "pipeline_version": (
            pipeline_version
            if pipeline_version is not None
            else PIPELINE_VERSION
        ),
        "entry": entry,
        "sources": {
            name: normalize_source(sources[name])
            for name in sorted(sources)
        },
        "options": canonical_options(options),
    }
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(encoded).hexdigest()


def fingerprint_text(text: str) -> str:
    """SHA-256 of a single normalized text blob (e.g. generated C)."""
    return hashlib.sha256(normalize_source(text).encode()).hexdigest()
