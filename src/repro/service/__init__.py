"""The compilation service layer.

Everything the one-shot pipeline lacks on the road to a long-running
service: a content-addressed artifact cache that never recompiles what
it has already compiled (:mod:`repro.service.cache`), a parallel batch
driver that saturates available cores with single-flight deduplication
(:mod:`repro.service.driver`), and pass-level telemetry
(:mod:`repro.service.telemetry`).  The pipeline itself knows nothing
about this package — the cache and tracer are injected into
:func:`repro.compiler.pipeline.compile_program` as optional duck-typed
dependencies.
"""

from repro.service.cache import ArtifactCache, CacheStats
from repro.service.driver import (
    BatchItem,
    BatchResult,
    CompileRequest,
    compile_many,
    parallel_map,
)
from repro.service.fingerprint import (
    canonical_options,
    fingerprint_request,
    normalize_source,
)
from repro.service.telemetry import PassRecord, Tracer

__all__ = [
    "ArtifactCache",
    "BatchItem",
    "BatchResult",
    "CacheStats",
    "CompileRequest",
    "PassRecord",
    "Tracer",
    "canonical_options",
    "compile_many",
    "fingerprint_request",
    "normalize_source",
    "parallel_map",
]
