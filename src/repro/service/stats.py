"""Rendering for ``python -m repro stats``.

Consumes the JSON dumped by the tracer (``repro compile --cache``
writes ``<cache>/telemetry/last.json``; ``repro bench`` writes
``BENCH_<timestamp>.json``) and renders per-pass and per-benchmark
tables.  Discovery order when no file is given: the newest
``BENCH_*.json`` in the working directory, then the cache's
``telemetry/last.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.compiler.reports import telemetry_table
from repro.service.cache import DEFAULT_CACHE_ROOT
from repro.service.telemetry import aggregate_passes

TELEMETRY_DIR = "telemetry"
LAST_TELEMETRY = "last.json"


def telemetry_path(cache_root: str | Path = DEFAULT_CACHE_ROOT) -> Path:
    return Path(cache_root) / TELEMETRY_DIR / LAST_TELEMETRY


def write_telemetry(
    payload: dict, cache_root: str | Path = DEFAULT_CACHE_ROOT
) -> Path:
    path = telemetry_path(cache_root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))
    return path


def find_latest_telemetry(
    directory: str | Path = ".",
    cache_root: str | Path = DEFAULT_CACHE_ROOT,
) -> Path | None:
    """Newest BENCH_*.json in ``directory``, else the cache's last trace."""
    candidates = sorted(
        Path(directory).glob("BENCH_*.json"),
        key=lambda p: p.stat().st_mtime,
    )
    if candidates:
        return candidates[-1].resolve()
    last = telemetry_path(cache_root)
    return last if last.is_file() else None


def _traces_of(payload: dict) -> list[dict]:
    """Pull every per-compile trace out of a telemetry payload."""
    if "passes" in payload:  # a bare Tracer.to_dict()
        return [payload]
    traces = []
    for bench in payload.get("benchmarks", ()):
        for trace in bench.get("traces", ()):
            traces.append(trace)
    return traces


def render_stats(payload: dict) -> str:
    """Human-readable view of a telemetry payload (single or batch)."""
    lines: list[str] = []
    benchmarks = payload.get("benchmarks")
    if benchmarks:
        lines.append("Benchmark batch")
        lines.append("---------------")
        header = (
            f"{'benchmark':<12}{'compile(s)':>11}{'measure(s)':>11}"
            f"{'cache':>7}{'record':>8}"
        )
        lines.append(header)
        for bench in benchmarks:
            lines.append(
                f"{bench['name']:<12}"
                f"{bench.get('compile_seconds', 0.0):>11.3f}"
                f"{bench.get('measure_seconds', 0.0):>11.3f}"
                f"{'hit' if bench.get('cache_hit') else 'miss':>7}"
                f"{'hit' if bench.get('record_cached') else 'miss':>8}"
            )
        lines.append("")
        batch = payload.get("batch", {})
        if batch:
            lines.append(
                f"executor: {batch.get('executor', '?')} "
                f"(jobs={batch.get('jobs', '?')}), "
                f"batch wall {batch.get('wall_seconds', 0.0):.2f} s"
            )
        cache = payload.get("cache", {})
        if cache:
            lines.append(
                f"cache: {cache.get('hits', 0)} hits / "
                f"{cache.get('misses', 0)} misses, "
                f"{cache.get('entries', 0)} entries "
                f"(root {cache.get('root', '?')})"
            )
        lines.append(
            f"total wall time: {payload.get('wall_seconds', 0.0):.2f} s"
        )
        lines.append("")

    traces = _traces_of(payload)
    aggregated = aggregate_passes(traces)
    if aggregated:
        lines.append(telemetry_table(aggregated))
    elif not benchmarks:
        lines.append("(no pass telemetry recorded)")
    cache_hits = payload.get("cache_hits")
    if cache_hits is not None and "benchmarks" not in payload:
        lines.append(
            f"cache: {cache_hits} hits / "
            f"{payload.get('cache_misses', 0)} misses"
        )
    return "\n".join(lines).rstrip() + "\n"
