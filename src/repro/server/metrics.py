"""Prometheus-style live metrics (text exposition format 0.0.4).

A tiny, thread-safe metrics registry: counters, gauges, and cumulative
histograms with labels.  Worker threads and the asyncio loop both
record into it, so every mutation takes the registry lock — the
amounts of work involved (a dict update) make contention a non-issue
at this server's request rates.

Only what ``GET /metrics`` needs is implemented; this is not a client
library.  Exposition follows the Prometheus text format closely
enough for ``promtool``/Grafana agents to scrape it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(names: tuple[str, ...], values: tuple) -> str:
    if not names:
        return ""
    pairs = ", ".join(
        f'{name}="{_escape(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


class _Metric:
    """Shared plumbing: labelled sample storage under the registry lock."""

    kind = "untyped"

    def __init__(self, name, help_text, labelnames, lock):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._samples: dict[tuple, float] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(labels[name] for name in self.labelnames)

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(self._key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            lines = [
                f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}",
            ]
            if not self._samples and not self.labelnames:
                lines.append(f"{self.name} 0")
            for key in sorted(self._samples, key=repr):
                labels = _labels_text(self.labelnames, key)
                value = _format_value(self._samples[key])
                lines.append(f"{self.name}{labels} {value}")
            return lines


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._samples[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative histogram: ``_bucket{le=…}``, ``_sum``, ``_count``."""

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock, buckets=None):
        super().__init__(name, help_text, labelnames, lock)
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        # per label-key: [per-bucket counts…, +Inf count, sum]
        self._series: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [0.0] * (len(self.buckets) + 2)
                self._series[key] = series
            index = bisect_left(self.buckets, value)
            if index < len(self.buckets):
                series[index] += 1
            else:
                series[len(self.buckets)] += 1  # above every bucket
            series[len(self.buckets) + 1] += value

    def count(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return 0.0
            # +Inf bucket is cumulative over everything observed.
            return sum(series[: len(self.buckets) + 1])

    def render(self) -> list[str]:
        with self._lock:
            lines = [
                f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}",
            ]
            for key in sorted(self._series, key=repr):
                series = self._series[key]
                base = dict(zip(self.labelnames, key))
                cumulative = 0.0
                for bound, count in zip(self.buckets, series):
                    cumulative += count
                    labels = _labels_text(
                        self.labelnames + ("le",),
                        key + (_format_value(bound),),
                    )
                    lines.append(
                        f"{self.name}_bucket{labels} "
                        f"{_format_value(cumulative)}"
                    )
                cumulative += series[len(self.buckets)]
                inf_labels = _labels_text(
                    self.labelnames + ("le",), key + ("+Inf",)
                )
                lines.append(
                    f"{self.name}_bucket{inf_labels} "
                    f"{_format_value(cumulative)}"
                )
                plain = _labels_text(self.labelnames, key)
                total = series[len(self.buckets) + 1]
                lines.append(
                    f"{self.name}_sum{plain} {_format_value(total)}"
                )
                lines.append(
                    f"{self.name}_count{plain} "
                    f"{_format_value(cumulative)}"
                )
            return lines


class MetricsRegistry:
    """Create-and-remember factory; ``render()`` is the scrape body."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name, help_text, labelnames=()) -> Counter:
        return self._register(
            Counter(name, help_text, labelnames, self._lock)
        )

    def gauge(self, name, help_text, labelnames=()) -> Gauge:
        return self._register(
            Gauge(name, help_text, labelnames, self._lock)
        )

    def histogram(
        self, name, help_text, labelnames=(), buckets=None
    ) -> Histogram:
        return self._register(
            Histogram(name, help_text, labelnames, self._lock, buckets)
        )

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"

    def parse_rendered(self, text: str) -> dict[str, float]:
        """Inverse of :meth:`render` for tests: sample line → value."""
        samples: dict[str, float] = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            samples[name] = float(value)
        return samples
