"""Minimal HTTP/1.1 over asyncio streams (stdlib only).

Just enough protocol for a JSON API scraped by Prometheus: request
line + headers + ``Content-Length`` bodies in, fixed-length responses
out, keep-alive by default.  No chunked transfer, no TLS, no
multipart — callers that need those put a real proxy in front.

Errors are expressed as :class:`HttpError` so handlers can raise
``HttpError(400, "…")`` anywhere and the connection loop turns it
into a well-formed JSON error response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on one header line / the request line.
_MAX_LINE = 16 * 1024
_MAX_HEADERS = 100


class HttpError(Exception):
    """Maps straight to an error response.

    ``code`` and ``detail`` feed the API error envelope; when ``code``
    is None the renderer derives one from the status
    (:func:`repro.api.code_for_status`).
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers=None,
        *,
        code: str | None = None,
        detail: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.code = code
        self.detail = dict(detail or {})


@dataclass(slots=True)
class Request:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Request | None:
    """Parse one request; None on a cleanly closed connection."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # EOF between requests: client hung up
        raise HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    line = line.strip().decode("latin-1")
    if not line:
        return None
    parts = line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        try:
            raw = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers") from None
        if len(raw) > _MAX_LINE:
            raise HttpError(400, "header line too long")
        text = raw.strip().decode("latin-1")
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header: {text!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked bodies are not supported")
    return Request(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: dict | None = None,
    keep_alive: bool = True,
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int,
    payload: dict,
    extra_headers: dict | None = None,
    keep_alive: bool = True,
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return render_response(
        status,
        body,
        "application/json; charset=utf-8",
        extra_headers,
        keep_alive,
    )


def text_response(
    status: int, text: str, keep_alive: bool = True
) -> bytes:
    return render_response(
        status,
        text.encode("utf-8"),
        "text/plain; version=0.0.4; charset=utf-8",
        None,
        keep_alive,
    )
