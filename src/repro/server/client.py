"""Stdlib HTTP client for the compile server.

``python -m repro client …`` and the test suite talk to a running
server through this module; it depends only on ``urllib`` so the CLI
can submit work without any third-party HTTP stack.

Every call returns a :class:`ClientResponse` — error statuses (429,
504, …) are *data*, not exceptions, because shed load and expired
deadlines are expected operating conditions a caller must branch on.
Only transport-level failures (connection refused, DNS) raise, as
:class:`urllib.error.URLError`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field


@dataclass(slots=True)
class ClientResponse:
    status: int
    payload: dict = field(default_factory=dict)
    text: str = ""
    headers: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == 200 and self.payload.get("ok", True)

    @property
    def error(self) -> str | None:
        if self.status == 200:
            return None
        return self.payload.get("error", f"HTTP {self.status}")

    def envelope(self):
        """The typed error envelope for a non-2xx response."""
        from repro.api import ErrorEnvelope

        return ErrorEnvelope.from_wire(self.payload, self.status)


class ServerClient:
    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- endpoints -------------------------------------------------------

    def compile(
        self,
        sources: dict[str, str],
        entry: str | None = None,
        options: dict | None = None,
        deadline_seconds: float | None = None,
        emit_c: bool = False,
        name: str = "",
        verify_plan: bool = False,
    ) -> ClientResponse:
        payload: dict = {"sources": sources}
        if entry is not None:
            payload["entry"] = entry
        if options:
            payload["options"] = options
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if emit_c:
            payload["emit_c"] = True
        if verify_plan:
            payload["verify_plan"] = True
        if name:
            payload["name"] = name
        return self.post_json("/v1/compile", payload)

    def batch(
        self,
        requests: list[dict],
        jobs: int | None = None,
        deadline_seconds: float | None = None,
    ) -> ClientResponse:
        payload: dict = {"requests": requests}
        if jobs is not None:
            payload["jobs"] = jobs
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self.post_json("/v1/batch", payload)

    def health(self) -> ClientResponse:
        return self.get("/healthz")

    def ready(self) -> ClientResponse:
        return self.get("/readyz")

    def metrics_text(self) -> str:
        return self.get("/metrics").text

    # -- transport -------------------------------------------------------

    def post_json(self, path: str, payload: dict) -> ClientResponse:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._send(request)

    def get(self, path: str) -> ClientResponse:
        request = urllib.request.Request(
            self.base_url + path, method="GET"
        )
        return self._send(request)

    def _send(self, request: urllib.request.Request) -> ClientResponse:
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return self._wrap(
                    response.status,
                    response.read(),
                    dict(response.headers),
                )
        except urllib.error.HTTPError as exc:
            # 4xx/5xx carry a JSON body describing the refusal.
            body = exc.read()
            return self._wrap(exc.code, body, dict(exc.headers or {}))

    @staticmethod
    def _wrap(status: int, body: bytes, headers: dict) -> ClientResponse:
        text = body.decode("utf-8", errors="replace")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = {}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return ClientResponse(
            status=status, payload=payload, text=text, headers=headers
        )
