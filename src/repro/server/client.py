"""Stdlib HTTP client for the compile server.

``python -m repro client …`` and the test suite talk to a running
server through this module; it depends only on ``urllib`` so the CLI
can submit work without any third-party HTTP stack.

Every call returns a :class:`ClientResponse` — error statuses (429,
504, …) are *data*, not exceptions, because shed load and expired
deadlines are expected operating conditions a caller must branch on.
Only transport-level failures raise (connection refused, DNS, the
server closing the socket mid-exchange — see ``TRANSPORT_ERRORS``),
and with a :class:`RetryPolicy` configured, only after the retry
budget is spent.

Retries use capped exponential backoff with *full jitter*: the wait
before attempt *n* is uniform on ``[0, min(cap, base·2ⁿ))``, drawn
from a seeded RNG so tests replay the exact schedule.  A ``429`` with
a ``Retry-After`` header (or ``retry_after_seconds`` detail in the
envelope) overrides the computed delay — the server knows its queue
better than the client's guess.  A :class:`CircuitBreaker` can sit in
front of the whole loop: after ``failure_threshold`` consecutive
transport/5xx failures it fails fast (:class:`CircuitOpenError`) for
``reset_seconds``, then lets one probe through (half-open) before
closing again.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

#: transport-level failures worth retrying: connection refused/reset,
#: DNS trouble (``URLError`` is an ``OSError``), and the server
#: closing the socket mid-exchange (``RemoteDisconnected`` et al. are
#: ``HTTPException``, *not* ``URLError``).
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)

#: statuses worth retrying: shed load, transient server trouble,
#: expired deadlines.  Hard client errors (4xx) are not on the list —
#: the same request will fail the same way.
DEFAULT_RETRY_STATUSES = (429, 500, 502, 503, 504)


@dataclass(slots=True)
class ClientResponse:
    status: int
    payload: dict = field(default_factory=dict)
    text: str = ""
    headers: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == 200 and self.payload.get("ok", True)

    @property
    def error(self) -> str | None:
        if self.status == 200:
            return None
        return self.payload.get("error", f"HTTP {self.status}")

    def envelope(self):
        """The typed error envelope for a non-2xx response."""
        from repro.api import ErrorEnvelope

        return ErrorEnvelope.from_wire(self.payload, self.status)

    def retry_after(self) -> float | None:
        """The server-advised wait, if the response carries one."""
        for key, value in self.headers.items():
            if key.lower() == "retry-after":
                try:
                    return max(0.0, float(value))
                except (TypeError, ValueError):
                    break
        detail = self.payload.get("detail")
        if isinstance(detail, dict):
            try:
                return max(0.0, float(detail["retry_after_seconds"]))
            except (KeyError, TypeError, ValueError):
                pass
        return None


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to retry and how long to wait in between."""

    #: extra attempts after the first (0 = no retries at all).
    retries: int = 0
    #: base for the exponential schedule (attempt n caps at base·2ⁿ).
    backoff_seconds: float = 0.1
    #: ceiling on any single wait, server-advised or computed.
    max_backoff_seconds: float = 5.0
    retry_statuses: tuple = DEFAULT_RETRY_STATUSES
    #: seeds the jitter RNG; same seed → same wait schedule.
    seed: int = 0

    def should_retry_status(self, status: int) -> bool:
        return status in self.retry_statuses

    def delay(
        self,
        attempt: int,
        rng: random.Random,
        server_advice: float | None = None,
    ) -> float:
        """Wait before retry number ``attempt`` (0-based)."""
        if server_advice is not None:
            return min(server_advice, self.max_backoff_seconds)
        cap = min(
            self.max_backoff_seconds,
            self.backoff_seconds * (2.0 ** attempt),
        )
        return rng.uniform(0.0, cap)


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open; the request was not attempted."""


class CircuitBreaker:
    """Consecutive-failure breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` returns False until ``reset_seconds`` elapse,
    after which exactly one caller is let through (half-open).  That
    probe's success closes the circuit; its failure re-opens it for
    another cooldown.  Thread-safe; the clock is injectable for tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a request may proceed right now."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.reset_seconds:
                    self._state = self.HALF_OPEN
                    return True      # the single probe
                return False
            return False             # half-open: probe already in flight

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()


class ServerClient:
    def __init__(
        self,
        base_url: str,
        timeout: float = 120.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        #: per-attempt timeout — each retry gets the full budget.
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self.sleep = sleep

    # -- endpoints -------------------------------------------------------

    def compile(
        self,
        sources: dict[str, str],
        entry: str | None = None,
        options: dict | None = None,
        deadline_seconds: float | None = None,
        emit_c: bool = False,
        name: str = "",
        verify_plan: bool = False,
    ) -> ClientResponse:
        payload: dict = {"sources": sources}
        if entry is not None:
            payload["entry"] = entry
        if options:
            payload["options"] = options
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if emit_c:
            payload["emit_c"] = True
        if verify_plan:
            payload["verify_plan"] = True
        if name:
            payload["name"] = name
        return self.post_json("/v1/compile", payload)

    def batch(
        self,
        requests: list[dict],
        jobs: int | None = None,
        deadline_seconds: float | None = None,
    ) -> ClientResponse:
        payload: dict = {"requests": requests}
        if jobs is not None:
            payload["jobs"] = jobs
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self.post_json("/v1/batch", payload)

    def health(self) -> ClientResponse:
        return self.get("/healthz")

    def ready(self) -> ClientResponse:
        return self.get("/readyz")

    def metrics_text(self) -> str:
        return self.get("/metrics").text

    # -- transport -------------------------------------------------------

    def post_json(self, path: str, payload: dict) -> ClientResponse:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._send(request)

    def get(self, path: str) -> ClientResponse:
        request = urllib.request.Request(
            self.base_url + path, method="GET"
        )
        return self._send(request)

    def _send(self, request: urllib.request.Request) -> ClientResponse:
        """Run the retry loop around single attempts.

        Retryable outcomes: a transport error (``URLError``) or a
        status on the policy's retry list.  Compiles are pure, so
        resubmitting a POST is safe.  The circuit breaker is consulted
        before *every* attempt and fed every outcome.
        """
        policy = self.retry or RetryPolicy()
        rng = random.Random(f"{policy.seed}:{request.full_url}")
        attempts = max(1, policy.retries + 1)
        last_error: Exception | None = None
        response: ClientResponse | None = None
        for attempt in range(attempts):
            if self.breaker is not None and not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self.base_url}; "
                    f"not attempting {request.selector}"
                )
            last_error = None
            try:
                response = self._attempt(request)
            except TRANSPORT_ERRORS as exc:
                last_error = exc
                response = None
                if self.breaker is not None:
                    self.breaker.record_failure()
            else:
                if self.breaker is not None:
                    if response.status >= 500:
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                if not policy.should_retry_status(response.status):
                    return response
            if attempt + 1 >= attempts:
                break
            advice = response.retry_after() if response else None
            delay = policy.delay(attempt, rng, server_advice=advice)
            if delay > 0:
                self.sleep(delay)
        if response is not None:
            return response
        assert last_error is not None
        raise last_error

    def _attempt(self, request: urllib.request.Request) -> ClientResponse:
        """One HTTP exchange; overridable seam for the retry tests."""
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return self._wrap(
                    response.status,
                    response.read(),
                    dict(response.headers),
                )
        except urllib.error.HTTPError as exc:
            # 4xx/5xx carry a JSON body describing the refusal.
            body = exc.read()
            return self._wrap(exc.code, body, dict(exc.headers or {}))

    @staticmethod
    def _wrap(status: int, body: bytes, headers: dict) -> ClientResponse:
        text = body.decode("utf-8", errors="replace")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = {}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return ClientResponse(
            status=status, payload=payload, text=text, headers=headers
        )
