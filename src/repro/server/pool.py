"""The worker pool: threads that execute admitted jobs.

Compilation is pure-Python CPU work, so the pool is a fixed set of
daemon threads feeding off the :class:`~repro.server.jobs.
AdmissionQueue`.  Three properties matter more than raw parallelism:

* **crash isolation** — a job that raises an ordinary ``Exception``
  is a failed *request*; a job that raises a ``BaseException``
  (``SystemExit`` from hostile input, a segfaulting C extension's
  thread-state corruption, test-injected crashes) kills the worker
  thread.  Either way only that request errors: the dying worker
  delivers a ``crash`` outcome on the way down and a supervisor
  hook respawns a replacement, so capacity is restored without a
  restart;
* **deadline awareness** — jobs whose deadline passed while queued
  are skipped (delivered as ``expired``) without running; jobs
  abandoned by their handler are skipped the same way;
* **drainable shutdown** — ``stop()`` enqueues one sentinel per
  worker, so every job admitted before shutdown still runs, then the
  threads exit and are joined (bounded by ``timeout``).
"""

from __future__ import annotations

import threading

from repro.server.jobs import (
    CRASH,
    ERROR,
    EXPIRED,
    OK,
    SENTINEL,
    AdmissionQueue,
    Job,
)


class WorkerPool:
    def __init__(
        self,
        queue: AdmissionQueue,
        size: int,
        inflight_gauge=None,
        crash_counter=None,
        injector=None,
    ) -> None:
        self._queue = queue
        self.size = size
        self._inflight_gauge = inflight_gauge
        self._crash_counter = crash_counter
        #: optional :class:`repro.faults.FaultInjector`; consulted at
        #: ``pool.worker`` before each job (worker_death / hang).
        self._injector = injector
        self._lock = threading.Lock()
        self._threads: set[threading.Thread] = set()
        self._stopping = False
        self._spawned = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            self._stopping = False
            for _ in range(self.size):
                self._spawn_locked()

    def _spawn_locked(self) -> None:
        self._spawned += 1
        thread = threading.Thread(
            target=self._thread_entry,
            name=f"repro-worker-{self._spawned}",
            daemon=True,
        )
        self._threads.add(thread)
        thread.start()

    def alive(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    def stop(self, timeout: float = 10.0) -> bool:
        """Drain queued jobs, then stop every worker.

        Sentinels are FIFO-ordered behind all already-admitted jobs,
        so "stop" means "finish the backlog, then exit".  Returns True
        when every worker thread exited within ``timeout``.
        """
        with self._lock:
            self._stopping = True
            threads = list(self._threads)
        for _ in threads:
            self._queue.put_sentinel()
        drained = True
        for thread in threads:
            thread.join(timeout)
            drained = drained and not thread.is_alive()
        return drained

    # -- the worker loop -------------------------------------------------

    def _thread_entry(self) -> None:
        crashed = False
        try:
            while True:
                item = self._queue.get()
                try:
                    if item is SENTINEL:
                        return
                    crashed = self._run_job(item)
                    if crashed:
                        return
                finally:
                    self._queue.task_done()
        finally:
            with self._lock:
                self._threads.discard(threading.current_thread())
                if crashed:
                    if self._crash_counter is not None:
                        self._crash_counter.inc()
                    if not self._stopping:
                        self._spawn_locked()

    def _run_job(self, job: Job) -> bool:
        """Execute one job; returns True when the worker must die."""
        if job.abandoned.is_set() or job.expired():
            job.deliver(EXPIRED)
            return False
        rule = (
            self._injector.pick("pool.worker")
            if self._injector is not None and self._injector.enabled
            else None
        )
        if rule is not None and rule.kind == "worker_death":
            # The worker dies mid-job, exactly like a BaseException
            # escaping the job body: this request crashes (500), the
            # supervisor respawns a replacement.
            job.deliver(CRASH, "worker crashed: injected worker death")
            return True
        if rule is not None and rule.kind == "hang":
            self._injector.sleep(rule.delay_seconds)
        if self._inflight_gauge is not None:
            self._inflight_gauge.inc()
        try:
            try:
                payload = job.fn()
            except Exception as exc:
                job.deliver(ERROR, f"{type(exc).__name__}: {exc}")
            except BaseException as exc:
                job.deliver(
                    CRASH,
                    f"worker crashed: {type(exc).__name__}: {exc}",
                )
                return True
            else:
                job.deliver(OK, payload)
            return False
        finally:
            if self._inflight_gauge is not None:
                self._inflight_gauge.dec()
