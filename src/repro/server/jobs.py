"""Admission control: jobs and the bounded queue in front of the pool.

A :class:`Job` is one unit of work crossing the asyncio/thread
boundary: the handler coroutine creates it with an ``asyncio.Future``,
a worker thread executes ``fn`` and delivers the outcome back onto
the event loop with ``call_soon_threadsafe``.  Outcomes are tagged
tuples so the HTTP layer can map them to status codes without the
pool knowing anything about HTTP:

``("ok", payload)``
    the job function returned ``payload`` (a JSON-able dict);
``("error", message)``
    the job function raised a normal :class:`Exception` (a compile
    error — the request fails, the worker lives);
``("crash", message)``
    the job function raised a :class:`BaseException` (the worker
    thread is lost and respawned; only this request errors);
``("expired", None)``
    the deadline passed while the job was still queued.

The :class:`AdmissionQueue` is a bounded FIFO; ``try_put`` refuses
instead of blocking, which is what lets the server shed load with
``429`` instead of building an unbounded backlog.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from dataclasses import dataclass, field

#: Worker-thread shutdown sentinel (see :mod:`repro.server.pool`).
SENTINEL = object()

OK = "ok"
ERROR = "error"
CRASH = "crash"
EXPIRED = "expired"

Outcome = tuple  # (tag, value)


@dataclass(slots=True)
class Job:
    """One admitted request travelling loop → queue → worker → loop."""

    kind: str                       # endpoint label for metrics
    fn: object                      # zero-arg callable run on a worker
    loop: asyncio.AbstractEventLoop
    future: asyncio.Future
    deadline: float | None = None   # absolute, time.monotonic() terms
    #: Set by the handler when it stops waiting (client timeout or
    #: disconnect); workers skip abandoned jobs and discard results
    #: that finish after abandonment.
    abandoned: threading.Event = field(default_factory=threading.Event)
    enqueued_at: float = field(default_factory=time.monotonic)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline

    def remaining(self) -> float | None:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def deliver(self, tag: str, value=None) -> None:
        """Hand an outcome to the waiting handler, from any thread."""
        try:
            self.loop.call_soon_threadsafe(self._resolve, (tag, value))
        except RuntimeError:
            pass  # loop already closed (shutdown race): nobody is waiting

    def _resolve(self, outcome: Outcome) -> None:
        if not self.future.done():
            self.future.set_result(outcome)


class AdmissionQueue:
    """Bounded, thread-safe FIFO with a live depth gauge."""

    def __init__(self, limit: int, depth_gauge=None) -> None:
        self.limit = limit
        self._queue: queue.Queue = queue.Queue(maxsize=limit)
        self._depth_gauge = depth_gauge

    def _update_gauge(self) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(self.depth())

    def depth(self) -> int:
        # qsize() counts sentinels too, but sentinels only exist while
        # draining, when nobody reads the gauge as load any more.
        return self._queue.qsize()

    def try_put(self, job: Job) -> bool:
        """Admit ``job``; False (shed) when the queue is full."""
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            return False
        self._update_gauge()
        return True

    def put_sentinel(self) -> None:
        """Unconditionally enqueue a worker-shutdown sentinel.

        Bypasses the bound on purpose: shutdown must never be refused
        because clients filled the queue first.
        """
        item_queue = self._queue
        with item_queue.mutex:
            item_queue.queue.append(SENTINEL)
            item_queue.unfinished_tasks += 1
            item_queue.not_empty.notify()

    def get(self):
        item = self._queue.get()
        self._update_gauge()
        return item

    def task_done(self) -> None:
        self._queue.task_done()

    def join(self, timeout: float | None = None) -> bool:
        """``queue.join`` with a timeout; True when fully drained."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        q = self._queue
        with q.all_tasks_done:
            while q.unfinished_tasks:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                q.all_tasks_done.wait(remaining)
        return True
