"""The compile server: routing, admission, and the compile endpoints.

Request lifecycle for ``POST /v1/compile``::

    asyncio handler ──validate──▶ AdmissionQueue.try_put ──▶ worker
         │                │ full                               │
         │                └────▶ 429 Retry-After               │
         └──── await future (bounded by the request deadline) ◀┘

The event loop only parses/validates and waits; all compilation runs
on the worker pool.  Every terminal path produces a well-formed JSON
response: compile errors are 422, worker crashes 500 (that request
only — the pool respawns the worker), deadline expiry 504, shed load
429, drain-time arrivals 503.

The pipeline is reached exclusively through its injected-deps seams:
``compile_program(…, tracer=, cache=)`` for singles and
``service.driver.compile_many`` for batches, so the server adds no
compiler knowledge of its own.  Tests may replace the whole job body
via the ``compile_impl``/``batch_impl`` constructor hooks.
"""

from __future__ import annotations

import asyncio
import functools
import os
import signal
import sys
import time

from repro.server.config import ServerConfig
from repro.server.httpd import (
    HttpError,
    Request,
    json_response,
    read_request,
    text_response,
)
from repro.server.jobs import CRASH, EXPIRED, OK, AdmissionQueue, Job
from repro.server.metrics import MetricsRegistry
from repro.server.pool import WorkerPool

#: Endpoint label used for unroutable paths, so the metrics label set
#: stays bounded no matter what clients probe.
_OTHER = "other"
_ENDPOINTS = ("/v1/compile", "/v1/batch", "/healthz", "/readyz", "/metrics")


def compiler_options_from(payload: dict | None):
    """Build :class:`CompilerOptions` from the request's options dict.

    Thin wrapper over the typed facade
    (:func:`repro.api.options_from_wire`) that converts validation
    failures to HTTP 400 — the wire semantics live in ``repro.api``.
    """
    from repro.api import ApiValidationError, options_from_wire

    try:
        return options_from_wire(payload)
    except ApiValidationError as exc:
        raise HttpError(400, str(exc)) from None


def _validated_sources(payload: dict) -> dict[str, str]:
    from repro.api import ApiValidationError, validated_sources

    try:
        return validated_sources(payload)
    except ApiValidationError as exc:
        raise HttpError(400, str(exc)) from None


class CompileServer:
    """One daemon: asyncio front end, bounded queue, worker pool."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        cache=None,
        compile_impl=None,
        batch_impl=None,
        injector=None,
    ) -> None:
        self.config = config or ServerConfig()
        self.config.validate()
        self.metrics = MetricsRegistry()
        self._define_metrics()
        self.injector = self._build_injector(injector)
        if cache is not None:
            self.cache = cache
        elif self.config.cache_root:
            from repro.service.cache import ArtifactCache

            self.cache = ArtifactCache(self.config.cache_root)
        else:
            self.cache = None
        self._wire_cache_hooks()
        self._compile_impl = compile_impl or self._do_compile
        self._batch_impl = batch_impl or self._do_batch
        self.queue = AdmissionQueue(
            self.config.queue_limit, depth_gauge=self._queue_depth
        )
        self.pool = WorkerPool(
            self.queue,
            self.config.workers,
            inflight_gauge=self._inflight,
            crash_counter=self._worker_crashes,
            injector=self.injector,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._started_at = time.time()
        self._ready = False
        self._stopping = False
        self.port: int | None = None

    # -- fault injection --------------------------------------------------

    def _build_injector(self, injector):
        """Resolve the server's injector; default is inert.

        A fault plan from config is double-gated: the path must be set
        *and* ``REPRO_ENABLE_FAULTS=1`` must be in the environment, so
        a copied config file cannot silently put chaos in production.
        An explicitly passed injector (embedded test runner) is
        trusted as-is.
        """
        from repro.faults import (
            ENABLE_FAULTS_ENV,
            FaultInjector,
            faults_enabled,
            load_fault_plan,
        )

        if injector is None and self.config.fault_plan_path:
            if not faults_enabled():
                raise ValueError(
                    "fault_plan_path is set but fault injection is "
                    f"not enabled; export {ENABLE_FAULTS_ENV}=1 to "
                    "confirm this server should misbehave on purpose"
                )
            injector = FaultInjector(
                load_fault_plan(self.config.fault_plan_path)
            )
        if injector is None:
            injector = FaultInjector()
        if injector.on_fire is None:
            injector.on_fire = lambda fault: self._faults_injected.inc(
                site=fault.site, kind=fault.kind
            )
        return injector

    def _wire_cache_hooks(self) -> None:
        if self.cache is None:
            return
        if getattr(self.cache, "on_quarantine", None) is None:
            self.cache.on_quarantine = (
                lambda fingerprint: self._cache_quarantined.inc()
            )
        if (
            self.injector.enabled
            and getattr(self.cache, "injector", None) is None
        ):
            self.cache.injector = self.injector

    # -- metrics ---------------------------------------------------------

    def _define_metrics(self) -> None:
        m = self.metrics
        self._requests = m.counter(
            "repro_requests_total",
            "HTTP requests by endpoint and status code.",
            ("endpoint", "status"),
        )
        self._latency = m.histogram(
            "repro_request_seconds",
            "End-to-end request latency by endpoint.",
            ("endpoint",),
        )
        self._queue_depth = m.gauge(
            "repro_queue_depth", "Jobs waiting for a worker."
        )
        self._inflight = m.gauge(
            "repro_inflight_jobs", "Jobs currently executing."
        )
        self._shed = m.counter(
            "repro_shed_total",
            "Requests refused with 429 because the queue was full.",
        )
        self._deadline_expired = m.counter(
            "repro_deadline_expired_total",
            "Requests that hit their deadline (queued or running).",
        )
        self._worker_crashes = m.counter(
            "repro_worker_crashes_total",
            "Worker threads lost to crashing jobs (and respawned).",
        )
        self._compiles = m.counter(
            "repro_compiles_total",
            "Compilations by result.",
            ("result",),  # ok | error
        )
        self._cache_hits = m.counter(
            "repro_cache_hits_total", "Artifact-cache hits."
        )
        self._cache_misses = m.counter(
            "repro_cache_misses_total", "Artifact-cache misses."
        )
        self._pass_seconds = m.counter(
            "repro_pass_seconds_total",
            "Cumulative wall time per compiler pass.",
            ("pass",),
        )
        self._pass_calls = m.counter(
            "repro_pass_calls_total",
            "Executions per compiler pass.",
            ("pass",),
        )
        self._batch_items = m.counter(
            "repro_batch_items_total",
            "Batch items by disposition.",
            ("disposition",),  # compiled | cache_hit | deduped | error
        )
        self._verifications = m.counter(
            "repro_plan_verifications_total",
            "Plan verifications by verdict.",
            ("verdict",),  # ok | unsound
        )
        self._verify_violations = m.counter(
            "repro_plan_violations_total",
            "Plan-verifier violations by check.",
            ("check",),
        )
        self._degraded = m.counter(
            "repro_degraded_total",
            "Compilations degraded to the mcc all-heap fallback plan.",
        )
        self._cache_quarantined = m.counter(
            "repro_cache_quarantined_total",
            "Corrupt cache entries quarantined instead of served.",
        )
        self._faults_injected = m.counter(
            "repro_faults_injected_total",
            "Faults injected by site and kind (chaos runs only).",
            ("site", "kind"),
        )

    def _record_trace(self, tracer) -> None:
        self._cache_hits.inc(tracer.cache_hits)
        self._cache_misses.inc(tracer.cache_misses)
        for record in tracer.passes:
            name = record.name
            self._pass_calls.inc(1, **{"pass": name})
            self._pass_seconds.inc(
                record.wall_seconds, **{"pass": name}
            )

    # -- job bodies (run on worker threads) ------------------------------

    def _do_compile(self, payload: dict) -> dict:
        from repro.api import CompileRequest, CompileResponse
        from repro.compiler.pipeline import compile_program
        from repro.compiler.reports import full_report
        from repro.service.fingerprint import fingerprint_request
        from repro.service.telemetry import Tracer

        request = CompileRequest.from_wire(payload)
        tracer = Tracer(label=request.name or "server")
        start = time.perf_counter()
        try:
            result = compile_program(
                request.sources,
                request.entry,
                request.options,
                tracer=tracer,
                cache=self.cache,
                verify_plan=request.verify_plan,
                degrade=self.config.degrade,
                gctd_deadline_seconds=(
                    self.config.gctd_deadline_seconds or None
                ),
                injector=self.injector if self.injector.enabled else None,
            )
        except Exception:
            self._compiles.inc(result="error")
            self._record_trace(tracer)
            raise
        wall = time.perf_counter() - start
        self._compiles.inc(result="ok")
        self._record_trace(tracer)
        if getattr(result, "degraded", False):
            self._degraded.inc()
        if result.verification is not None:
            verdict = "ok" if result.verification.ok else "unsound"
            self._verifications.inc(verdict=verdict)
            for violation in result.verification.violations:
                self._verify_violations.inc(check=violation.check)
        if self.cache is not None:
            fingerprint = self.cache.fingerprint(
                request.sources, request.entry, request.options
            )
        else:
            fingerprint = fingerprint_request(
                request.sources, request.entry, request.options
            )
        response = CompileResponse.from_result(
            result,
            name=request.name,
            fingerprint=fingerprint,
            cache_hit=tracer.cache_hits > 0,
            wall_seconds=wall,
            report=full_report(result),
            emit_c=request.emit_c,
        )
        if not request.verify_plan:
            # a cached artifact may carry a report from an earlier
            # verify run; only answer what this request asked for
            response.verification = None
        return response.to_wire()

    def _parse_batch(self, payload: dict):
        """Validate a batch payload; HttpError(400) on bad requests.

        Called once on the event loop (so malformed batches are
        rejected before admission) and again by the worker to build
        the actual :class:`CompileRequest` list.
        """
        from repro.api import ApiValidationError, BatchRequest

        try:
            batch = BatchRequest.from_wire(payload)
        except ApiValidationError as exc:
            raise HttpError(400, str(exc)) from None
        requests = batch.items
        jobs = batch.jobs or self.config.batch_jobs
        try:
            jobs = max(1, min(int(jobs), os.cpu_count() or 1))
        except (TypeError, ValueError):
            raise HttpError(400, "jobs must be an integer") from None
        return requests, jobs

    def _do_batch(self, payload: dict) -> dict:
        from repro.service.driver import compile_many

        requests, jobs = self._parse_batch(payload)
        result = compile_many(requests, jobs=jobs, cache=self.cache)
        for item in result.items:
            if item.error is not None:
                disposition = "error"
            elif item.deduped:
                disposition = "deduped"
            elif item.cache_hit:
                disposition = "cache_hit"
            else:
                disposition = "compiled"
            self._batch_items.inc(disposition=disposition)
        summary = result.to_dict()
        for entry in summary["items"]:
            entry["ok"] = entry.get("error") is None
        summary["ok"] = result.ok
        return summary

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self.pool.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready = True

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new work, drain, then exit.

        Order matters: flip readiness (load balancers stop routing),
        close the listener (no new connections), let the pool finish
        everything already admitted, then wait for the open
        connections to write their responses.
        """
        self._ready = False
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.pool.stop, self.config.drain_seconds
        )
        open_connections = [
            task for task in self._connections if not task.done()
        ]
        if open_connections:
            await asyncio.wait(
                open_connections, timeout=self.config.drain_seconds
            )

    # -- connection handling ---------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpError as exc:
                    writer.write(self._error_bytes(exc, _OTHER))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._stopping
                data = await self._respond(request, keep_alive)
                rule = (
                    self.injector.pick("http.response")
                    if self.injector.enabled
                    else None
                )
                if rule is not None and rule.kind == "drop_connection":
                    break  # close without writing the response
                if rule is not None and rule.kind == "delay":
                    await asyncio.sleep(rule.delay_seconds)
                writer.write(data)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _error_bytes(
        self, exc: HttpError, endpoint: str, keep_alive: bool = False
    ) -> bytes:
        from repro.api import ErrorEnvelope, code_for_status

        self._requests.inc(endpoint=endpoint, status=str(exc.status))
        envelope = ErrorEnvelope(
            code=exc.code or code_for_status(exc.status),
            message=exc.message,
            detail=exc.detail or {},
            status=exc.status,
        )
        return json_response(
            exc.status,
            envelope.to_wire(),
            extra_headers=exc.headers,
            keep_alive=keep_alive,
        )

    async def _respond(self, request: Request, keep_alive: bool) -> bytes:
        endpoint = (
            request.path if request.path in _ENDPOINTS else _OTHER
        )
        start = time.perf_counter()
        try:
            status, payload, headers, text = await self._dispatch(request)
        except HttpError as exc:
            self._latency.observe(
                time.perf_counter() - start, endpoint=endpoint
            )
            return self._error_bytes(exc, endpoint, keep_alive)
        self._latency.observe(
            time.perf_counter() - start, endpoint=endpoint
        )
        self._requests.inc(endpoint=endpoint, status=str(status))
        if text is not None:
            return text_response(status, text, keep_alive=keep_alive)
        return json_response(
            status, payload, extra_headers=headers, keep_alive=keep_alive
        )

    async def _dispatch(self, request: Request):
        """Route; returns ``(status, json_payload, headers, text)``."""
        method, path = request.method, request.path
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET")
            return 200, {
                "ok": True,
                "uptime_seconds": time.time() - self._started_at,
                "workers_alive": self.pool.alive(),
            }, None, None
        if path == "/readyz":
            if method != "GET":
                raise HttpError(405, "use GET")
            if not self._ready:
                raise HttpError(
                    503,
                    "draining" if self._stopping else "starting",
                )
            return 200, {
                "ready": True,
                "queue_depth": self.queue.depth(),
                "workers_alive": self.pool.alive(),
            }, None, None
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET")
            return 200, None, None, self.metrics.render()
        if path == "/v1/compile":
            if method != "POST":
                raise HttpError(405, "use POST")
            payload = request.json()
            self._validate_compile(payload)  # 400 before admission
            return await self._submit(
                "/v1/compile",
                functools.partial(self._compile_impl, payload),
                self._deadline_from(payload),
            )
        if path == "/v1/batch":
            if method != "POST":
                raise HttpError(405, "use POST")
            payload = request.json()
            self._parse_batch(payload)  # 400 before admission
            return await self._submit(
                "/v1/batch",
                functools.partial(self._batch_impl, payload),
                self._deadline_from(payload),
            )
        raise HttpError(404, f"no route for {method} {path}")

    def _validate_compile(self, payload: dict) -> None:
        """Typed validation on the event loop; HttpError(400) early."""
        from repro.api import ApiValidationError, CompileRequest

        try:
            CompileRequest.from_wire(payload)
        except ApiValidationError as exc:
            raise HttpError(400, str(exc)) from None

    # -- admission and outcome mapping -----------------------------------

    def _deadline_from(self, payload: dict) -> float:
        seconds = payload.get("deadline_seconds")
        if seconds is None:
            seconds = self.config.default_deadline
        try:
            seconds = float(seconds)
        except (TypeError, ValueError):
            raise HttpError(400, "deadline_seconds must be a number")
        if seconds <= 0:
            raise HttpError(400, "deadline_seconds must be > 0")
        return min(seconds, self.config.max_deadline)

    async def _submit(self, kind: str, fn, deadline_seconds: float):
        if self._stopping or not self._ready:
            raise HttpError(503, "server is draining")
        loop = asyncio.get_running_loop()
        job = Job(
            kind=kind,
            fn=fn,
            loop=loop,
            future=loop.create_future(),
            deadline=time.monotonic() + deadline_seconds,
        )
        if not self.queue.try_put(job):
            self._shed.inc()
            raise HttpError(
                429,
                "compile queue is full, retry later",
                headers={
                    "Retry-After": f"{self.config.retry_after:g}"
                },
                detail={
                    "retry_after_seconds": self.config.retry_after
                },
            )
        try:
            tag, value = await asyncio.wait_for(
                job.future, timeout=deadline_seconds
            )
        except asyncio.TimeoutError:
            job.abandoned.set()
            self._deadline_expired.inc()
            raise HttpError(
                504,
                f"deadline of {deadline_seconds:g}s exceeded",
                detail={"deadline_seconds": deadline_seconds},
            ) from None
        except asyncio.CancelledError:
            job.abandoned.set()
            raise
        if tag == OK:
            return 200, value, None, None
        if tag == EXPIRED:
            self._deadline_expired.inc()
            raise HttpError(
                504,
                f"deadline of {deadline_seconds:g}s exceeded in queue",
                detail={
                    "deadline_seconds": deadline_seconds,
                    "where": "queue",
                },
            )
        if tag == CRASH:
            raise HttpError(500, value)
        raise HttpError(422, value)


async def _serve_async(config: ServerConfig) -> None:
    server = CompileServer(config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signame in ("SIGINT", "SIGTERM"):
        try:
            loop.add_signal_handler(
                getattr(signal, signame), stop.set
            )
        except (NotImplementedError, OSError, AttributeError):
            pass  # platform without loop signal handlers
    print(
        f"repro server listening on {server.url} "
        f"(workers={config.workers}, queue={config.queue_limit}, "
        f"cache={config.cache_root or 'off'})",
        file=sys.stderr,
        flush=True,
    )
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("repro server draining…", file=sys.stderr, flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except asyncio.CancelledError:
        pass
    await server.stop()
    print("repro server stopped", file=sys.stderr, flush=True)


def serve(config: ServerConfig | None = None) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    try:
        asyncio.run(_serve_async(config or ServerConfig()))
    except KeyboardInterrupt:
        pass  # signal handler unavailable: Ctrl-C lands here instead
    return 0
