"""Server configuration.

One frozen-ish dataclass shared by the daemon entry point, the
embedded test runner, and the CLI.  Every tunable has a conservative
default sized for a laptop; production deployments override via
``python -m repro serve`` flags.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


def default_workers() -> int:
    """Compiles are CPU-bound; more threads than cores only adds churn."""
    return max(1, min(4, os.cpu_count() or 1))


@dataclass(slots=True)
class ServerConfig:
    host: str = DEFAULT_HOST
    #: TCP port; 0 binds an ephemeral port (the bound port is reported
    #: on :attr:`repro.server.app.CompileServer.port`).
    port: int = DEFAULT_PORT
    #: Worker threads executing compile/batch jobs.
    workers: int = field(default_factory=default_workers)
    #: Bounded admission queue: jobs waiting for a worker beyond this
    #: are shed with ``429 Retry-After``.
    queue_limit: int = 64
    #: Default per-request deadline (seconds); a request can lower or
    #: raise it via ``deadline_seconds`` up to :attr:`max_deadline`.
    default_deadline: float = 60.0
    max_deadline: float = 600.0
    #: Largest accepted request body, in bytes (413 beyond).
    max_body_bytes: int = 8 * 1024 * 1024
    #: Artifact cache root; empty string disables caching.
    cache_root: str = ".repro-cache"
    #: Default parallelism for ``/v1/batch`` (1 = serial inside the
    #: worker thread; requests may raise it up to the CPU count).
    batch_jobs: int = 1
    #: How long graceful shutdown waits for queued + in-flight jobs.
    drain_seconds: float = 10.0
    #: Seconds suggested to shed clients via ``Retry-After``.
    retry_after: float = 1.0
    #: Path to a fault-plan JSON (see :mod:`repro.faults`).  Refused
    #: at server construction unless ``REPRO_ENABLE_FAULTS=1`` — chaos
    #: must be an explicit, two-key decision.
    fault_plan_path: str = ""
    #: When True, a GCTD failure degrades a compile to the mcc
    #: all-heap plan (marked ``degraded``) instead of erroring.
    degrade: bool = True
    #: Wall-clock budget for the GCTD pass before degrading
    #: (0 = unlimited).
    gctd_deadline_seconds: float = 0.0

    def validate(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.default_deadline <= 0:
            raise ValueError("default_deadline must be > 0")
        if self.gctd_deadline_seconds < 0:
            raise ValueError("gctd_deadline_seconds must be >= 0")
