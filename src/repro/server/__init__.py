"""The long-lived compile server.

``repro.server`` turns the one-shot service layer (:mod:`repro.service`)
into a resident daemon: a stdlib-only asyncio JSON-over-HTTP front end
(:mod:`repro.server.httpd`, :mod:`repro.server.app`) over a bounded
admission queue (:mod:`repro.server.jobs`) and a crash-surviving worker
pool (:mod:`repro.server.pool`), instrumented with Prometheus-style
live metrics (:mod:`repro.server.metrics`).

Endpoints::

    POST /v1/compile   one compilation (answered from the artifact
                       cache on repeat submissions)
    POST /v1/batch     a batch, fanned out through service.driver
    GET  /healthz      liveness
    GET  /readyz       readiness (503 while starting/draining)
    GET  /metrics      Prometheus text format

Start one with ``python -m repro serve``; submit from the CLI with
``python -m repro client compile …`` (:mod:`repro.server.client`), or
embed a server in-process with :class:`repro.server.runner.ServerThread`.
"""

from repro.server.app import CompileServer, serve
from repro.server.client import ClientResponse, ServerClient
from repro.server.config import ServerConfig
from repro.server.metrics import MetricsRegistry
from repro.server.runner import ServerThread

__all__ = [
    "ClientResponse",
    "CompileServer",
    "MetricsRegistry",
    "ServerClient",
    "ServerConfig",
    "ServerThread",
    "serve",
]
