"""Run a :class:`CompileServer` on a background thread.

The daemon normally owns the process (``python -m repro serve``), but
tests — and anything embedding the server next to other work — want a
server that starts, reports its bound port, and stops on demand.
``ServerThread`` runs the whole asyncio lifecycle on a private thread
with its own event loop:

    with ServerThread(ServerConfig(port=0)) as server:
        client = ServerClient(server.url)
        …

Startup failures (port in use, bad config) re-raise in the entering
thread instead of leaving a half-started daemon behind.
"""

from __future__ import annotations

import asyncio
import threading

from repro.server.app import CompileServer
from repro.server.config import ServerConfig


class ServerThread:
    def __init__(
        self,
        config: ServerConfig | None = None,
        cache=None,
        compile_impl=None,
        batch_impl=None,
        injector=None,
        startup_timeout: float = 10.0,
    ) -> None:
        self.config = config or ServerConfig(port=0)
        self._kwargs = {
            "cache": cache,
            "compile_impl": compile_impl,
            "batch_impl": batch_impl,
            "injector": injector,
        }
        self._startup_timeout = startup_timeout
        self.server: CompileServer | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise TimeoutError("server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def url(self) -> str:
        assert self.server is not None and self.server.port is not None
        return self.server.url

    # -- the private loop ------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface startup failures
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.server = CompileServer(self.config, **self._kwargs)
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()
