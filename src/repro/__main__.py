"""Command-line interface: ``python -m repro <command> …``.

Commands:

* ``compile FILES…``  — compile M-files, print GCTD statistics
  (``--cache`` answers repeat compiles from the artifact cache,
  ``--trace`` prints pass-level telemetry)
* ``run FILES…``      — compile and execute (mat2c/mcc/interp model)
* ``emit-c FILES…``   — print the C translation
* ``bench``           — run the paper's experiment harness through the
  parallel batch driver; writes ``BENCH_<timestamp>.json`` at the repo
  root so the perf trajectory accumulates
* ``stats``           — render the latest pass-level telemetry JSON
* ``verify``          — run the independent plan checker (and,
  optionally, the differential-execution harness) over given M-files
  or the whole benchmark suite (``--suite``)
* ``api-schema``      — print the typed wire-format schema; ``--check``
  diffs it against the committed ``api-schema.json``
* ``serve``           — run the long-lived compile server
  (``repro.server``: bounded admission queue, worker pool, /metrics;
  ``--fault-plan`` arms seeded chaos, gated on REPRO_ENABLE_FAULTS=1)
* ``client``          — submit compiles to a running server over HTTP
  (``--retries``/``--retry-backoff`` for jittered retry on 429/5xx)
* ``chaos``           — flood a running server with concurrent
  retrying compiles and assert the robustness invariants hold

Error handling: ``compile`` and ``client`` exit 1 with a message on
compile/transport errors; ``bench`` exits 1 and prints a summary when
any benchmark in the batch failed; ``verify`` exits 1 when any check
finds a violation or any model disagrees.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.compiler.pipeline import (
    CompilerOptions,
    PIPELINE_VERSION,
    compile_program,
)
from repro.core.gctd import GCTDOptions
from repro.runtime.builtins import RuntimeContext


def _repo_root() -> Path:
    """Nearest enclosing checkout root, else the working directory.

    ``repro bench`` drops its ``BENCH_<timestamp>.json`` here so
    successive runs accumulate one perf trajectory per repo no matter
    which subdirectory they were launched from.
    """
    current = Path.cwd()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file() or (
            candidate / ".git"
        ).exists():
            return candidate
    return current


def _load(files: list[str]) -> dict[str, str]:
    sources: dict[str, str] = {}
    for filename in files:
        path = Path(filename)
        sources[path.name] = path.read_text()
    return sources


def _options(args) -> CompilerOptions:
    return CompilerOptions(
        gctd=GCTDOptions(enabled=not getattr(args, "no_gctd", False))
    )


def _cache_from(args):
    from repro.service.cache import ArtifactCache

    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache", False) or getattr(args, "cache_dir", None):
        return ArtifactCache(args.cache_dir or ".repro-cache")
    return None


def _fail(message: str) -> int:
    print(f"repro: error: {message}", file=sys.stderr)
    return 1


def cmd_compile(args) -> int:
    from repro.service.telemetry import Tracer

    cache = _cache_from(args)
    tracer = Tracer(label="compile") if (args.trace or cache) else None
    try:
        result = compile_program(
            _load(args.files),
            options=_options(args),
            tracer=tracer,
            cache=cache,
            verify_plan=args.verify_plan,
        )
    except OSError as exc:
        return _fail(str(exc))
    except Exception as exc:
        return _fail(f"{type(exc).__name__}: {exc}")
    stats = result.report
    print(f"entry function        : {result.program.entry}")
    print(f"variables at GCTD     : {stats.original_variable_count}")
    print(
        f"subsumed (s/d)        : "
        f"{stats.static_subsumed}/{stats.dynamic_subsumed}"
    )
    print(f"storage reduction     : {stats.storage_reduction_kb:.2f} KB")
    print(f"colors / groups       : {stats.color_count} / {stats.group_count}")
    print(f"stack frame           : {result.plan.stack_frame_bytes()} B")
    if args.verbose:
        print()
        for group in result.plan.groups:
            size = (
                f"{group.static_size}B"
                if group.static_size is not None
                else "symbolic"
            )
            print(
                f"group {group.gid:3d} [{group.storage.value}] "
                f"{group.intrinsic.name:8s} {size:>10s} "
                f"{group.members}"
            )
    if args.partial:
        from repro.core.partial import find_partial_interference

        report = find_partial_interference(
            result.ssa_func, result.env, result.gctd.graph
        )
        print()
        print(
            f"partial-interference opportunities (§2.1): "
            f"{len(report.pairs)} pairs, "
            f"{report.total_potential_bytes} B foregone"
        )
        for pair in report.pairs[:10]:
            print(
                f"  {pair.array} could overlap {pair.other} "
                f"({pair.potential_bytes} B)"
            )
    if cache is not None:
        hit = tracer.cache_hits > 0
        print(
            f"artifact cache        : "
            f"{'hit' if hit else 'miss'} ({cache.root})"
        )
    if args.trace and tracer is not None:
        from repro.compiler.reports import telemetry_table
        from repro.service.telemetry import aggregate_passes

        print()
        print(telemetry_table(aggregate_passes([tracer.to_dict()])))
    if cache is not None and tracer is not None:
        from repro.service.stats import write_telemetry

        write_telemetry(tracer.to_dict(), cache.root)
    if result.verification is not None:
        print()
        print(result.verification.summary())
        if not result.verification.ok:
            return 1
    return 0


def cmd_verify(args) -> int:
    """Run the plan checker (and optionally the differential harness).

    ``--suite`` verifies every benchmark program; otherwise the given
    M-files are compiled and verified as one program.  Exit status is
    1 as soon as any plan shows a violation or any execution model
    disagrees with the interpreter oracle.
    """
    from repro.verify import run_differential, verify_compilation

    if args.suite:
        from repro.bench.suite import BENCHMARK_NAMES, compile_benchmark

        targets = [
            (name, lambda name=name: compile_benchmark(name))
            for name in BENCHMARK_NAMES
        ]
    elif args.files:
        targets = [
            (
                Path(args.files[0]).stem,
                lambda: compile_program(
                    _load(args.files), options=_options(args)
                ),
            )
        ]
    else:
        return _fail("verify needs M-files or --suite")

    failures = 0
    for name, compile_fn in targets:
        try:
            result = compile_fn()
        except Exception as exc:
            failures += 1
            print(f"{name}: compile failed: {exc}")
            continue
        report = verify_compilation(result)
        print(f"{name}: {report.summary()}")
        if not report.ok:
            failures += 1
        if args.differential:
            diff = run_differential(result, name=name)
            print(f"{name}: {diff.summary()}")
            if not diff.ok:
                failures += 1
        if args.mutation:
            from repro.verify import flip_one_coalescing, verify_plan

            mutation = flip_one_coalescing(result)
            if mutation is None:
                print(f"{name}: mutation: no coalescing to flip")
            else:
                mutated = verify_plan(
                    result.ssa_func, result.env, mutation.plan
                )
                a, b = mutation.merged
                if mutated.ok:
                    failures += 1
                    print(
                        f"{name}: mutation MISSED — merged "
                        f"interfering '{a}'/'{b}' went unflagged"
                    )
                else:
                    print(
                        f"{name}: mutation flagged "
                        f"({len(mutated.violations)} violations "
                        f"after merging '{a}'/'{b}')"
                    )
    if failures:
        print(f"verify: {failures} failure(s)", file=sys.stderr)
        return 1
    return 0


def _schema_golden_path() -> Path:
    """The committed ``api-schema.json``.

    Prefers the enclosing checkout (so ``--write`` lands next to the
    sources being edited), but falls back to the root of the installed
    package's source tree — the golden belongs to the code, not to
    whatever directory the command was launched from.
    """
    cwd_golden = _repo_root() / "api-schema.json"
    if cwd_golden.is_file():
        return cwd_golden
    import repro

    source_golden = (
        Path(repro.__file__).resolve().parents[2] / "api-schema.json"
    )
    if source_golden.is_file():
        return source_golden
    return cwd_golden


def cmd_api_schema(args) -> int:
    """Print, write, or check the typed wire-format schema."""
    from repro.api import schema_compatibility_problems, schema_text

    golden_path = _schema_golden_path()
    if args.write:
        golden_path.write_text(schema_text())
        print(f"wrote {golden_path}")
        return 0
    if args.check:
        if not golden_path.is_file():
            return _fail(
                f"no golden schema at {golden_path} "
                "(run `repro api-schema --write`)"
            )
        golden = json.loads(golden_path.read_text())
        current = json.loads(schema_text())
        problems = schema_compatibility_problems(golden, current)
        if problems:
            for problem in problems:
                print(f"schema drift: {problem}", file=sys.stderr)
            return 1
        if golden != current:
            print(
                "schema changed compatibly; refresh the golden file "
                "with `repro api-schema --write`",
                file=sys.stderr,
            )
            return 1
        print("api schema matches the committed golden file")
        return 0
    sys.stdout.write(schema_text())
    return 0


def cmd_run(args) -> int:
    result = compile_program(_load(args.files), options=_options(args))
    ctx = RuntimeContext(seed=args.seed)
    if args.model == "mat2c":
        run = result.run_mat2c(ctx)
    elif args.model == "mcc":
        run = result.run_mcc(ctx)
    else:
        run = result.run_interpreter(ctx)
    sys.stdout.write(run.output)
    if args.stats:
        report = run.report
        print(f"--- {args.model} model ---", file=sys.stderr)
        print(
            f"time      : {report.execution_seconds * 1e3:.3f} ms "
            "(simulated, 440 MHz)",
            file=sys.stderr,
        )
        print(
            f"avg stack+heap : {report.avg_dynamic_kb:.1f} KB",
            file=sys.stderr,
        )
        print(
            f"avg VM / RSS   : {report.avg_virtual_kb:.1f} / "
            f"{report.avg_resident_kb:.1f} KB",
            file=sys.stderr,
        )
    return 0


def cmd_emit_c(args) -> int:
    result = compile_program(_load(args.files), options=_options(args))
    sys.stdout.write(result.generate_c())
    return 0


def cmd_bench(args) -> int:
    """Run the experiment harness through the cached batch driver.

    Alongside the paper's tables/figures on stdout, writes a
    machine-readable ``BENCH_<timestamp>.json`` (per-benchmark compile
    time, cache hits, executor timings, pass telemetry) so the perf
    trajectory is trackable across runs.
    """
    from repro.bench.experiments import collect_records, run_all_experiments
    from repro.service.cache import ArtifactCache, DEFAULT_CACHE_ROOT

    start = time.perf_counter()
    cache_root = (
        None
        if args.no_cache
        else (args.cache_dir or DEFAULT_CACHE_ROOT)
    )
    records, infos, executor = collect_records(
        cache_root=cache_root, jobs=args.jobs, trace=True
    )
    sweep_seconds = time.perf_counter() - start
    failures = [info for info in infos if info.get("error")]
    if failures:
        # Tables need the full suite; report what broke instead.
        print(
            f"{len(failures)} of {len(infos)} benchmark(s) failed:",
            file=sys.stderr,
        )
        for info in failures:
            print(f"  {info['name']}: {info['error']}", file=sys.stderr)
    else:
        sys.stdout.write(run_all_experiments(records))

    for info in infos:
        record = records.get(info["name"])
        if record is not None:
            info["executors"] = {
                "mat2c": record.mat2c.report.execution_seconds,
                "mcc": record.mcc.report.execution_seconds,
                "interp": record.interp.report.execution_seconds,
                "mat2c_nogctd": (
                    record.mat2c_nogctd.report.execution_seconds
                ),
            }
    hits = sum(1 for info in infos if info.get("cache_hit"))
    payload = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "pipeline_version": PIPELINE_VERSION,
        "wall_seconds": sweep_seconds,
        "batch": {
            "executor": executor,
            "jobs": args.jobs,
            "wall_seconds": sweep_seconds,
        },
        "cache": {
            "root": str(cache_root) if cache_root else None,
            "hits": hits,
            "misses": len(infos) - hits,
            "entries": (
                len(ArtifactCache(cache_root).entries())
                if cache_root
                else 0
            ),
        },
        "benchmarks": infos,
    }
    out_dir = (
        Path(args.output_dir) if args.output_dir else _repo_root()
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = (
        time.strftime("%Y%m%d-%H%M%S")
        + f"-{int(time.time() * 1000) % 1000:03d}"
    )
    out_path = out_dir / f"BENCH_{stamp}.json"
    out_path.write_text(json.dumps(payload, indent=2))
    if cache_root:
        from repro.service.stats import write_telemetry

        write_telemetry(payload, cache_root)
    print(
        f"\nbench: {sweep_seconds:.2f} s ({executor}), "
        f"{hits}/{len(infos)} cache hits -> {out_path}",
        file=sys.stderr,
    )
    return 1 if failures else 0


def cmd_serve(args) -> int:
    """Run the long-lived compile server (see :mod:`repro.server`)."""
    from repro.server import ServerConfig, serve

    config = ServerConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        cache_root="" if args.no_cache else (
            args.cache_dir or ".repro-cache"
        ),
        batch_jobs=args.batch_jobs,
        drain_seconds=args.drain_seconds,
        degrade=not args.no_degrade,
        gctd_deadline_seconds=args.gctd_deadline,
    )
    if args.workers is not None:
        config.workers = args.workers
    if args.fault_plan:
        from repro.faults import (
            ENABLE_FAULTS_ENV,
            FaultPlanError,
            faults_enabled,
            load_fault_plan,
        )

        if not faults_enabled():
            return _fail(
                "--fault-plan injects failures on purpose; set "
                f"{ENABLE_FAULTS_ENV}=1 in the environment to confirm "
                "this server is allowed to misbehave"
            )
        try:
            load_fault_plan(args.fault_plan)  # fail fast on bad JSON
        except FaultPlanError as exc:
            return _fail(str(exc))
        config.fault_plan_path = args.fault_plan
    try:
        config.validate()
    except ValueError as exc:
        return _fail(str(exc))
    return serve(config)


def cmd_client(args) -> int:
    """Talk to a running server over HTTP (stdlib urllib only)."""
    import urllib.error

    from repro.server.client import (
        TRANSPORT_ERRORS,
        RetryPolicy,
        ServerClient,
    )

    retry = None
    if getattr(args, "retries", 0):
        retry = RetryPolicy(
            retries=args.retries,
            backoff_seconds=args.retry_backoff,
        )
    client = ServerClient(args.url, timeout=args.timeout, retry=retry)
    try:
        if args.action == "health":
            response = client.health()
            print(json.dumps(response.payload, indent=2))
            return 0 if response.ok else 1
        if args.action == "metrics":
            sys.stdout.write(client.metrics_text())
            return 0
        # action == "compile"
        options = {}
        if getattr(args, "no_gctd", False):
            options["gctd"] = False
        response = client.compile(
            _load(args.files),
            entry=args.entry,
            options=options or None,
            deadline_seconds=args.deadline,
            emit_c=args.emit_c,
            verify_plan=args.verify_plan,
        )
    except urllib.error.URLError as exc:
        return _fail(f"cannot reach server at {args.url}: {exc.reason}")
    except TRANSPORT_ERRORS as exc:
        return _fail(str(exc))
    if not response.ok:
        # the server answers non-2xx with a {code, message, detail}
        # envelope; render it as one line and exit nonzero
        return _fail(response.envelope().summary())
    payload = response.payload
    stats = payload["stats"]
    print(f"entry function        : {payload['entry']}")
    print(f"variables at GCTD     : {stats['variables']}")
    print(
        f"subsumed (s/d)        : "
        f"{stats['static_subsumed']}/{stats['dynamic_subsumed']}"
    )
    print(
        f"storage reduction     : {stats['storage_reduction_kb']:.2f} KB"
    )
    print(
        f"colors / groups       : "
        f"{stats['colors']} / {stats['groups']}"
    )
    print(f"stack frame           : {stats['stack_frame_bytes']} B")
    print(f"fingerprint           : {payload['fingerprint'][:16]}…")
    print(f"cache_hit             : {payload['cache_hit']}")
    if payload.get("degraded"):
        print("degraded              : True (mcc all-heap fallback plan)")
    verification = payload.get("verification")
    if verification is not None:
        verdict = "sound" if verification["ok"] else "UNSOUND"
        print(
            f"plan verification     : {verdict} "
            f"({len(verification['violations'])} violations)"
        )
    if args.emit_c:
        sys.stdout.write(payload["c_source"])
    if verification is not None and not verification["ok"]:
        return 1
    return 0


def cmd_chaos(args) -> int:
    """Hammer a running server and check the robustness invariants.

    Sends ``--requests`` concurrent compiles (cycling through the
    benchmark suite, all with ``verify_plan``) through the retrying
    client, then asserts what the failure model promises no matter
    what faults the server injects on itself:

    * every 2xx body parses, reports ``ok``, and carries a *sound*
      verification report (degraded or not);
    * every non-2xx is a typed ``{code, message, detail}`` envelope;
    * the server is still alive (``/readyz``) afterwards.

    Transport-level failures (dropped connections that outlast the
    retry budget) are reported but are not corruption.  Exit 0 iff
    every invariant held.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.bench.suite import BENCHMARK_NAMES, load_sources
    from repro.server.client import (
        TRANSPORT_ERRORS,
        RetryPolicy,
        ServerClient,
    )

    names = list(BENCHMARK_NAMES)
    sources_by_name = {name: load_sources(name) for name in names}
    policy = RetryPolicy(
        retries=args.retries,
        backoff_seconds=args.retry_backoff,
        seed=args.seed,
    )

    def one(index: int):
        name = names[index % len(names)]
        client = ServerClient(args.url, timeout=args.timeout, retry=policy)
        try:
            response = client.compile(
                sources_by_name[name],
                verify_plan=True,
                name=f"chaos-{index}-{name}",
            )
        except TRANSPORT_ERRORS as exc:
            return ("transport", f"request {index} ({name}): {exc}")
        if response.status == 200:
            payload = response.payload
            if not payload or not payload.get("ok"):
                return (
                    "corrupt",
                    f"request {index} ({name}): 2xx body not ok: "
                    f"{response.text[:200]!r}",
                )
            verification = payload.get("verification")
            if not isinstance(verification, dict) or not verification.get(
                "ok"
            ):
                return (
                    "corrupt",
                    f"request {index} ({name}): 2xx without a clean "
                    "verification report",
                )
            return (
                "degraded" if payload.get("degraded") else "ok",
                response.status,
            )
        envelope = response.envelope()
        if not envelope.code or not envelope.message:
            return (
                "corrupt",
                f"request {index} ({name}): non-2xx {response.status} "
                f"without an error envelope: {response.text[:200]!r}",
            )
        return ("refused", response.status)

    with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
        outcomes = list(pool.map(one, range(args.requests)))

    counts: dict[str, int] = {}
    problems: list[str] = []
    transport: list[str] = []
    for outcome in outcomes:
        counts[outcome[0]] = counts.get(outcome[0], 0) + 1
        if outcome[0] == "corrupt":
            problems.append(outcome[1])
        elif outcome[0] == "transport":
            transport.append(outcome[1])

    probe = ServerClient(args.url, timeout=args.timeout, retry=policy)
    try:
        alive = probe.ready().status == 200
    except TRANSPORT_ERRORS:
        alive = False
    if not alive:
        problems.append("server did not answer /readyz after the run")

    summary = ", ".join(
        f"{kind}={counts[kind]}" for kind in sorted(counts)
    )
    print(
        f"chaos: {args.requests} requests x "
        f"{args.concurrency} workers -> {summary or 'nothing ran'}; "
        f"readyz={'ok' if alive else 'DOWN'}"
    )
    for line in transport[:5]:
        print(f"chaos: transport (allowed): {line}", file=sys.stderr)
    for line in problems:
        print(f"chaos: INVARIANT VIOLATED: {line}", file=sys.stderr)
    return 1 if problems else 0


def cmd_stats(args) -> int:
    """Render the most recent telemetry JSON (or a given file)."""
    from repro.service.cache import DEFAULT_CACHE_ROOT
    from repro.service.stats import find_latest_telemetry, render_stats

    if args.file:
        path = Path(args.file)
    else:
        path = find_latest_telemetry(
            cache_root=args.cache_dir or DEFAULT_CACHE_ROOT
        )
    if path is None or not path.is_file():
        print(
            "no telemetry found (run `repro bench` or "
            "`repro compile --cache` first)",
            file=sys.stderr,
        )
        return 1
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"could not read telemetry {path}: {exc}", file=sys.stderr)
        return 1
    print(f"telemetry: {path}")
    sys.stdout.write(render_stats(payload))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GCTD array-storage-coalescing MATLAB compiler "
            "(PLDI 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile M-files and print GCTD statistics"
    )
    p_compile.add_argument("files", nargs="+")
    p_compile.add_argument("--no-gctd", action="store_true")
    p_compile.add_argument("-v", "--verbose", action="store_true")
    p_compile.add_argument(
        "--partial",
        action="store_true",
        help="report §2.1 partial-interference opportunities",
    )
    p_compile.add_argument(
        "--cache",
        action="store_true",
        help="use the content-addressed artifact cache",
    )
    p_compile.add_argument(
        "--cache-dir", help="cache root (default .repro-cache)"
    )
    p_compile.add_argument(
        "--trace",
        action="store_true",
        help="print pass-level telemetry",
    )
    p_compile.add_argument(
        "--verify-plan",
        action="store_true",
        help="run the independent plan checker as a post-pass",
    )
    p_compile.set_defaults(fn=cmd_compile)

    p_verify = sub.add_parser(
        "verify",
        help="check allocation-plan soundness (repro.verify)",
    )
    p_verify.add_argument("files", nargs="*")
    p_verify.add_argument(
        "--suite",
        action="store_true",
        help="verify every benchmark program",
    )
    p_verify.add_argument(
        "--differential",
        action="store_true",
        help="also run all execution models and diff outputs/meters",
    )
    p_verify.add_argument(
        "--mutation",
        action="store_true",
        help="self-test: flip one coalescing decision and require "
        "the checker to flag it",
    )
    p_verify.add_argument("--no-gctd", action="store_true")
    p_verify.set_defaults(fn=cmd_verify)

    p_schema = sub.add_parser(
        "api-schema", help="print the typed wire-format schema"
    )
    p_schema.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed api-schema.json",
    )
    p_schema.add_argument(
        "--write",
        action="store_true",
        help="refresh the committed api-schema.json",
    )
    p_schema.set_defaults(fn=cmd_api_schema)

    p_run = sub.add_parser("run", help="compile and execute")
    p_run.add_argument("files", nargs="+")
    p_run.add_argument(
        "--model",
        choices=("mat2c", "mcc", "interp"),
        default="mat2c",
    )
    p_run.add_argument("--seed", type=int, default=20030609)
    p_run.add_argument("--stats", action="store_true")
    p_run.add_argument("--no-gctd", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_emit = sub.add_parser("emit-c", help="print the C translation")
    p_emit.add_argument("files", nargs="+")
    p_emit.add_argument("--no-gctd", action="store_true")
    p_emit.set_defaults(fn=cmd_emit_c)

    p_bench = sub.add_parser(
        "bench", help="regenerate the paper's tables and figures"
    )
    p_bench.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="parallel compile/measure workers (default: cpu count)",
    )
    p_bench.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the artifact cache",
    )
    p_bench.add_argument(
        "--cache-dir", help="cache root (default .repro-cache)"
    )
    p_bench.add_argument(
        "--output-dir",
        help="where to write BENCH_<timestamp>.json (default: cwd)",
    )
    p_bench.set_defaults(fn=cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived compile server"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads (default: min(4, cpu count))",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission queue bound; beyond it requests get 429",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="default per-request deadline in seconds",
    )
    p_serve.add_argument(
        "--batch-jobs",
        type=int,
        default=1,
        help="default /v1/batch parallelism",
    )
    p_serve.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        help="graceful-shutdown drain budget",
    )
    p_serve.add_argument("--no-cache", action="store_true")
    p_serve.add_argument(
        "--cache-dir", help="cache root (default .repro-cache)"
    )
    p_serve.add_argument(
        "--fault-plan",
        default="",
        help=(
            "fault-plan JSON for chaos testing; refused unless "
            "REPRO_ENABLE_FAULTS=1 is set"
        ),
    )
    p_serve.add_argument(
        "--no-degrade",
        action="store_true",
        help="error instead of falling back to the mcc plan on "
        "GCTD failure",
    )
    p_serve.add_argument(
        "--gctd-deadline",
        type=float,
        default=0.0,
        help="wall-clock budget for the GCTD pass before degrading "
        "(seconds; 0 = unlimited)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_client = sub.add_parser(
        "client", help="submit work to a running compile server"
    )
    client_sub = p_client.add_subparsers(dest="action", required=True)
    c_compile = client_sub.add_parser(
        "compile", help="compile M-files on the server"
    )
    c_compile.add_argument("files", nargs="+")
    c_compile.add_argument(
        "--url", default="http://127.0.0.1:8765"
    )
    c_compile.add_argument("--entry", default=None)
    c_compile.add_argument("--no-gctd", action="store_true")
    c_compile.add_argument(
        "--emit-c",
        action="store_true",
        help="also print the C translation",
    )
    c_compile.add_argument(
        "--verify-plan",
        action="store_true",
        help="ask the server to run the plan checker",
    )
    c_compile.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds (server default: 60)",
    )
    c_compile.add_argument("--timeout", type=float, default=120.0)
    c_compile.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry transient failures (429/5xx/transport) this many "
        "times with jittered exponential backoff",
    )
    c_compile.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help="base backoff in seconds (doubles per attempt, "
        "full jitter)",
    )
    c_compile.set_defaults(fn=cmd_client)
    for action in ("health", "metrics"):
        c_action = client_sub.add_parser(
            action, help=f"GET the server's {action} endpoint"
        )
        c_action.add_argument(
            "--url", default="http://127.0.0.1:8765"
        )
        c_action.add_argument(
            "--timeout", type=float, default=30.0
        )
        c_action.set_defaults(fn=cmd_client)

    p_chaos = sub.add_parser(
        "chaos",
        help="hammer a running server and check robustness invariants",
    )
    p_chaos.add_argument("--url", default="http://127.0.0.1:8765")
    p_chaos.add_argument(
        "--requests", type=int, default=100, help="total compiles to send"
    )
    p_chaos.add_argument(
        "--concurrency", type=int, default=8, help="client threads"
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="retry-jitter seed"
    )
    p_chaos.add_argument("--timeout", type=float, default=30.0)
    p_chaos.add_argument("--retries", type=int, default=4)
    p_chaos.add_argument("--retry-backoff", type=float, default=0.05)
    p_chaos.set_defaults(fn=cmd_chaos)

    p_stats = sub.add_parser(
        "stats", help="render pass-level telemetry JSON"
    )
    p_stats.add_argument(
        "file",
        nargs="?",
        help="telemetry/BENCH json (default: newest available)",
    )
    p_stats.add_argument(
        "--cache-dir", help="cache root (default .repro-cache)"
    )
    p_stats.set_defaults(fn=cmd_stats)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
