"""Command-line interface: ``python -m repro <command> …``.

Commands:

* ``compile FILES…``  — compile M-files, print GCTD statistics
* ``run FILES…``      — compile and execute (mat2c/mcc/interp model)
* ``emit-c FILES…``   — print the C translation
* ``bench [NAMES…]``  — run the paper's experiment harness
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.core.gctd import GCTDOptions
from repro.runtime.builtins import RuntimeContext


def _load(files: list[str]) -> dict[str, str]:
    sources: dict[str, str] = {}
    for filename in files:
        path = Path(filename)
        sources[path.name] = path.read_text()
    return sources


def _options(args) -> CompilerOptions:
    return CompilerOptions(
        gctd=GCTDOptions(enabled=not getattr(args, "no_gctd", False))
    )


def cmd_compile(args) -> int:
    result = compile_program(_load(args.files), options=_options(args))
    stats = result.report
    print(f"entry function        : {result.program.entry}")
    print(f"variables at GCTD     : {stats.original_variable_count}")
    print(
        f"subsumed (s/d)        : "
        f"{stats.static_subsumed}/{stats.dynamic_subsumed}"
    )
    print(f"storage reduction     : {stats.storage_reduction_kb:.2f} KB")
    print(f"colors / groups       : {stats.color_count} / {stats.group_count}")
    print(f"stack frame           : {result.plan.stack_frame_bytes()} B")
    if args.verbose:
        print()
        for group in result.plan.groups:
            size = (
                f"{group.static_size}B"
                if group.static_size is not None
                else "symbolic"
            )
            print(
                f"group {group.gid:3d} [{group.storage.value}] "
                f"{group.intrinsic.name:8s} {size:>10s} "
                f"{group.members}"
            )
    if args.partial:
        from repro.core.partial import find_partial_interference

        report = find_partial_interference(
            result.ssa_func, result.env, result.gctd.graph
        )
        print()
        print(
            f"partial-interference opportunities (§2.1): "
            f"{len(report.pairs)} pairs, "
            f"{report.total_potential_bytes} B foregone"
        )
        for pair in report.pairs[:10]:
            print(
                f"  {pair.array} could overlap {pair.other} "
                f"({pair.potential_bytes} B)"
            )
    return 0


def cmd_run(args) -> int:
    result = compile_program(_load(args.files), options=_options(args))
    ctx = RuntimeContext(seed=args.seed)
    if args.model == "mat2c":
        run = result.run_mat2c(ctx)
    elif args.model == "mcc":
        run = result.run_mcc(ctx)
    else:
        run = result.run_interpreter(ctx)
    sys.stdout.write(run.output)
    if args.stats:
        report = run.report
        print(f"--- {args.model} model ---", file=sys.stderr)
        print(
            f"time      : {report.execution_seconds * 1e3:.3f} ms "
            "(simulated, 440 MHz)",
            file=sys.stderr,
        )
        print(
            f"avg stack+heap : {report.avg_dynamic_kb:.1f} KB",
            file=sys.stderr,
        )
        print(
            f"avg VM / RSS   : {report.avg_virtual_kb:.1f} / "
            f"{report.avg_resident_kb:.1f} KB",
            file=sys.stderr,
        )
    return 0


def cmd_emit_c(args) -> int:
    result = compile_program(_load(args.files), options=_options(args))
    sys.stdout.write(result.generate_c())
    return 0


def cmd_bench(args) -> int:
    from repro.bench.experiments import run_all_experiments

    sys.stdout.write(run_all_experiments())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GCTD array-storage-coalescing MATLAB compiler "
            "(PLDI 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile M-files and print GCTD statistics"
    )
    p_compile.add_argument("files", nargs="+")
    p_compile.add_argument("--no-gctd", action="store_true")
    p_compile.add_argument("-v", "--verbose", action="store_true")
    p_compile.add_argument(
        "--partial",
        action="store_true",
        help="report §2.1 partial-interference opportunities",
    )
    p_compile.set_defaults(fn=cmd_compile)

    p_run = sub.add_parser("run", help="compile and execute")
    p_run.add_argument("files", nargs="+")
    p_run.add_argument(
        "--model",
        choices=("mat2c", "mcc", "interp"),
        default="mat2c",
    )
    p_run.add_argument("--seed", type=int, default=20030609)
    p_run.add_argument("--stats", action="store_true")
    p_run.add_argument("--no-gctd", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_emit = sub.add_parser("emit-c", help="print the C translation")
    p_emit.add_argument("files", nargs="+")
    p_emit.add_argument("--no-gctd", action="store_true")
    p_emit.set_defaults(fn=cmd_emit_c)

    p_bench = sub.add_parser(
        "bench", help="regenerate the paper's tables and figures"
    )
    p_bench.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
