"""Human-readable compilation reports (Table-2-style statistics).

Formats one compilation's GCTD outcome the way the paper reports it:
the s/d subsumption column, storage reduction, the per-group layout,
and the ∘/+/± resize annotations of §3.2.2.
"""

from __future__ import annotations

from io import StringIO

from repro.core.allocation import (
    GROW_ONLY,
    MAY_RESIZE,
    NO_RESIZE,
    StorageClass,
)

RESIZE_SYMBOL = {NO_RESIZE: "o", GROW_ONLY: "+", MAY_RESIZE: "~"}


def reduction_summary(result) -> str:
    """One-paragraph Table-2 row for a compilation result."""
    stats = result.report
    return (
        f"{stats.static_subsumed}/{stats.dynamic_subsumed} of "
        f"{stats.original_variable_count} variables subsumed "
        f"({stats.storage_reduction_kb:.2f} KB static reduction, "
        f"{stats.color_count} colors, {stats.group_count} groups)"
    )


def storage_map(result, include_singletons: bool = False) -> str:
    """The full allocation plan as text: groups, members, marks."""
    out = StringIO()
    plan = result.plan
    out.write(f"stack frame: {plan.stack_frame_bytes()} bytes\n")
    for group in plan.groups:
        if len(group.members) < 2 and not include_singletons:
            continue
        size = (
            f"{group.static_size} B"
            if group.static_size is not None
            else "symbolic"
        )
        out.write(
            f"group {group.gid} [{group.storage.value}, "
            f"{group.intrinsic.name}, {size}] root={group.root}\n"
        )
        for member in group.members:
            mark = plan.resize_marks.get(member)
            symbol = RESIZE_SYMBOL.get(mark, " ") if mark else " "
            vartype = result.env.of(member)
            out.write(f"  {symbol} {member:<24s} {vartype}\n")
    return out.getvalue()


def interference_summary(result) -> str:
    """Phase-1 statistics: edge counts and coalescing outcomes."""
    stats = result.gctd.interference_stats
    return (
        f"interference edges: {stats.duchain_edges} du-chain + "
        f"{stats.opsem_edges} operator-semantics; "
        f"φ-webs coalesced: {stats.phi_coalesced} "
        f"(blocked: {stats.phi_blocked})"
    )


def telemetry_table(aggregated: list[dict]) -> str:
    """Per-pass telemetry table (pass, calls, wall ms, IR size).

    Takes the output of
    :func:`repro.service.telemetry.aggregate_passes` — plain dicts, so
    this module stays independent of the service layer.
    """
    if not aggregated:
        return "(no pass telemetry recorded)"
    out = StringIO()
    out.write(
        f"{'pass':<12}{'calls':>6}{'wall (ms)':>11}{'IR instrs':>11}\n"
    )
    total_ms = 0.0
    for row in aggregated:
        wall_ms = row["wall_seconds"] * 1e3
        total_ms += wall_ms
        instrs = row.get("instructions")
        out.write(
            f"{row['name']:<12}{row['calls']:>6}{wall_ms:>11.2f}"
            f"{instrs if instrs is not None else '-':>11}\n"
        )
    out.write(f"{'total':<12}{'':>6}{total_ms:>11.2f}\n")
    return out.getvalue().rstrip()


def full_report(result) -> str:
    parts = [
        reduction_summary(result),
        interference_summary(result),
        "",
        storage_map(result),
    ]
    return "\n".join(parts)
