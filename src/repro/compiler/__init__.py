"""The mat2c-style compiler driver."""

from repro.compiler.pipeline import (
    CompilationResult,
    CompilerOptions,
    compile_program,
    compile_source,
)

__all__ = [
    "CompilationResult",
    "CompilerOptions",
    "compile_program",
    "compile_source",
]
