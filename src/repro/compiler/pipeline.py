"""The mat2c-style compilation pipeline.

``compile_source``/``compile_program`` run the paper's translator
stages end to end:

parse → lower to SO-form IR (inlining user calls) → SSA → cleanup
passes (copy propagation, DCE, constant folding, CSE) → type/shape
inference ⇄ shape-query folding (iterated: each folding round can turn
more shapes static) → **GCTD** → SSA inversion with identity-copy
folding → executable IR + allocation plan (+ C, via the back end).

The result object can execute the program under the mat2c VM, the mcc
baseline model, and the AST interpreter, so one compilation supports
the paper's whole comparison matrix.
"""

from __future__ import annotations

import copy
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.analysis.pass_manager import PassStatistics, run_cleanup_pipeline
from repro.core.gctd import (
    GCTDOptions,
    GCTDResult,
    mcc_fallback_result,
    run_gctd,
)
from repro.core.optionset import OptionSet
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_program
from repro.interp.interpreter import InterpResult, interpret
from repro.ir.cfg import IRFunction
from repro.ir.lower import lower_program
from repro.mccsim.executor import MccExecutor
from repro.runtime.builtins import RuntimeContext
from repro.ssa.construct import construct_ssa
from repro.ssa.invert import invert_ssa
from repro.typing.infer import TypeEnvironment, infer_types
from repro.typing.shapefold import fold_shape_queries
from repro.vm.base import ExecutionResult
from repro.vm.executor import Mat2CExecutor

_MAX_INFERENCE_ROUNDS = 4

#: Version of the translation pipeline itself.  Part of every artifact
#: fingerprint (see :mod:`repro.service.fingerprint`); bump it whenever
#: a pass change makes previously cached compilation results stale.
#: "2": CompilationResult grew the `verification` field (plan checker).
PIPELINE_VERSION = "2"


class _NullSpan:
    """Detail sink used when no tracer is injected."""

    __slots__ = ("details",)

    def __init__(self) -> None:
        self.details: dict = {}


class _NullTracer:
    """Do-nothing stand-in for :class:`repro.service.telemetry.Tracer`.

    The pipeline only ever talks to this interface, so the service
    layer stays an optional dependency: injecting a real tracer turns
    on pass-level telemetry, omitting it costs (almost) nothing.
    """

    @contextmanager
    def span(self, name: str, func: IRFunction | None = None):
        yield _NullSpan()

    def event(self, name: str, **details) -> None:
        pass


_NULL_TRACER = _NullTracer()


@dataclass(slots=True)
class CompilerOptions(OptionSet):
    gctd: GCTDOptions = field(default_factory=GCTDOptions)
    enable_cse: bool = True
    enable_constfold: bool = True
    enable_shapefold: bool = True
    max_steps: int = 20_000_000


@dataclass(slots=True)
class CompilationResult:
    program: ast.Program
    ssa_func: IRFunction          # SSA form (as GCTD saw it)
    exec_func: IRFunction         # inverted, executable IR
    env: TypeEnvironment
    gctd: GCTDResult
    pass_stats: PassStatistics
    options: CompilerOptions
    identity_copies_folded: int = 0
    #: result of the independent plan checker (see :mod:`repro.verify`);
    #: None unless the compilation ran with ``verify_plan=True``.
    verification: object = None
    #: True when GCTD failed and the plan is the mcc all-heap fallback.
    #: Read via ``getattr(result, "degraded", False)`` — cached pickles
    #: from before this field existed lack the slot.
    degraded: bool = False
    #: why the compilation degraded (empty when it did not).
    degraded_reason: str = ""

    @property
    def plan(self):
        return self.gctd.plan

    @property
    def report(self):
        return self.gctd.plan.stats

    # -- execution front doors ------------------------------------------

    def run_mat2c(
        self, ctx: RuntimeContext | None = None, aliased: bool = False
    ) -> ExecutionResult:
        """Execute under the GCTD-allocated mat2c model.

        ``aliased=True`` routes reads and writes through the shared
        group buffers (like the generated C), which validates that the
        coalescing itself preserves the program's meaning.
        """
        executor = Mat2CExecutor(
            self.exec_func,
            self.plan,
            ctx=ctx,
            max_steps=self.options.max_steps,
            aliased=aliased,
        )
        return executor.run()

    def run_mcc(self, ctx: RuntimeContext | None = None) -> ExecutionResult:
        """Execute under the mcc library/mxArray model."""
        executor = MccExecutor(
            self.exec_func, ctx=ctx, max_steps=self.options.max_steps
        )
        return executor.run()

    def run_interpreter(
        self, ctx: RuntimeContext | None = None
    ) -> InterpResult:
        """Execute under the tree-walking interpreter (semantic oracle)."""
        return interpret(
            self.program, ctx, max_steps=self.options.max_steps
        )

    def generate_c(self) -> str:
        """Emit the C translation (see :mod:`repro.backend.cgen`)."""
        from repro.backend.cgen import generate_c

        return generate_c(self)


def compile_program(
    sources: dict[str, str],
    entry: str | None = None,
    options: CompilerOptions | None = None,
    *,
    tracer=None,
    cache=None,
    verify_plan: bool = False,
    degrade: bool = False,
    gctd_deadline_seconds: float | None = None,
    injector=None,
) -> CompilationResult:
    """Compile a set of M-files (filename → text).

    ``tracer`` and ``cache`` are optional injected dependencies (see
    :mod:`repro.service`): a tracer records per-pass wall time and IR
    statistics, a cache short-circuits the whole pipeline when an
    identical request (same sources, options, and pipeline version)
    has been compiled before.

    ``verify_plan=True`` runs the independent plan checker
    (:mod:`repro.verify`) as a post-pass and stores its report on
    ``result.verification``.  Verification never alters the artifact
    — it is not part of the fingerprint, so a cached result is
    verified on retrieval when the cached copy lacks a report.

    ``degrade=True`` turns a GCTD failure (an exception out of the
    pass, or exceeding ``gctd_deadline_seconds`` of wall time) into a
    *degraded* result instead of an error: the allocation plan falls
    back to the mcc all-heap model, ``result.degraded`` is set, and
    the fallback plan is still checked for soundness.  Degraded
    results are never cached — the failure may be transient, and a
    later compile should get another shot at the real plan.  These
    knobs are deliberately keyword-only and outside
    :class:`CompilerOptions` so they never perturb artifact
    fingerprints.  ``injector`` is an optional
    :class:`repro.faults.FaultInjector` consulted at the ``gctd.run``
    site (chaos testing).
    """
    options = options or CompilerOptions()
    tracer = tracer if tracer is not None else _NULL_TRACER
    if cache is not None:
        cached = cache.get_program(sources, entry, options, tracer=tracer)
        if cached is not None:
            if verify_plan and cached.verification is None:
                _verify_result(cached, tracer)
            return cached
    result = _run_pipeline(
        sources,
        entry,
        options,
        tracer,
        degrade=degrade,
        gctd_deadline_seconds=gctd_deadline_seconds,
        injector=injector,
    )
    if verify_plan:
        _verify_result(result, tracer)
    if cache is not None and not result.degraded:
        cache.put_program(sources, entry, options, result, tracer=tracer)
    return result


def _verify_result(result: CompilationResult, tracer) -> None:
    from repro.verify import verify_compilation

    with tracer.span("verify", result.ssa_func) as sp:
        result.verification = verify_compilation(result)
        sp.details["violations"] = len(result.verification.violations)


def _run_pipeline(
    sources: dict[str, str],
    entry: str | None,
    options: CompilerOptions,
    tracer,
    *,
    degrade: bool = False,
    gctd_deadline_seconds: float | None = None,
    injector=None,
) -> CompilationResult:
    with tracer.span("parse"):
        program = parse_program(sources, entry)
    with tracer.span("lower") as sp:
        func = lower_program(program)
        sp.details["functions_inlined"] = len(program.functions) - 1
    with tracer.span("ssa", func):
        construct_ssa(func)
    with tracer.span("cleanup", func) as sp:
        pass_stats = run_cleanup_pipeline(
            func,
            enable_cse=options.enable_cse,
            enable_constfold=options.enable_constfold,
        )
        sp.details["iterations"] = pass_stats.iterations
    with tracer.span("infer", func):
        env = infer_types(func)
    if options.enable_shapefold:
        for round_no in range(_MAX_INFERENCE_ROUNDS):
            with tracer.span("shapefold", func) as sp:
                folded = fold_shape_queries(func, env)
                sp.details["queries_folded"] = folded
            if not folded:
                break
            with tracer.span("cleanup", func):
                run_cleanup_pipeline(
                    func,
                    enable_cse=options.enable_cse,
                    enable_constfold=options.enable_constfold,
                )
            with tracer.span("infer", func):
                env = infer_types(func)

    with tracer.span("gctd", func) as sp:
        degraded_reason = ""
        started = time.monotonic()
        try:
            if injector is not None:
                injector.interrupt("gctd.run")
            gctd = run_gctd(func, env, options.gctd)
        except Exception as exc:
            if not degrade:
                raise
            degraded_reason = f"gctd failed: {exc}"
        else:
            elapsed = time.monotonic() - started
            if (
                degrade
                and gctd_deadline_seconds
                and elapsed > gctd_deadline_seconds
            ):
                degraded_reason = (
                    f"gctd exceeded deadline: {elapsed:.3f}s > "
                    f"{gctd_deadline_seconds:.3f}s"
                )
        if degraded_reason:
            gctd = mcc_fallback_result(func, env)
            _check_fallback_plan(func, env, gctd.plan)
            sp.details["degraded"] = degraded_reason
        stats = gctd.interference_stats
        sp.details["interference_edges"] = (
            stats.duchain_edges + stats.opsem_edges
        )
        sp.details["interference_nodes"] = len(gctd.graph.nodes())
        sp.details["colors"] = gctd.plan.stats.color_count
        sp.details["groups"] = gctd.plan.stats.group_count

    with tracer.span("invert", func) as sp:
        ssa_snapshot = copy.deepcopy(func)
        invert_ssa(func)
        # Identity copies (same storage group) stay in the executable
        # IR — the environment is name-keyed — but they cost nothing in
        # the mat2c model and the C back end emits no code for them.
        # Count them here for the report.
        folded_copies = _count_identity_copies(func, gctd.plan)
        sp.details["identity_copies_folded"] = folded_copies

    return CompilationResult(
        program=program,
        ssa_func=ssa_snapshot,
        exec_func=func,
        env=env,
        gctd=gctd,
        pass_stats=pass_stats,
        options=options,
        identity_copies_folded=folded_copies,
        degraded=bool(degraded_reason),
        degraded_reason=degraded_reason,
    )


def _check_fallback_plan(func: IRFunction, env, plan) -> None:
    """Degraded is allowed; unsound is not.  Check before proceeding."""
    from repro.verify.checker import verify_plan as _verify

    report = _verify(func, env, plan)
    if not report.ok:
        raise RuntimeError(
            "mcc fallback plan failed verification: "
            + "; ".join(v.message for v in report.violations)
        )


def _count_identity_copies(func: IRFunction, plan) -> int:
    from repro.ir.instr import Var

    count = 0
    for instr in func.instructions():
        if (
            instr.op == "copy"
            and len(instr.args) == 1
            and isinstance(instr.args[0], Var)
            and plan.same_storage(instr.results[0], instr.args[0].name)
        ):
            count += 1
    return count


def compile_source(
    text: str,
    name: str = "main",
    options: CompilerOptions | None = None,
    *,
    tracer=None,
    cache=None,
) -> CompilationResult:
    """Compile a single M-file given as a string."""
    return compile_program(
        {f"{name}.m": text}, options=options, tracer=tracer, cache=cache
    )
