"""AST → SO-form IR lowering.

Responsibilities:

* break compound expressions into Single-Operator assignments through
  fresh temporaries (paper §2.3) — these temporaries are the main fuel
  for GCTD's storage coalescing;
* build the CFG for ``if``/``while``/``for``/``break``/``continue``;
* resolve MATLAB's call-versus-index ambiguity (``a(i)``) using the set
  of assigned names;
* desugar ``end`` subscripts to ``numel``/``size`` calls, ranges in
  ``for`` headers to counted loops, and matrix literals to
  ``horzcat``/``vertcat`` chains;
* inline user-defined function calls (the analysis in the paper is
  per-function; our whole-program IR corresponds to the fully inlined
  driver, which matches how the benchmark drivers invoke their main
  routine).  Recursion is rejected.

Short-circuit ``&&``/``||`` are lowered to the eager ``and``/``or`` —
the supported subset evaluates scalar, side-effect-free conditions, so
the meaning is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.frontend.source import Location, MatlabError, UNKNOWN_LOCATION
from repro.ir.cfg import Block, IRFunction, remove_unreachable_blocks
from repro.ir.instr import (
    AST_BINOP_TO_IR,
    Branch,
    Const,
    Instr,
    Jump,
    Operand,
    Ret,
    StrConst,
    Var,
)
from repro.runtime.names import BUILTIN_NAMES, CONSTANT_BUILTINS

_MAX_INLINE_DEPTH = 64


class LoweringError(MatlabError):
    pass


def _assigned_names(func: ast.FunctionDef) -> set[str]:
    """All names that appear as assignment targets (or loop/input vars)."""
    names = set(func.inputs)

    def scan_target(target: ast.Expr) -> None:
        if isinstance(target, ast.Ident):
            names.add(target.name)
        elif isinstance(target, ast.Apply) and isinstance(
            target.func, ast.Ident
        ):
            names.add(target.func.name)

    def scan(stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                scan_target(stmt.target)
            elif isinstance(stmt, ast.MultiAssign):
                for t in stmt.targets:
                    scan_target(t)
            elif isinstance(stmt, ast.If):
                for _, body in stmt.branches:
                    scan(body)
                scan(stmt.orelse)
            elif isinstance(stmt, ast.While):
                scan(stmt.body)
            elif isinstance(stmt, ast.For):
                names.add(stmt.var)
                scan(stmt.body)

    scan(func.body)
    return names


@dataclass(slots=True)
class _Scope:
    """Per-(inlined-)function lowering state."""

    func: ast.FunctionDef
    rename: dict[str, str]
    assigned: set[str]
    exit_block: Block | None = None  # target of `return`


@dataclass(slots=True)
class _LoopContext:
    continue_target: int
    break_target: int


class Lowerer:
    """Lowers a parsed :class:`Program` to one inlined IR function."""

    def __init__(self, program: ast.Program):
        self._program = program
        self._ir: IRFunction = None  # type: ignore[assignment]
        self._current: Block = None  # type: ignore[assignment]
        self._scopes: list[_Scope] = []
        self._loops: list[_LoopContext] = []
        self._inline_stack: list[str] = []
        self._inline_count = 0
        # (array operand, subscript position, subscript count) for `end`
        self._end_context: list[tuple[Operand, int, int]] = []

    # -- public entry ------------------------------------------------------

    def lower(self) -> IRFunction:
        entry = self._program.entry_function()
        if entry.inputs:
            raise LoweringError(
                f"entry function {entry.name!r} must take no arguments"
            )
        self._ir = IRFunction(entry.name)
        self._current = self._ir.entry_block()
        scope = _Scope(
            func=entry,
            rename={},
            assigned=_assigned_names(entry),
        )
        self._scopes.append(scope)
        self._lower_body(entry.body)
        if self._current.terminator is None:
            self._current.terminator = Ret()
        # `return` in the top-level function lowers directly to Ret, so
        # no exit block is needed for the entry scope.
        self._scopes.pop()
        remove_unreachable_blocks(self._ir)
        self._ir.verify()
        return self._ir

    # -- helpers -------------------------------------------------------------

    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _emit(
        self,
        op: str,
        results: list[str],
        args: list[Operand],
        location: Location = UNKNOWN_LOCATION,
    ) -> Instr:
        instr = Instr(op=op, results=results, args=args, location=location)
        self._current.append(instr)
        return instr

    def _fresh(self) -> str:
        return self._ir.new_temp()

    def _local(self, name: str) -> str:
        """Map a source name to its IR name in the current scope."""
        return self._scope.rename.get(name, name)

    def _start_block(self) -> Block:
        block = self._ir.new_block()
        self._current = block
        return block

    def _goto(self, block: Block) -> None:
        if self._current.terminator is None:
            self._current.terminator = Jump(block.id)
        self._current = block

    # -- statements ------------------------------------------------------

    def _lower_body(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if self._current.terminator is not None:
                break  # unreachable code after break/continue/return
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.MultiAssign):
            self._lower_multi_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr_stmt(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise LoweringError("'break' outside a loop")
            self._current.terminator = Jump(self._loops[-1].break_target)
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise LoweringError("'continue' outside a loop")
            self._current.terminator = Jump(self._loops[-1].continue_target)
        elif isinstance(stmt, ast.Return):
            exit_block = self._scope.exit_block
            if exit_block is None:
                self._current.terminator = Ret()
            else:
                self._current.terminator = Jump(exit_block.id)
        else:
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")

    def _display(self, name: str, source_name: str, loc: Location) -> None:
        self._emit(
            "display", [], [Var(name), StrConst(source_name)], loc
        )

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Ident):
            name = self._local(target.name)
            value = self._lower_expr_into(stmt.value, name, stmt.location)
            if stmt.display:
                self._display(value, target.name, stmt.location)
            return
        if isinstance(target, ast.Apply) and isinstance(
            target.func, ast.Ident
        ):
            # L-indexing: a(l1, ..., lm) = r  ⇒  a = subsasgn(a, r, l...)
            name = self._local(target.func.name)
            rhs = self._lower_expr(stmt.value)
            base: Operand = Var(name)
            subs = self._lower_subscripts(base, target.args)
            self._emit(
                "subsasgn", [name], [base, rhs, *subs], stmt.location
            )
            if stmt.display:
                self._display(name, target.func.name, stmt.location)
            return
        raise LoweringError("unsupported assignment target")

    def _lower_multi_assign(self, stmt: ast.MultiAssign) -> None:
        value = stmt.value
        if not (
            isinstance(value, ast.Apply)
            and isinstance(value.func, ast.Ident)
        ):
            raise LoweringError(
                "multi-assignment requires a function call on the right"
            )
        names: list[str] = []
        for t in stmt.targets:
            if not isinstance(t, ast.Ident):
                raise LoweringError(
                    "multi-assignment targets must be plain variables"
                )
            names.append(self._local(t.name))
        fname = value.func.name
        if self._is_user_function(fname):
            self._inline_call(fname, value.args, names, stmt.location)
        else:
            args = [self._lower_expr(a) for a in value.args]
            self._emit(f"call:{fname}", names, args, stmt.location)
        if stmt.display:
            for name, t in zip(names, stmt.targets):
                self._display(name, t.name, stmt.location)  # type: ignore[union-attr]

    def _lower_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        value = stmt.value
        # Effect-only builtin calls (disp/fprintf/...) produce no value.
        if isinstance(value, ast.Apply) and isinstance(value.func, ast.Ident):
            fname = value.func.name
            local_vars = self._scope.assigned
            if fname not in local_vars and not self._is_user_function(fname):
                args = [self._lower_expr(a) for a in value.args]
                self._emit(f"call:{fname}", [], args, stmt.location)
                return
        name = self._lower_expr(value)
        if isinstance(name, Var):
            ans = self._local("ans")
            self._scope.assigned.add("ans")
            self._emit("copy", [ans], [name], stmt.location)
            if stmt.display:
                self._display(ans, "ans", stmt.location)

    def _lower_if(self, stmt: ast.If) -> None:
        join = self._ir.new_block()
        for cond_expr, body in stmt.branches:
            cond = self._lower_expr(cond_expr)
            then_block = self._ir.new_block()
            else_block = self._ir.new_block()
            self._current.terminator = Branch(
                cond, then_block.id, else_block.id
            )
            self._current = then_block
            self._lower_body(body)
            if self._current.terminator is None:
                self._current.terminator = Jump(join.id)
            self._current = else_block
        self._lower_body(stmt.orelse)
        if self._current.terminator is None:
            self._current.terminator = Jump(join.id)
        self._current = join

    def _lower_while(self, stmt: ast.While) -> None:
        header = self._ir.new_block()
        self._goto(header)
        cond = self._lower_expr(stmt.condition)
        body_block = self._ir.new_block()
        exit_block = self._ir.new_block()
        self._current.terminator = Branch(
            cond, body_block.id, exit_block.id
        )
        self._loops.append(_LoopContext(header.id, exit_block.id))
        self._current = body_block
        self._lower_body(stmt.body)
        if self._current.terminator is None:
            self._current.terminator = Jump(header.id)
        self._loops.pop()
        self._current = exit_block

    def _lower_for(self, stmt: ast.For) -> None:
        """Counted lowering of ``for var = start:step:stop``.

        trip = floor((stop - start) / step); k = 0;
        while k <= trip: var = start + k * step; body; k = k + 1

        A non-range iterable is iterated by element index (vectors).
        """
        loc = stmt.location
        var = self._local(stmt.var)
        if isinstance(stmt.iterable, ast.Range):
            rng = stmt.iterable
            start = self._lower_expr(rng.start)
            step = (
                self._lower_expr(rng.step)
                if rng.step is not None
                else Const(1.0)
            )
            stop = self._lower_expr(rng.stop)
            span = self._fresh()
            self._emit("sub", [span], [stop, start], loc)
            ratio = self._fresh()
            self._emit("div", [ratio], [Var(span), step], loc)
            trip = self._fresh()
            self._emit("call:floor", [trip], [Var(ratio)], loc)

            counter = self._fresh()
            self._emit("copy", [counter], [Const(0.0)], loc)

            header = self._ir.new_block()
            self._goto(header)
            cond = self._fresh()
            self._emit("le", [cond], [Var(counter), Var(trip)], loc)
            body_block = self._ir.new_block()
            exit_block = self._ir.new_block()
            self._current.terminator = Branch(
                Var(cond), body_block.id, exit_block.id
            )
            # `continue` must still run the increment: give it its own block.
            incr_block = self._ir.new_block()
            self._loops.append(
                _LoopContext(incr_block.id, exit_block.id)
            )
            self._current = body_block
            # `forindex` = start + counter*step, but carries the loop
            # bounds so range inference can bound the loop variable
            # (needed to prove subscripts in-bounds, §3.1).
            self._emit(
                "forindex", [var], [start, step, stop, Var(counter)], loc
            )
            self._lower_body(stmt.body)
            if self._current.terminator is None:
                self._current.terminator = Jump(incr_block.id)
            self._current = incr_block
            self._emit("add", [counter], [Var(counter), Const(1.0)], loc)
            self._current.terminator = Jump(header.id)
            self._loops.pop()
            self._current = exit_block
            return

        # General iterable: iterate elements of a vector.
        vec = self._lower_expr(stmt.iterable)
        count = self._fresh()
        self._emit("call:numel", [count], [vec], loc)
        counter = self._fresh()
        self._emit("copy", [counter], [Const(1.0)], loc)
        header = self._ir.new_block()
        self._goto(header)
        cond = self._fresh()
        self._emit("le", [cond], [Var(counter), Var(count)], loc)
        body_block = self._ir.new_block()
        exit_block = self._ir.new_block()
        self._current.terminator = Branch(
            Var(cond), body_block.id, exit_block.id
        )
        incr_block = self._ir.new_block()
        self._loops.append(_LoopContext(incr_block.id, exit_block.id))
        self._current = body_block
        self._emit("subsref", [var], [vec, Var(counter)], loc)
        self._lower_body(stmt.body)
        if self._current.terminator is None:
            self._current.terminator = Jump(incr_block.id)
        self._current = incr_block
        self._emit("add", [counter], [Var(counter), Const(1.0)], loc)
        self._current.terminator = Jump(header.id)
        self._loops.pop()
        self._current = exit_block

    # -- expressions ----------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        """Lower to an operand (constants stay immediate)."""
        if isinstance(expr, ast.Num):
            value = complex(0.0, expr.value) if expr.is_imag else complex(
                expr.value, 0.0
            )
            return Const(value)
        if isinstance(expr, ast.Str):
            return StrConst(expr.value)
        if isinstance(expr, ast.Ident):
            return self._lower_ident(expr)
        name = self._lower_expr_into(expr, None, expr.location)
        return Var(name)

    def _lower_ident(self, expr: ast.Ident) -> Operand:
        name = expr.name
        if name in self._scope.assigned:
            return Var(self._local(name))
        if name in CONSTANT_BUILTINS:
            import math

            table = {
                "pi": math.pi,
                "eps": 2.220446049250313e-16,
                "Inf": math.inf,
                "inf": math.inf,
                "NaN": math.nan,
                "nan": math.nan,
            }
            return Const(complex(table[name], 0.0))
        if name in ("i", "j"):
            return Const(complex(0.0, 1.0))
        if self._is_user_function(name) or name in BUILTIN_NAMES:
            # Zero-argument call written without parens (e.g. `toc`).
            out = self._fresh()
            self._apply_call(name, [], [out], expr.location)
            return Var(out)
        raise LoweringError(
            f"{expr.location}: undefined name {name!r}"
        )

    def _lower_expr_into(
        self, expr: ast.Expr, target: str | None, loc: Location
    ) -> str:
        """Lower ``expr``, writing its value into ``target`` (or a temp)."""

        def out() -> str:
            return target if target is not None else self._fresh()

        if isinstance(expr, (ast.Num, ast.Str)):
            result = out()
            self._emit("const", [result], [self._lower_expr(expr)], loc)
            return result
        if isinstance(expr, ast.Ident):
            operand = self._lower_ident(expr)
            if isinstance(operand, Var) and target is None:
                return operand.name
            result = out()
            op = "copy" if isinstance(operand, Var) else "const"
            self._emit(op, [result], [operand], loc)
            return result
        if isinstance(expr, ast.UnaryOp):
            operand = self._lower_expr(expr.operand)
            result = out()
            opcode = {"-": "neg", "~": "not"}[expr.op]
            self._emit(opcode, [result], [operand], expr.location)
            return result
        if isinstance(expr, ast.BinaryOp):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            result = out()
            self._emit(
                AST_BINOP_TO_IR[expr.op], [result], [left, right],
                expr.location,
            )
            return result
        if isinstance(expr, ast.Transpose):
            operand = self._lower_expr(expr.operand)
            result = out()
            opcode = "ctranspose" if expr.conjugate else "transpose"
            self._emit(opcode, [result], [operand], expr.location)
            return result
        if isinstance(expr, ast.Range):
            start = self._lower_expr(expr.start)
            step = (
                self._lower_expr(expr.step)
                if expr.step is not None
                else Const(1.0)
            )
            stop = self._lower_expr(expr.stop)
            result = out()
            self._emit("range", [result], [start, step, stop], expr.location)
            return result
        if isinstance(expr, ast.MatrixLit):
            return self._lower_matrix(expr, target, loc)
        if isinstance(expr, ast.Apply):
            return self._lower_apply(expr, target)
        if isinstance(expr, ast.EndMarker):
            return self._lower_end_marker(expr, target)
        if isinstance(expr, ast.ColonAll):
            raise LoweringError(f"{expr.location}: ':' outside a subscript")
        raise LoweringError(f"unsupported expression {type(expr).__name__}")

    def _lower_end_marker(
        self, expr: ast.EndMarker, target: str | None
    ) -> str:
        if not self._end_context:
            raise LoweringError(
                f"{expr.location}: 'end' used outside indexing"
            )
        array, position, count = self._end_context[-1]
        result = target if target is not None else self._fresh()
        if count == 1:
            self._emit("call:numel", [result], [array], expr.location)
        else:
            self._emit(
                "call:size",
                [result],
                [array, Const(float(position))],
                expr.location,
            )
        return result

    def _lower_matrix(
        self, expr: ast.MatrixLit, target: str | None, loc: Location
    ) -> str:
        result = target if target is not None else self._fresh()
        if not expr.rows:
            self._emit("empty", [result], [], loc)
            return result
        if len(expr.rows) == 1 and len(expr.rows[0]) > 1:
            elems = [self._lower_expr(e) for e in expr.rows[0]]
            self._emit("horzcat", [result], elems, loc)
            return result
        row_vars: list[Operand] = []
        for row in expr.rows:
            elems = [self._lower_expr(e) for e in row]
            if len(elems) == 1:
                row_vars.append(elems[0])
            else:
                rv = self._fresh()
                self._emit("horzcat", [rv], elems, loc)
                row_vars.append(Var(rv))
        if len(row_vars) == 1:
            # Bind the single row to the result (copy if already a var).
            only = row_vars[0]
            if isinstance(only, Var) and target is None and only.name.endswith("$"):
                return only.name
            op = "copy" if isinstance(only, Var) else "const"
            self._emit(op, [result], [only], loc)
            return result
        self._emit("vertcat", [result], row_vars, loc)
        return result

    # -- calls / indexing --------------------------------------------------

    def _is_user_function(self, name: str) -> bool:
        return name in self._program.functions

    def _lower_apply(self, expr: ast.Apply, target: str | None) -> str:
        if not isinstance(expr.func, ast.Ident):
            raise LoweringError(
                f"{expr.location}: only named calls/indexing supported"
            )
        name = expr.func.name
        if name in self._scope.assigned:
            # Array indexing: subsref.
            base = Var(self._local(name))
            subs = self._lower_subscripts(base, expr.args)
            result = target if target is not None else self._fresh()
            self._emit(
                "subsref", [result], [base, *subs], expr.location
            )
            return result
        result = target if target is not None else self._fresh()
        self._apply_call(name, expr.args, [result], expr.location)
        return result

    def _apply_call(
        self,
        name: str,
        arg_exprs: list[ast.Expr],
        results: list[str],
        loc: Location,
    ) -> None:
        if self._is_user_function(name):
            self._inline_call(name, arg_exprs, results, loc)
            return
        if name not in BUILTIN_NAMES:
            raise LoweringError(f"{loc}: unknown function {name!r}")
        args = [self._lower_expr(a) for a in arg_exprs]
        self._emit(f"call:{name}", results, args, loc)

    def _lower_subscripts(
        self, base: Operand, arg_exprs: list[ast.Expr]
    ) -> list[Operand]:
        subs: list[Operand] = []
        count = len(arg_exprs)
        for position, arg in enumerate(arg_exprs, start=1):
            if isinstance(arg, ast.ColonAll):
                subs.append(StrConst(":"))
                continue
            self._end_context.append((base, position, count))
            try:
                subs.append(self._lower_expr(arg))
            finally:
                self._end_context.pop()
        return subs

    # -- user-function inlining -------------------------------------------

    def _inline_call(
        self,
        name: str,
        arg_exprs: list[ast.Expr],
        results: list[str],
        loc: Location,
    ) -> None:
        if name in self._inline_stack:
            raise LoweringError(
                f"{loc}: recursive call to {name!r} is not supported "
                "(the paper's translator compiles non-recursive MATLAB)"
            )
        if len(self._inline_stack) >= _MAX_INLINE_DEPTH:
            raise LoweringError(f"{loc}: inlining depth limit exceeded")
        callee = self._program.functions[name]
        if len(arg_exprs) > len(callee.inputs):
            raise LoweringError(
                f"{loc}: too many arguments to {name!r}"
            )
        if len(results) > max(1, len(callee.outputs)):
            raise LoweringError(
                f"{loc}: too many outputs requested from {name!r}"
            )

        args = [self._lower_expr(a) for a in arg_exprs]

        self._inline_count += 1
        suffix = f"@{self._inline_count}"
        rename = {
            local: f"{local}{suffix}"
            for local in _assigned_names(callee) | set(callee.outputs)
        }
        # Bind arguments to renamed parameters.
        for param, arg in zip(callee.inputs, args):
            op = "copy" if isinstance(arg, Var) else "const"
            self._emit(op, [rename[param]], [arg], loc)

        exit_block = self._ir.new_block()
        scope = _Scope(
            func=callee,
            rename=rename,
            assigned=_assigned_names(callee),
            exit_block=exit_block,
        )
        self._scopes.append(scope)
        self._inline_stack.append(name)
        saved_loops = self._loops
        self._loops = []
        try:
            self._lower_body(callee.body)
        finally:
            self._loops = saved_loops
            self._inline_stack.pop()
            self._scopes.pop()
        if self._current.terminator is None:
            self._current.terminator = Jump(exit_block.id)
        self._current = exit_block

        # Copy the callee outputs into the requested result names.
        for res, outname in zip(results, callee.outputs):
            self._emit("copy", [res], [Var(rename[outname])], loc)
        if results and not callee.outputs:
            raise LoweringError(
                f"{loc}: function {name!r} returns no value"
            )


def lower_program(program: ast.Program) -> IRFunction:
    """Lower a parsed program to a single inlined SO-form IR function."""
    return Lowerer(program).lower()
