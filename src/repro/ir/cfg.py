"""Basic blocks, the control-flow graph, and the IR function container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.source import MatlabError
from repro.ir.instr import Branch, Instr, Jump, Ret, Terminator, Var


class IRError(MatlabError):
    """Malformed IR detected by a verifier or a pass."""


@dataclass(slots=True)
class Block:
    id: int
    instrs: list[Instr] = field(default_factory=list)
    terminator: Terminator | None = None

    def successors(self) -> list[int]:
        return self.terminator.successors() if self.terminator else []

    def phis(self) -> list[Instr]:
        return [i for i in self.instrs if i.is_phi]

    def non_phis(self) -> list[Instr]:
        return [i for i in self.instrs if not i.is_phi]

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def __str__(self) -> str:
        lines = [f"B{self.id}:"]
        lines += [f"  {i}" for i in self.instrs]
        if self.terminator is not None:
            lines.append(f"  {self.terminator}")
        return "\n".join(lines)


class IRFunction:
    """A function in SO-form IR with an explicit CFG.

    Blocks are stored in a dict keyed by id; ``entry`` is always block
    0.  Fresh temporaries are drawn from a per-function counter and are
    named ``t<N>$`` — the ``$`` suffix cannot appear in MATLAB source
    identifiers, so temps can never collide with user variables.
    """

    def __init__(self, name: str, params: list[str] | None = None,
                 returns: list[str] | None = None):
        self.name = name
        self.params = list(params or [])
        self.returns = list(returns or [])
        self.blocks: dict[int, Block] = {}
        self.entry = 0
        self._next_block = 0
        self._next_temp = 0
        self.new_block()  # entry

    # -- construction helpers -------------------------------------------

    def new_block(self) -> Block:
        block = Block(self._next_block)
        self.blocks[block.id] = block
        self._next_block += 1
        return block

    def new_temp(self) -> str:
        name = f"t{self._next_temp}$"
        self._next_temp += 1
        return name

    def entry_block(self) -> Block:
        return self.blocks[self.entry]

    # -- graph queries ----------------------------------------------------

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors():
                preds[succ].append(block.id)
        return preds

    def block_order(self) -> list[int]:
        """Reverse-postorder over reachable blocks (good for dataflow)."""
        seen: set[int] = set()
        postorder: list[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(self.blocks[bid].successors()))]
            seen.add(bid)
            while stack:
                current, succs = stack[-1]
                advanced = False
                for nxt in succs:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(
                            (nxt, iter(self.blocks[nxt].successors()))
                        )
                        advanced = True
                        break
                if not advanced:
                    postorder.append(current)
                    stack.pop()

        visit(self.entry)
        return list(reversed(postorder))

    def reachable_blocks(self) -> set[int]:
        return set(self.block_order())

    def instructions(self) -> list[Instr]:
        """All instructions of reachable blocks, in block order."""
        out: list[Instr] = []
        for bid in self.block_order():
            out.extend(self.blocks[bid].instrs)
        return out

    def defined_vars(self) -> list[str]:
        """Every variable defined in the function (params first)."""
        seen: dict[str, None] = dict.fromkeys(self.params)
        for instr in self.instructions():
            for res in instr.results:
                seen.setdefault(res)
        return list(seen)

    def variable_count(self) -> int:
        return len(self.defined_vars())

    # -- verification ----------------------------------------------------

    def verify(self) -> None:
        """Basic structural invariants; raises :class:`IRError`."""
        for block in self.blocks.values():
            if block.terminator is None:
                raise IRError(
                    f"{self.name}: block B{block.id} has no terminator"
                )
            for succ in block.successors():
                if succ not in self.blocks:
                    raise IRError(
                        f"{self.name}: B{block.id} jumps to missing B{succ}"
                    )
            in_header = True
            for instr in block.instrs:
                if instr.is_phi:
                    if not in_header:
                        raise IRError(
                            f"{self.name}: φ after non-φ in B{block.id}"
                        )
                else:
                    in_header = False

    def __str__(self) -> str:
        header = (
            f"function [{', '.join(self.returns)}] = "
            f"{self.name}({', '.join(self.params)})"
        )
        body = "\n".join(
            str(self.blocks[bid]) for bid in sorted(self.blocks)
        )
        return f"{header}\n{body}"


def remove_unreachable_blocks(func: IRFunction) -> int:
    """Delete unreachable blocks; returns how many were removed."""
    reachable = func.reachable_blocks()
    dead = [bid for bid in func.blocks if bid not in reachable]
    for bid in dead:
        del func.blocks[bid]
    # Drop φ-operands flowing from deleted predecessors.
    if dead:
        preds = func.predecessors()
        for block in func.blocks.values():
            for phi in block.phis():
                keep = [
                    (arg, pb)
                    for arg, pb in zip(phi.args, phi.phi_blocks or [])
                    if pb in preds.get(block.id, []) or pb in func.blocks
                ]
                phi.args = [a for a, _ in keep]
                phi.phi_blocks = [b for _, b in keep]
    return len(dead)
