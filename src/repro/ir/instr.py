"""Single-Operator (SO) form intermediate representation.

Per the paper's §2.3, every IR assignment has a right-hand side that is
at most a single MATLAB operation (or pseudo-operation such as φ).
Long source expressions are broken with compiler temporaries during
lowering, and those temporaries are exactly the variables the paper
reports as the "key contributors" to GCTD's coalescing wins.

Operand kinds: :class:`Var` (SSA or pre-SSA variable), :class:`Const`
(numeric literal, possibly complex), :class:`StrConst` (string literal,
used only by display/error builtins).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.source import Location, UNKNOWN_LOCATION


# --------------------------------------------------------------------------
# Operands
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Var:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    value: complex  # real constants stored with .imag == 0

    def __str__(self) -> str:
        v = self.value
        if v.imag == 0:
            r = v.real
            return str(int(r)) if r == int(r) else repr(r)
        return repr(v)

    @property
    def is_real(self) -> bool:
        return self.value.imag == 0

    @property
    def is_integer(self) -> bool:
        return self.value.imag == 0 and self.value.real == int(self.value.real)


@dataclass(frozen=True, slots=True)
class StrConst:
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


Operand = Var | Const | StrConst


# --------------------------------------------------------------------------
# Opcodes
# --------------------------------------------------------------------------

#: Elementwise binary arithmetic — always conformable elementwise (one
#: operand may be scalar); results can be computed in place in a
#: sufficiently-sized operand (paper §2.3.1).
ELEMENTWISE_BINARY = frozenset(
    {
        "add",        # +
        "sub",        # -
        "elmul",      # .*
        "eldiv",      # ./
        "elldiv",     # .\
        "elpow",      # .^
        "lt",
        "le",
        "gt",
        "ge",
        "eq",
        "ne",
        "and",        # &
        "or",         # |
    }
)

#: Matrix-semantics binary ops: in-place evaluation is illegal unless
#: type inference proves an operand scalar (paper §2.3).
MATRIX_BINARY = frozenset(
    {
        "mul",   # *   (matrix multiply, elementwise if a scalar operand)
        "div",   # /   (right matrix divide)
        "ldiv",  # \   (left matrix divide)
        "pow",   # ^   (matrix power)
    }
)

#: Elementwise unary ops — always in-place legal.
ELEMENTWISE_UNARY = frozenset({"neg", "not", "conj_elem"})

#: Structural unary ops that permute element positions.
PERMUTING_UNARY = frozenset({"transpose", "ctranspose"})

BINARY_OPS = ELEMENTWISE_BINARY | MATRIX_BINARY

#: AST operator token → IR opcode.
AST_BINOP_TO_IR = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    ".*": "elmul",
    "/": "div",
    "./": "eldiv",
    "\\": "ldiv",
    ".\\": "elldiv",
    "^": "pow",
    ".^": "elpow",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "~=": "ne",
    "&": "and",
    "|": "or",
    "&&": "and",  # scalar contexts only in our subset
    "||": "or",
}


# --------------------------------------------------------------------------
# Instructions
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Instr:
    """One SO-form assignment ``results = op(args)``.

    Special ops:

    * ``copy``      — ``X = Y`` (single arg);
    * ``const``     — materialize a literal;
    * ``phi``       — SSA φ; ``phi_blocks[i]`` is the predecessor block
      that flows ``args[i]``;
    * ``subsref``   — R-indexing, ``args = [array, i1, ..., im]``;
    * ``subsasgn``  — L-indexing, ``args = [array, rhs, l1, ..., lm]``;
    * ``range``     — colon expression, ``args = [start, step, stop]``;
    * ``horzcat``/``vertcat`` — matrix-literal glue;
    * ``empty``     — the 0×0 empty array ``[]``;
    * ``call:NAME`` — builtin call (user calls are inlined away);
    * ``display``   — echo a variable (statement without ``;``).
    """

    op: str
    results: list[str] = field(default_factory=list)
    args: list[Operand] = field(default_factory=list)
    location: Location = UNKNOWN_LOCATION
    phi_blocks: list[int] | None = None

    @property
    def result(self) -> str | None:
        return self.results[0] if self.results else None

    @property
    def is_phi(self) -> bool:
        return self.op == "phi"

    @property
    def is_call(self) -> bool:
        return self.op.startswith("call:")

    @property
    def callee(self) -> str:
        assert self.is_call
        return self.op[5:]

    def used_vars(self) -> list[str]:
        """Names of variables read by this instruction (with repeats)."""
        return [a.name for a in self.args if isinstance(a, Var)]

    def replace_uses(self, mapping: dict[str, str]) -> None:
        """Rename used variables in place according to ``mapping``."""
        self.args = [
            Var(mapping.get(a.name, a.name)) if isinstance(a, Var) else a
            for a in self.args
        ]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        if self.is_phi:
            pairs = ", ".join(
                f"{a}@B{b}"
                for a, b in zip(self.args, self.phi_blocks or [])
            )
            return f"{self.results[0]} = phi({pairs})"
        lhs = ", ".join(self.results)
        if lhs:
            return f"{lhs} = {self.op}({args})"
        return f"{self.op}({args})"


# --------------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Jump:
    target: int

    def successors(self) -> list[int]:
        return [self.target]

    def __str__(self) -> str:
        return f"jump B{self.target}"


@dataclass(slots=True)
class Branch:
    condition: Operand
    true_target: int = 0
    false_target: int = 0

    def successors(self) -> list[int]:
        return [self.true_target, self.false_target]

    def __str__(self) -> str:
        return (
            f"branch {self.condition} ? B{self.true_target} : "
            f"B{self.false_target}"
        )


@dataclass(slots=True)
class Ret:
    def successors(self) -> list[int]:
        return []

    def __str__(self) -> str:
        return "ret"


Terminator = Jump | Branch | Ret
