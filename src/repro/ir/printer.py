"""IR pretty-printing with optional type and allocation annotations.

``format_function`` renders the textual form used throughout the test
suite's golden expectations; with a type environment it annotates each
definition with its inferred type, and with an allocation plan it adds
the storage group and the §3.2.2 resize superscripts.
"""

from __future__ import annotations

from io import StringIO

from repro.ir.cfg import IRFunction


def format_function(
    func: IRFunction,
    env=None,
    plan=None,
) -> str:
    from repro.compiler.reports import RESIZE_SYMBOL

    out = StringIO()
    out.write(
        f"function [{', '.join(func.returns)}] = "
        f"{func.name}({', '.join(func.params)})\n"
    )
    for bid in sorted(func.blocks):
        block = func.blocks[bid]
        out.write(f"B{bid}:\n")
        for instr in block.instrs:
            line = f"  {instr}"
            notes = []
            for res in instr.results:
                if env is not None:
                    notes.append(str(env.of(res)))
                if plan is not None and res in plan.group_of:
                    mark = plan.resize_marks.get(res)
                    symbol = RESIZE_SYMBOL.get(mark, "") if mark else ""
                    notes.append(f"g{plan.group_of[res]}{symbol}")
            if notes:
                line = f"{line:<48s} ; {' '.join(notes)}"
            out.write(line + "\n")
        if block.terminator is not None:
            out.write(f"  {block.terminator}\n")
    return out.getvalue()
