"""SO-form IR: instructions, CFG, lowering, dominance."""

from repro.ir.cfg import Block, IRError, IRFunction, remove_unreachable_blocks
from repro.ir.dominance import DominatorInfo, compute_dominators
from repro.ir.instr import (
    AST_BINOP_TO_IR,
    BINARY_OPS,
    Branch,
    Const,
    ELEMENTWISE_BINARY,
    ELEMENTWISE_UNARY,
    Instr,
    Jump,
    MATRIX_BINARY,
    Operand,
    PERMUTING_UNARY,
    Ret,
    StrConst,
    Terminator,
    Var,
)
from repro.ir.lower import LoweringError, lower_program

__all__ = [
    "Block",
    "IRError",
    "IRFunction",
    "remove_unreachable_blocks",
    "DominatorInfo",
    "compute_dominators",
    "AST_BINOP_TO_IR",
    "BINARY_OPS",
    "Branch",
    "Const",
    "ELEMENTWISE_BINARY",
    "ELEMENTWISE_UNARY",
    "Instr",
    "Jump",
    "MATRIX_BINARY",
    "Operand",
    "PERMUTING_UNARY",
    "Ret",
    "StrConst",
    "Terminator",
    "Var",
    "LoweringError",
    "lower_program",
]
