"""Dominator tree and dominance frontiers.

Implements Cooper–Harvey–Kennedy's "A Simple, Fast Dominance Algorithm":
iterative immediate-dominator computation over reverse postorder, then
the standard dominance-frontier pass used for SSA φ placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import IRFunction


@dataclass(slots=True)
class DominatorInfo:
    """Immediate dominators, dominator tree children, and frontiers."""

    idom: dict[int, int | None]
    children: dict[int, list[int]]
    frontier: dict[int, set[int]]
    order: list[int]  # reverse postorder of reachable blocks

    def dominates(self, a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexively)."""
        node: int | None = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False


def compute_dominators(func: IRFunction) -> DominatorInfo:
    order = func.block_order()
    index = {bid: i for i, bid in enumerate(order)}
    preds = func.predecessors()

    idom: dict[int, int | None] = {bid: None for bid in order}
    idom[func.entry] = func.entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == func.entry:
                continue
            candidates = [
                p for p in preds[bid] if p in index and idom[p] is not None
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom[bid] != new_idom:
                idom[bid] = new_idom
                changed = True

    idom[func.entry] = None  # root has no immediate dominator

    children: dict[int, list[int]] = {bid: [] for bid in order}
    for bid in order:
        parent = idom[bid]
        if parent is not None:
            children[parent].append(bid)

    frontier: dict[int, set[int]] = {bid: set() for bid in order}
    for bid in order:
        blocked_preds = [p for p in preds[bid] if p in index]
        if len(blocked_preds) >= 2:
            for p in blocked_preds:
                runner: int | None = p
                while runner is not None and runner != idom[bid]:
                    frontier[runner].add(bid)
                    runner = idom[runner]

    return DominatorInfo(
        idom=idom, children=children, frontier=frontier, order=order
    )
