"""A first-fit free-list heap model.

Addresses are byte offsets into a simulated heap segment that grows in
8 KB pages and, like a classic Unix ``brk`` heap, never shrinks — the
segment's high watermark is what the virtual-memory size reports.
Resident-set accounting marks pages on first touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PAGE_SIZE = 8192
_ALIGN = 8


class SimulationError(RuntimeError):
    pass


@dataclass(slots=True)
class _FreeBlock:
    addr: int
    size: int


@dataclass(slots=True)
class HeapModel:
    free_list: list[_FreeBlock] = field(default_factory=list)
    allocations: dict[int, int] = field(default_factory=dict)  # addr→size
    brk: int = 0                 # segment high watermark (bytes)
    live_bytes: int = 0
    touched_pages: set[int] = field(default_factory=set)
    malloc_count: int = 0
    free_count: int = 0

    def malloc(self, size: int) -> int:
        size = max(_ALIGN, (size + _ALIGN - 1) // _ALIGN * _ALIGN)
        self.malloc_count += 1
        for i, block in enumerate(self.free_list):
            if block.size >= size:
                addr = block.addr
                if block.size > size:
                    self.free_list[i] = _FreeBlock(
                        block.addr + size, block.size - size
                    )
                else:
                    self.free_list.pop(i)
                self.allocations[addr] = size
                self.live_bytes += size
                self._touch(addr, size)
                return addr
        addr = self.brk
        self.brk += size
        self.allocations[addr] = size
        self.live_bytes += size
        self._touch(addr, size)
        return addr

    def free(self, addr: int) -> None:
        size = self.allocations.pop(addr, None)
        if size is None:
            raise SimulationError(f"free of unallocated address {addr}")
        self.free_count += 1
        self.live_bytes -= size
        self._insert_free(_FreeBlock(addr, size))

    def realloc(self, addr: int, new_size: int) -> tuple[int, int]:
        """Returns (new_addr, pages_newly_touched_estimate)."""
        old = self.allocations.get(addr)
        if old is None:
            raise SimulationError(f"realloc of unallocated address {addr}")
        if new_size <= old:
            return addr, 0
        before = len(self.touched_pages)
        self.free(addr)
        new_addr = self.malloc(new_size)
        return new_addr, len(self.touched_pages) - before

    def _insert_free(self, block: _FreeBlock) -> None:
        # keep sorted by address and merge adjacent blocks
        self.free_list.append(block)
        self.free_list.sort(key=lambda b: b.addr)
        merged: list[_FreeBlock] = []
        for b in self.free_list:
            if merged and merged[-1].addr + merged[-1].size == b.addr:
                merged[-1] = _FreeBlock(
                    merged[-1].addr, merged[-1].size + b.size
                )
            else:
                merged.append(b)
        self.free_list = merged

    def _touch(self, addr: int, size: int) -> int:
        first = addr // PAGE_SIZE
        last = (addr + max(size, 1) - 1) // PAGE_SIZE
        before = len(self.touched_pages)
        self.touched_pages.update(range(first, last + 1))
        return len(self.touched_pages) - before

    def touch_bytes(self, addr: int, size: int) -> int:
        """Public touch (e.g. writing into an existing allocation)."""
        return self._touch(addr, size)

    # -- accounting -----------------------------------------------------

    @property
    def segment_bytes(self) -> int:
        """Heap segment size: brk rounded up to whole pages."""
        return (self.brk + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE

    @property
    def resident_bytes(self) -> int:
        return len(self.touched_pages) * PAGE_SIZE
