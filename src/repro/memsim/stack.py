"""Run-time stack model.

The stack segment starts at one page (8 KB) holding the process
environment — the paper measured exactly this on Solaris 7 — and grows
in page units with the high watermark of pushed frames.  mcc-style
codes keep small frames (pointers only); mat2c frames carry the
stack-allocated array groups of §3.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.heap import PAGE_SIZE

#: the initial environment frame (argv, environ, …)
INITIAL_STACK_BYTES = PAGE_SIZE


@dataclass(slots=True)
class StackModel:
    frames: list[int] = field(default_factory=list)
    depth_bytes: int = INITIAL_STACK_BYTES
    high_watermark: int = INITIAL_STACK_BYTES
    touched_pages: int = 1

    def push_frame(self, frame_bytes: int) -> None:
        self.frames.append(frame_bytes)
        self.depth_bytes += frame_bytes
        if self.depth_bytes > self.high_watermark:
            self.high_watermark = self.depth_bytes
        pages = (self.depth_bytes + PAGE_SIZE - 1) // PAGE_SIZE
        self.touched_pages = max(self.touched_pages, pages)

    def pop_frame(self) -> None:
        self.depth_bytes -= self.frames.pop()

    @property
    def segment_bytes(self) -> int:
        """Stack segment size (grows in pages, never shrinks)."""
        return (
            (self.high_watermark + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
        )

    @property
    def current_bytes(self) -> int:
        """Bytes currently in use (frames + environment)."""
        return self.depth_bytes

    @property
    def resident_bytes(self) -> int:
        return self.touched_pages * PAGE_SIZE
