"""Page-granular memory simulator: heap, stack, metering, cost model."""

from repro.memsim.costs import CLOCK_HZ, CostModel, DEFAULT_COSTS
from repro.memsim.heap import PAGE_SIZE, HeapModel, SimulationError
from repro.memsim.meter import MemoryMeter, MemoryReport
from repro.memsim.stack import INITIAL_STACK_BYTES, StackModel

__all__ = [
    "CLOCK_HZ",
    "CostModel",
    "DEFAULT_COSTS",
    "PAGE_SIZE",
    "HeapModel",
    "SimulationError",
    "MemoryMeter",
    "MemoryReport",
    "INITIAL_STACK_BYTES",
    "StackModel",
]
