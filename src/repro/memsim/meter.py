"""Time-weighted memory metering (paper §4.5, Equation 2).

Executors call :meth:`MemoryMeter.sample` whenever segment sizes may
have changed; the meter integrates every series over the virtual clock:

    M = Σᵢ mᵢ·Δtᵢ / Σᵢ Δtᵢ

and also reports the kcore-min value M(KB) × T(minutes) of §4.5.2.1.
The ``binary_image_bytes`` models the compiled text+data mapping that
dominates the *virtual memory* plots (Figure 3): mat2c inlines its
operations (bigger image), mcc links a shared library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.costs import CLOCK_HZ
from repro.memsim.heap import HeapModel
from repro.memsim.stack import StackModel


@dataclass(slots=True)
class SeriesAverage:
    weighted_sum: float = 0.0
    peak: float = 0.0

    def add(self, value: float, dt: float) -> None:
        self.weighted_sum += value * dt
        if value > self.peak:
            self.peak = value

    def average(self, total_time: float) -> float:
        return self.weighted_sum / total_time if total_time > 0 else 0.0


@dataclass(slots=True)
class MemoryReport:
    """Everything Figures 2–4 plot, for one run of one executor."""

    avg_stack_kb: float = 0.0
    avg_heap_kb: float = 0.0
    avg_dynamic_kb: float = 0.0      # stack + heap (Figure 2)
    avg_virtual_kb: float = 0.0      # Figure 3
    avg_resident_kb: float = 0.0     # Figure 4
    peak_dynamic_kb: float = 0.0
    execution_seconds: float = 0.0   # Figure 5/6 series
    kcore_min: float = 0.0           # §4.5.2.1
    mallocs: int = 0
    frees: int = 0


class MemoryMeter:
    def __init__(
        self,
        heap: HeapModel,
        stack: StackModel,
        binary_image_bytes: int,
        resident_image_bytes: int | None = None,
    ) -> None:
        self._heap = heap
        self._stack = stack
        self._image = binary_image_bytes
        self._resident_image = (
            resident_image_bytes
            if resident_image_bytes is not None
            else binary_image_bytes
        )
        self._last_cycles = 0.0
        self._stack_avg = SeriesAverage()
        self._heap_avg = SeriesAverage()
        self._dynamic_avg = SeriesAverage()
        self._virtual_avg = SeriesAverage()
        self._resident_avg = SeriesAverage()
        self._total_cycles = 0.0

    def sample(self, clock_cycles: float) -> None:
        dt = clock_cycles - self._last_cycles
        if dt <= 0:
            return
        self._last_cycles = clock_cycles
        self._total_cycles = clock_cycles
        stack_b = self._stack.segment_bytes
        heap_b = self._heap.live_bytes
        dynamic_b = self._stack.current_bytes + heap_b
        virtual_b = (
            self._image + self._stack.segment_bytes + self._heap.segment_bytes
        )
        resident_b = (
            self._resident_image  # only touched text/library pages
            + self._stack.resident_bytes
            + self._heap.resident_bytes
        )
        self._stack_avg.add(stack_b, dt)
        self._heap_avg.add(heap_b, dt)
        self._dynamic_avg.add(dynamic_b, dt)
        self._virtual_avg.add(virtual_b, dt)
        self._resident_avg.add(resident_b, dt)

    def report(self) -> MemoryReport:
        t = self._total_cycles
        seconds = t / CLOCK_HZ
        avg_dynamic_kb = self._dynamic_avg.average(t) / 1024.0
        return MemoryReport(
            avg_stack_kb=self._stack_avg.average(t) / 1024.0,
            avg_heap_kb=self._heap_avg.average(t) / 1024.0,
            avg_dynamic_kb=avg_dynamic_kb,
            avg_virtual_kb=self._virtual_avg.average(t) / 1024.0,
            avg_resident_kb=self._resident_avg.average(t) / 1024.0,
            peak_dynamic_kb=self._dynamic_avg.peak / 1024.0,
            execution_seconds=seconds,
            kcore_min=avg_dynamic_kb * (seconds / 60.0),
            mallocs=self._heap.malloc_count,
            frees=self._heap.free_count,
        )
