"""The execution cost model, calibrated to the paper's platform.

The paper measured a 440 MHz UltraSPARC-IIi.  Executors advance a
virtual clock in *cycles*; reports convert to seconds at 440 MHz.  The
constants below encode the structural differences the paper attributes
to each system:

* **mat2c** — inlined C: direct array accesses, a cheap resize check
  before heap-group definitions (paper §3.2.2);
* **mcc** — library model (§4.4): every operation is a call working on
  heap ``mxArray`` structs, with run-time type/shape checks, an 88-byte
  header set up per created array, and malloc/free traffic;
* **interpreter** — everything mcc pays, plus per-statement dispatch.

Absolute numbers are a model, not a measurement; the benchmark suite
validates *ratios* (who wins, by roughly what factor), which is what
the reproduction is accountable for.
"""

from __future__ import annotations

from dataclasses import dataclass

CLOCK_HZ = 440e6  # UltraSPARC-IIi


@dataclass(frozen=True, slots=True)
class CostModel:
    # shared
    element_op: float = 1.0          # one arithmetic element operation
    element_copy: float = 0.8        # one element moved

    # mat2c (compiled, inlined)
    scalar_op: float = 1.0
    subsref_compiled: float = 4.0    # bounds-checked direct access
    subsasgn_compiled: float = 5.0
    resize_check: float = 6.0        # heap-group definition guard
    realloc_base: float = 300.0
    branch: float = 1.0

    # mcc library model
    library_call: float = 60.0       # call + argument marshalling
    type_check: float = 18.0         # per operand, run-time dispatch
    mxarray_create: float = 120.0    # header setup + malloc
    mxarray_free: float = 90.0
    cow_share: float = 25.0          # copy-on-write bookkeeping

    # interpreter
    interp_dispatch: float = 700.0   # parse-tree walk per statement
    interp_name_lookup: float = 120.0

    # memory system
    page_touch: float = 900.0        # first touch of a fresh page
    malloc_call: float = 180.0
    free_call: float = 140.0

    def seconds(self, cycles: float) -> float:
        return cycles / CLOCK_HZ


DEFAULT_COSTS = CostModel()
