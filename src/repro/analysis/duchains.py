"""Def-use chains over SSA IR.

On SSA every name has exactly one definition, so the chain structure is
a map from name to its definition site and the list of its use sites.
Sites are (block id, instruction index); φ-uses record the predecessor
block the value flows from, and branch-condition uses use index -1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import IRFunction
from repro.ir.instr import Branch, Instr, Var

BRANCH_USE = -1  # instruction index marking a use in a block terminator


@dataclass(slots=True)
class UseSite:
    block: int
    index: int  # position in block.instrs, or BRANCH_USE
    phi_pred: int | None = None  # for φ-uses: incoming edge's source


@dataclass(slots=True)
class DefUseChains:
    definition: dict[str, tuple[int, int]] = field(default_factory=dict)
    uses: dict[str, list[UseSite]] = field(default_factory=dict)

    def use_count(self, name: str) -> int:
        return len(self.uses.get(name, ()))

    def is_dead(self, name: str) -> bool:
        return self.use_count(name) == 0


def compute_du_chains(func: IRFunction) -> DefUseChains:
    chains = DefUseChains()
    for param in func.params:
        chains.definition[param] = (func.entry, -1)
        chains.uses.setdefault(param, [])
    for bid in func.block_order():
        block = func.blocks[bid]
        for idx, instr in enumerate(block.instrs):
            for res in instr.results:
                chains.definition[res] = (bid, idx)
                chains.uses.setdefault(res, [])
            if instr.is_phi:
                assert instr.phi_blocks is not None
                for arg, pred in zip(instr.args, instr.phi_blocks):
                    if isinstance(arg, Var):
                        chains.uses.setdefault(arg.name, []).append(
                            UseSite(bid, idx, phi_pred=pred)
                        )
            else:
                for arg in instr.args:
                    if isinstance(arg, Var):
                        chains.uses.setdefault(arg.name, []).append(
                            UseSite(bid, idx)
                        )
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.condition, Var):
            chains.uses.setdefault(term.condition.name, []).append(
                UseSite(bid, BRANCH_USE)
            )
    return chains
