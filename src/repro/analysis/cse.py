"""Global common-subexpression elimination (dominator-scoped GVN).

Pure SO-form instructions with identical opcodes and operands compute
identical values on SSA, so later occurrences dominated by an earlier
one are rewritten to copies.  The copies are then removed by the usual
copy-propagation + DCE follow-up, mirroring the paper's pass list
("global common-subexpression elimination" among the translator's 20+
passes).
"""

from __future__ import annotations

from repro.ir.cfg import IRFunction
from repro.ir.dominance import compute_dominators
from repro.ir.instr import Const, Instr, StrConst, Var

#: ops that are referentially transparent (same args ⇒ same value)
_PURE_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "elmul",
        "div",
        "eldiv",
        "ldiv",
        "elldiv",
        "pow",
        "elpow",
        "lt",
        "le",
        "gt",
        "ge",
        "eq",
        "ne",
        "and",
        "or",
        "neg",
        "not",
        "transpose",
        "ctranspose",
        "range",
        "forindex",
        "subsref",
        "horzcat",
        "vertcat",
        "const",
    }
)

_PURE_CALLS = frozenset(
    {
        "call:abs",
        "call:sqrt",
        "call:exp",
        "call:log",
        "call:sin",
        "call:cos",
        "call:tan",
        "call:floor",
        "call:ceil",
        "call:round",
        "call:numel",
        "call:length",
        "call:size",
        "call:eye",
        "call:zeros",
        "call:ones",
        "call:mod",
        "call:rem",
        "call:sign",
    }
)


def _value_key(instr: Instr) -> tuple | None:
    if instr.op not in _PURE_OPS and instr.op not in _PURE_CALLS:
        return None
    if len(instr.results) != 1:
        return None
    parts: list[object] = [instr.op]
    for arg in instr.args:
        if isinstance(arg, Var):
            parts.append(("v", arg.name))
        elif isinstance(arg, Const):
            parts.append(("c", arg.value))
        elif isinstance(arg, StrConst):
            parts.append(("s", arg.value))
    return tuple(parts)


def eliminate_common_subexpressions(func: IRFunction) -> int:
    """Dominator-tree scoped value numbering; returns #rewritten instrs."""
    dom = compute_dominators(func)
    replaced = 0

    def walk(bid: int, table: dict[tuple, str]) -> None:
        nonlocal replaced
        scope = dict(table)
        for instr in func.blocks[bid].instrs:
            key = _value_key(instr)
            if key is None:
                continue
            if key in scope:
                instr.op = "copy"
                instr.args = [Var(scope[key])]
                replaced += 1
            else:
                scope[key] = instr.results[0]
        for child in dom.children.get(bid, ()):
            walk(child, scope)

    walk(func.entry, {})
    return replaced
