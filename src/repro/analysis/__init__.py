"""Dataflow analyses and cleanup passes over the SO-form IR."""

from repro.analysis.availability import AvailabilityInfo, compute_availability
from repro.analysis.constfold import fold_constants
from repro.analysis.copyprop import propagate_copies
from repro.analysis.cse import eliminate_common_subexpressions
from repro.analysis.dce import eliminate_dead_code
from repro.analysis.duchains import (
    BRANCH_USE,
    DefUseChains,
    UseSite,
    compute_du_chains,
)
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.pass_manager import PassStatistics, run_cleanup_pipeline

__all__ = [
    "AvailabilityInfo",
    "compute_availability",
    "fold_constants",
    "propagate_copies",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "BRANCH_USE",
    "DefUseChains",
    "UseSite",
    "compute_du_chains",
    "LivenessInfo",
    "compute_liveness",
    "PassStatistics",
    "run_cleanup_pipeline",
]
