"""Constant folding and propagation on SSA IR.

Scalar constants are folded through arithmetic, comparisons, and the
pure math builtins; folded definitions become ``const`` instructions
whose values then propagate into later operand positions.  This pass is
load-bearing for the reproduction: shape inference can only classify
``zeros(n, n)`` as *statically estimable* (⇒ stack allocation, Table 2's
``s`` column) when ``n`` has been folded to a literal by this pass.
"""

from __future__ import annotations

import math

from repro.ir.cfg import IRFunction
from repro.ir.instr import Const, Instr, Operand, Var

_BINARY_FOLDERS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "elmul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "eldiv": lambda a, b: a / b,
    "ldiv": lambda a, b: b / a,
    "elldiv": lambda a, b: b / a,
    "pow": lambda a, b: a**b,
    "elpow": lambda a, b: a**b,
    "lt": lambda a, b: complex(float(a.real < b.real)),
    "le": lambda a, b: complex(float(a.real <= b.real)),
    "gt": lambda a, b: complex(float(a.real > b.real)),
    "ge": lambda a, b: complex(float(a.real >= b.real)),
    "eq": lambda a, b: complex(float(a == b)),
    "ne": lambda a, b: complex(float(a != b)),
    "and": lambda a, b: complex(float(bool(a) and bool(b))),
    "or": lambda a, b: complex(float(bool(a) or bool(b))),
}

_UNARY_FOLDERS = {
    "neg": lambda a: -a,
    "not": lambda a: complex(float(not bool(a))),
    "transpose": lambda a: a,  # scalar transpose is the identity
    "ctranspose": lambda a: a.conjugate(),
}


def _real_only(fn):
    def wrapped(value: complex) -> complex:
        if value.imag != 0:
            raise ValueError("complex")
        return complex(fn(value.real))

    return wrapped


_CALL_FOLDERS = {
    "call:floor": _real_only(math.floor),
    "call:ceil": _real_only(math.ceil),
    "call:round": _real_only(round),
    "call:fix": _real_only(math.trunc),
    "call:abs": lambda v: complex(abs(v)),
    "call:sqrt": lambda v: _safe_sqrt(v),
    "call:exp": lambda v: _cwrap(math.exp, v),
    "call:log": lambda v: _cwrap(math.log, v),
    "call:sin": lambda v: _cwrap(math.sin, v),
    "call:cos": lambda v: _cwrap(math.cos, v),
    "call:tan": lambda v: _cwrap(math.tan, v),
    "call:sign": _real_only(lambda r: (r > 0) - (r < 0)),
    "call:numel": None,  # shape-dependent; left to inference
}


def _cwrap(fn, value: complex) -> complex:
    if value.imag != 0:
        raise ValueError("complex")
    return complex(fn(value.real))


def _safe_sqrt(value: complex) -> complex:
    if value.imag == 0 and value.real >= 0:
        return complex(math.sqrt(value.real))
    import cmath

    return cmath.sqrt(value)


def fold_constants(func: IRFunction) -> int:
    """Fold and propagate scalar constants to a fixed point (one call).

    Returns the number of instructions rewritten to ``const``.
    """
    constants: dict[str, complex] = {}
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks.values():
            for instr in block.instrs:
                # Propagate known constants into operands.
                new_args: list[Operand] = []
                for arg in instr.args:
                    if isinstance(arg, Var) and arg.name in constants:
                        new_args.append(Const(constants[arg.name]))
                    else:
                        new_args.append(arg)
                instr.args = new_args

                if instr.op == "const" and len(instr.results) == 1:
                    arg = instr.args[0]
                    if isinstance(arg, Const):
                        if instr.results[0] not in constants:
                            constants[instr.results[0]] = arg.value
                            changed = True
                    continue
                if instr.op == "copy" and isinstance(instr.args[0], Const):
                    value = instr.args[0].value
                    instr.op = "const"
                    if instr.results[0] not in constants:
                        constants[instr.results[0]] = value
                        changed = True
                    folded += 1
                    continue
                value = _try_fold(instr)
                if value is not None:
                    instr.op = "const"
                    instr.args = [Const(value)]
                    if instr.results[0] not in constants:
                        constants[instr.results[0]] = value
                        changed = True
                    folded += 1
    return folded


def _try_fold(instr: Instr) -> complex | None:
    if len(instr.results) != 1 or instr.is_phi:
        return None
    if not all(isinstance(a, Const) for a in instr.args):
        return None
    values = [a.value for a in instr.args]  # type: ignore[union-attr]
    try:
        if instr.op in _BINARY_FOLDERS and len(values) == 2:
            return _BINARY_FOLDERS[instr.op](*values)
        if instr.op in _UNARY_FOLDERS and len(values) == 1:
            return _UNARY_FOLDERS[instr.op](values[0])
        folder = _CALL_FOLDERS.get(instr.op)
        if folder is not None and len(values) == 1:
            return folder(values[0])
    except (ValueError, ZeroDivisionError, OverflowError):
        return None
    return None
