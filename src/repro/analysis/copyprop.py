"""Copy propagation on SSA IR (paper §2.2).

The paper replaces Chaitin-style iterated coalescing with a simple
pre-pass: propagate copies, then let dead-code elimination delete the
now-unused copy definitions.  On SSA this is unconditionally sound —
``x = copy y`` means x and y denote the same value everywhere x is in
scope — so every use of x can be rewritten to y.  (The cases the paper
notes cannot be eliminated, such as copies feeding φs that interfere,
re-appear as φ operands and are handled by Phase 1's φ coalescing.)
"""

from __future__ import annotations

from repro.ir.cfg import IRFunction
from repro.ir.instr import Branch, Var


def propagate_copies(func: IRFunction) -> int:
    """Rewrite uses of SSA copy targets to their sources.

    Returns the number of rewritten uses.  Copy chains (a = b; c = a)
    are followed to the representative source with path compression.
    """
    source: dict[str, str] = {}
    for instr in func.instructions():
        if (
            instr.op == "copy"
            and len(instr.args) == 1
            and isinstance(instr.args[0], Var)
        ):
            source[instr.results[0]] = instr.args[0].name

    def resolve(name: str) -> str:
        seen = [name]
        while name in source and source[name] != name:
            name = source[name]
            seen.append(name)
        for n in seen[:-1]:
            source[n] = name  # compress (never map the root to itself)
        return name

    rewritten = 0
    for block in func.blocks.values():
        for instr in block.instrs:
            new_args = []
            for arg in instr.args:
                if isinstance(arg, Var) and arg.name in source:
                    root = resolve(arg.name)
                    if root != arg.name:
                        arg = Var(root)
                        rewritten += 1
                new_args.append(arg)
            instr.args = new_args
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.condition, Var):
            root = resolve(term.condition.name)
            if root != term.condition.name:
                term.condition = Var(root)
                rewritten += 1
    return rewritten
