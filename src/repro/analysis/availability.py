"""Availability analysis (paper §2).

A variable v is *available* at a statement s if there is a possible
execution path from a definition of v to s.  This is a forward
*may* (union) dataflow problem — deliberately conservative, as the
paper notes: it indicates a potential definition, not a definitive one.

Availability feeds two parts of GCTD:

* Phase 1 interference: two variables interfere when both are live and
  available at an assignment;
* Phase 2's Relation 1, whose second (symbolic) criterion requires
  "u is available at the definition of v" — and the paper relies on the
  relation being reflexive and transitive, which a path-based
  formulation gives for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import IRFunction


@dataclass(slots=True)
class AvailabilityInfo:
    avail_in: dict[int, set[str]]
    avail_out: dict[int, set[str]]
    # block id → list aligned with instrs: availability *before* each instr
    before_instr: dict[int, list[set[str]]]
    # variable → availability set just before its (unique, SSA) definition
    at_def: dict[str, set[str]]

    def available_at_definition_of(self, u: str, v: str) -> bool:
        """True if ``u`` is available at the definition of ``v``.

        Reflexive by the paper's convention (a definition is trivially
        available at itself).
        """
        if u == v:
            return True
        return u in self.at_def.get(v, ())


def compute_availability(func: IRFunction) -> AvailabilityInfo:
    order = func.block_order()
    preds = func.predecessors()

    gen: dict[int, set[str]] = {}
    for bid in order:
        gen[bid] = {
            res for instr in func.blocks[bid].instrs for res in instr.results
        }

    avail_in: dict[int, set[str]] = {bid: set() for bid in order}
    avail_out: dict[int, set[str]] = {bid: set() for bid in order}
    for bid in order:
        avail_out[bid] = set(gen[bid])
    for param in func.params:
        avail_in[func.entry].add(param)
        avail_out[func.entry].add(param)

    changed = True
    while changed:
        changed = False
        for bid in order:
            new_in: set[str] = set(avail_in[bid]) if bid == func.entry else set()
            for p in preds[bid]:
                if p in avail_out:
                    new_in |= avail_out[p]
            new_out = new_in | gen[bid]
            if new_in != avail_in[bid] or new_out != avail_out[bid]:
                avail_in[bid] = new_in
                avail_out[bid] = new_out
                changed = True

    before_instr: dict[int, list[set[str]]] = {}
    at_def: dict[str, set[str]] = {}
    for bid in order:
        current = set(avail_in[bid])
        per_instr: list[set[str]] = []
        for instr in func.blocks[bid].instrs:
            per_instr.append(set(current))
            for res in instr.results:
                # keep the first (SSA: only) definition's view
                at_def.setdefault(res, per_instr[-1])
            current.update(instr.results)
        before_instr[bid] = per_instr
    for param in func.params:
        at_def.setdefault(param, set())

    return AvailabilityInfo(
        avail_in=avail_in,
        avail_out=avail_out,
        before_instr=before_instr,
        at_def=at_def,
    )
