"""Block-level liveness analysis on the (SSA or non-SSA) CFG.

A variable w is *live* at a point if some path from that point reaches a
use of w with no intervening redefinition (paper §2).  φ-operands are
treated as used at the end of the corresponding predecessor block, and
φ-results as defined at the top of their block — the standard SSA
convention, which is exactly what edge-copy insertion later realizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import IRFunction
from repro.ir.instr import Branch, Var


@dataclass(slots=True)
class LivenessInfo:
    live_in: dict[int, set[str]]
    live_out: dict[int, set[str]]

    def is_live_out(self, block_id: int, name: str) -> bool:
        return name in self.live_out.get(block_id, ())


def _block_use_def(func: IRFunction, bid: int) -> tuple[set[str], set[str]]:
    """(upward-exposed uses, defs) of a block, φs handled per convention."""
    uses: set[str] = set()
    defs: set[str] = set()
    block = func.blocks[bid]
    for instr in block.instrs:
        if instr.is_phi:
            # operands counted at predecessors, result defined here
            for res in instr.results:
                defs.add(res)
            continue
        for name in instr.used_vars():
            if name not in defs:
                uses.add(name)
        for res in instr.results:
            defs.add(res)
    term = block.terminator
    if isinstance(term, Branch) and isinstance(term.condition, Var):
        if term.condition.name not in defs:
            uses.add(term.condition.name)
    return uses, defs


def _phi_uses_from(func: IRFunction, pred: int) -> set[str]:
    """Names the successors' φs read along edges leaving ``pred``."""
    out: set[str] = set()
    for succ in func.blocks[pred].successors():
        for phi in func.blocks[succ].phis():
            assert phi.phi_blocks is not None
            for arg, pb in zip(phi.args, phi.phi_blocks):
                if pb == pred and isinstance(arg, Var):
                    out.add(arg.name)
    return out


def compute_liveness(func: IRFunction) -> LivenessInfo:
    order = func.block_order()
    use: dict[int, set[str]] = {}
    defs: dict[int, set[str]] = {}
    for bid in order:
        use[bid], defs[bid] = _block_use_def(func, bid)

    live_in: dict[int, set[str]] = {bid: set() for bid in order}
    live_out: dict[int, set[str]] = {bid: set() for bid in order}

    changed = True
    while changed:
        changed = False
        for bid in reversed(order):
            block = func.blocks[bid]
            new_out: set[str] = set(_phi_uses_from(func, bid))
            for succ in block.successors():
                # φ results are defined at block entry of succ, others
                # flow through live_in.
                succ_phi_defs = {
                    p.results[0] for p in func.blocks[succ].phis()
                }
                new_out |= live_in[succ] - succ_phi_defs
            new_in = use[bid] | (new_out - defs[bid])
            if new_out != live_out[bid] or new_in != live_in[bid]:
                live_out[bid] = new_out
                live_in[bid] = new_in
                changed = True
    return LivenessInfo(live_in=live_in, live_out=live_out)
