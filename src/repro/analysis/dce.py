"""Dead-code elimination on SSA IR (mark-and-sweep over def-use chains).

Effectful instructions (output-producing builtins, ``display``, and
``error``) are roots; everything reachable backwards through operands
stays.  ``rand``/``randn`` also count as effectful: they advance the
global RNG state, so deleting a dead call would shift every later
random value — observable through program output (and it would break
the differential-testing contract between the compiled models and the
interpreter).
"""

from __future__ import annotations

from repro.ir.cfg import IRFunction
from repro.ir.instr import Branch, Instr, Var

_EFFECT_CALLS = frozenset(
    {
        "call:disp",
        "call:fprintf",
        "call:error",
        "call:tic",
        "call:toc",
        "call:rand",   # advances observable RNG state
        "call:randn",
    }
)


def _has_effect(instr: Instr) -> bool:
    return instr.op == "display" or instr.op in _EFFECT_CALLS


def eliminate_dead_code(func: IRFunction) -> int:
    """Remove instructions whose results are never (transitively) used.

    Returns the number of removed instructions.  Runs to a fixed point
    internally via the worklist, so one call is enough.
    """
    definition: dict[str, Instr] = {}
    for instr in func.instructions():
        for res in instr.results:
            definition[res] = instr

    live: set[int] = set()
    worklist: list[Instr] = []

    def mark(instr: Instr) -> None:
        if id(instr) not in live:
            live.add(id(instr))
            worklist.append(instr)

    for instr in func.instructions():
        if _has_effect(instr):
            mark(instr)
    for block in func.blocks.values():
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.condition, Var):
            def_instr = definition.get(term.condition.name)
            if def_instr is not None:
                mark(def_instr)
    for ret_name in func.returns:
        def_instr = definition.get(ret_name)
        if def_instr is not None:
            mark(def_instr)

    while worklist:
        instr = worklist.pop()
        for used in instr.used_vars():
            def_instr = definition.get(used)
            if def_instr is not None:
                mark(def_instr)

    removed = 0
    for block in func.blocks.values():
        kept = []
        for instr in block.instrs:
            if id(instr) in live:
                kept.append(instr)
            else:
                removed += 1
        block.instrs = kept
    return removed
