"""The middle-end pass pipeline.

Runs the cleanup passes in the order the paper's translator does:
copy propagation, then dead-code elimination (together these take the
place of Chaitin's iterated coalescing for source-level copies, §2.2),
plus constant folding/propagation and global CSE — iterated to a fixed
point since each enables the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.constfold import fold_constants
from repro.analysis.copyprop import propagate_copies
from repro.analysis.cse import eliminate_common_subexpressions
from repro.analysis.dce import eliminate_dead_code
from repro.ir.cfg import IRFunction

_MAX_ITERATIONS = 25


@dataclass(slots=True)
class PassStatistics:
    copies_propagated: int = 0
    instructions_removed: int = 0
    constants_folded: int = 0
    subexpressions_eliminated: int = 0
    iterations: int = 0
    log: list[str] = field(default_factory=list)


def run_cleanup_pipeline(
    func: IRFunction,
    enable_cse: bool = True,
    enable_constfold: bool = True,
) -> PassStatistics:
    """Iterate copyprop → constfold → CSE → DCE until quiescent."""
    stats = PassStatistics()
    for _ in range(_MAX_ITERATIONS):
        stats.iterations += 1
        changed = 0

        n = propagate_copies(func)
        stats.copies_propagated += n
        changed += n

        if enable_constfold:
            n = fold_constants(func)
            stats.constants_folded += n
            changed += n

        if enable_cse:
            n = eliminate_common_subexpressions(func)
            stats.subexpressions_eliminated += n
            changed += n

        n = eliminate_dead_code(func)
        stats.instructions_removed += n
        changed += n

        stats.log.append(f"iteration {stats.iterations}: {changed} changes")
        if changed == 0:
            break
    return stats
