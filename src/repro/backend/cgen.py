"""C code generation from GCTD-allocated IR.

Reproduces the paper's translation scheme:

* one fixed-size C buffer per **stack** group (§3.2.1), declared in the
  activation's frame at the maximal member size;
* one growable heap buffer per **heap** group with on-the-fly resizing
  (§3.2.2);
* inlined operations with the run-time scalar/array dispatch of the
  paper's Figure 1 — scalar operands are read into C locals first, so
  in-place evaluation over the group buffer is safe;
* per-variable shape scalars (the ``___STC`` fields of Figure 1).

Demo-backend limitations (documented in DESIGN.md): rank ≤ 3, real
data in C ``double`` and COMPLEX data in C99 ``double complex``;
features outside the subset raise :class:`CodegenError` (or trap with
a diagnostic at run time) and are exercised through the VM instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import StorageClass
from repro.frontend.source import MatlabError
from repro.ir.instr import (
    Branch,
    Const,
    ELEMENTWISE_BINARY,
    Instr,
    Jump,
    Operand,
    Ret,
    StrConst,
    Var,
)

from repro.backend.runtime_c import RUNTIME_PREAMBLE


class CodegenError(MatlabError):
    """Program uses a feature outside the demo C back end's subset."""


_ELEMENTWISE_EXPR = {
    "add": "({x} + {y})",
    "sub": "({x} - {y})",
    "elmul": "({x} * {y})",
    "eldiv": "({x} / {y})",
    "elldiv": "({y} / {x})",
    "elpow": "pow({x}, {y})",
    "lt": "(({x} < {y}) ? 1.0 : 0.0)",
    "le": "(({x} <= {y}) ? 1.0 : 0.0)",
    "gt": "(({x} > {y}) ? 1.0 : 0.0)",
    "ge": "(({x} >= {y}) ? 1.0 : 0.0)",
    "eq": "(({x} == {y}) ? 1.0 : 0.0)",
    "ne": "(({x} != {y}) ? 1.0 : 0.0)",
    "and": "((({x} != 0.0) && ({y} != 0.0)) ? 1.0 : 0.0)",
    "or": "((({x} != 0.0) || ({y} != 0.0)) ? 1.0 : 0.0)",
}

_UNARY_CALLS = {
    "abs": "fabs({x})",
    "sqrt": "sqrt({x})",
    "exp": "exp({x})",
    "log": "log({x})",
    "sin": "sin({x})",
    "cos": "cos({x})",
    "tan": "tan({x})",
    "floor": "floor({x})",
    "ceil": "ceil({x})",
    "round": "floor({x} + 0.5)",
    "fix": "trunc({x})",
    "sign": "(({x} > 0.0) ? 1.0 : (({x} < 0.0) ? -1.0 : 0.0))",
}

#: complex-typed variants (C99 <complex.h>)
_COMPLEX_UNARY = {
    "abs": "cabs({x})",
    "sqrt": "csqrt({x})",
    "exp": "cexp({x})",
    "log": "clog({x})",
    "sin": "csin({x})",
    "cos": "ccos({x})",
    "tan": "ctan({x})",
    "real": "creal({x})",
    "imag": "cimag({x})",
    "conj": "conj({x})",
}

_REDUCERS = {"sum": "rt_sum", "prod": "rt_prod", "min": "rt_min",
             "max": "rt_max"}


@dataclass(slots=True)
class _SubscriptDesc:
    """How to iterate one subscript in emitted C."""

    count: str                 # element count expression
    _value_template: str       # with {i} placeholder, yields a double

    def value(self, ivar: str) -> str:
        return self._value_template.format(i=ivar)


@dataclass(slots=True)
class _COperand:
    """How to read one operand in emitted C."""

    elem: str        # expression for element i (uses variable `i0`)
    first: str       # expression for element 0
    rows: str
    cols: str
    is_const: bool
    is_complex: bool = False


class CEmitter:
    def __init__(self, compilation) -> None:
        self.compilation = compilation
        self.func = compilation.exec_func
        self.plan = compilation.plan
        self.lines: list[str] = []
        self._names: dict[str, str] = {}
        self._dim_decls: set[str] = set()
        self._next_id = 0

    # -- naming -------------------------------------------------------------

    def _cname(self, name: str) -> str:
        if name not in self._names:
            safe = (
                name.replace("#", "_v")
                .replace("$", "_t")
                .replace("@", "_i")
                .replace(".", "_")
            )
            self._names[name] = f"m_{safe}_{len(self._names)}"
        return self._names[name]

    def _group_buf(self, name: str) -> str:
        gid = self.plan.group_of.get(name)
        if gid is None:
            # inversion-introduced temp: give it a private static buffer
            return f"loose_{self._cname(name)}"
        return f"g{gid}_buf"

    def _dims(self, name: str) -> tuple[str, str]:
        """(rows, flattened-cols) — rank-3 arrays store cols·pages in
        the column slot so every linear code path stays rank-agnostic."""
        c = self._cname(name)
        self._dim_decls.add(c)
        return f"{c}_r", f"{c}_c"

    def _qdim(self, name: str) -> str:
        """True column count for rank-3 arrays (0 ⇒ rank ≤ 2, use _c)."""
        c = self._cname(name)
        self._dim_decls.add(c)
        return f"{c}_q"

    def _is_complex(self, name: str) -> bool:
        from repro.typing.intrinsic import Intrinsic

        gid = self.plan.group_of.get(name)
        if gid is not None:
            return self.plan.groups[gid].intrinsic is Intrinsic.COMPLEX
        return (
            self.compilation.env.of(name).intrinsic is Intrinsic.COMPLEX
        )

    def _ctype_of(self, name: str) -> str:
        return "double complex" if self._is_complex(name) else "double"

    def _operand(self, op: Operand) -> _COperand:
        if isinstance(op, Const):
            if op.value.imag != 0:
                lit = f"({op.value.real!r} + {op.value.imag!r} * I)"
                return _COperand(lit, lit, "1", "1", True, True)
            lit = repr(op.value.real)
            return _COperand(lit, lit, "1", "1", True)
        if isinstance(op, StrConst):
            raise CodegenError("string operand where array expected")
        buf = self._group_buf(op.name)
        r, c = self._dims(op.name)
        return _COperand(
            f"{buf}[i0]", f"{buf}[0]", r, c, False,
            self._is_complex(op.name),
        )

    # -- driver ---------------------------------------------------------------

    def emit(self) -> str:
        out: list[str] = [RUNTIME_PREAMBLE]
        self._check_supported()

        heap_groups = [
            g for g in self.plan.groups
            if g.storage is StorageClass.HEAP
        ]
        from repro.typing.intrinsic import Intrinsic

        for g in heap_groups:
            ctype = (
                "double complex"
                if g.intrinsic is Intrinsic.COMPLEX
                else "double"
            )
            out.append(
                f"static {ctype} *g{g.gid}_buf = NULL; "
                f"static long g{g.gid}_cap = 0;"
            )
        out.append("")
        out.append("int main(void) {")

        body: list[str] = []
        self.lines = body
        for bid in sorted(self.func.blocks):
            block = self.func.blocks[bid]
            body.append(f"B{bid}: ;")
            for instr in block.instrs:
                self._emit_instr(instr)
            self._emit_terminator(block.terminator)

        # declarations, gathered while emitting the body
        decls: list[str] = []
        from repro.typing.intrinsic import Intrinsic, scalar_size

        for g in self.plan.groups:
            if g.storage is StorageClass.STACK:
                per_elem = max(1, scalar_size(g.intrinsic))
                elems = max(1, (g.static_size or per_elem) // per_elem)
                ctype = (
                    "double complex"
                    if g.intrinsic is Intrinsic.COMPLEX
                    else "double"
                )
                decls.append(
                    f"    static {ctype} g{g.gid}_buf[{elems}];"
                )
        for name in sorted(self._loose_names):
            decls.append(f"    static double loose_{name}[1];")
        for c in sorted(self._dim_decls):
            decls.append(f"    long {c}_r = 1, {c}_c = 1, {c}_q = 0;")
            decls.append(f"    (void){c}_q;")
        decls.append(
            "    long i0 = 0, i1 = 0, i2 = 0, i3 = 0, "
            "n0 = 0, n1 = 0, n2 = 0;"
        )
        decls.append("    double s0 = 0.0, s1 = 0.0;")
        decls.append("    double complex z0 = 0.0, z1 = 0.0;")
        decls.append("    (void)z0; (void)z1;")
        decls.append("    (void)i0; (void)i1; (void)i2; (void)i3;")
        decls.append("    (void)n0; (void)n1; (void)n2;")
        decls.append("    (void)s0; (void)s1;")

        out.extend(decls)
        out.extend("    " + line for line in body)
        out.append("    return 0;")
        out.append("}")
        return "\n".join(out) + "\n"

    @property
    def _loose_names(self) -> set[str]:
        loose = set()
        for instr in self.func.instructions():
            for res in instr.results:
                if res not in self.plan.group_of:
                    loose.add(self._cname(res))
            for arg in instr.args:
                if isinstance(arg, Var) and arg.name not in self.plan.group_of:
                    loose.add(self._cname(arg.name))
        return loose

    def _check_supported(self) -> None:
        from repro.typing.intrinsic import Intrinsic

        for name in self.func.defined_vars():
            vt = self.compilation.env.of(name)
            if vt.shape.rank > 3:
                raise CodegenError(
                    f"{name}: rank-{vt.shape.rank} arrays unsupported in "
                    "the C demo backend"
                )

    # -- statements ------------------------------------------------------

    def _L(self, text: str) -> None:
        self.lines.append(text)

    def _resize_for(self, name: str, n_expr: str) -> None:
        """Ensure the destination buffer can hold ``n_expr`` elements."""
        gid = self.plan.group_of.get(name)
        if gid is None:
            return
        group = self.plan.groups[gid]
        if group.storage is StorageClass.HEAP:
            fn = "rt_resize_z" if self._is_complex(name) else "rt_resize"
            self._L(
                f"g{gid}_buf = {fn}(g{gid}_buf, &g{gid}_cap, "
                f"{n_expr});"
            )

    def _emit_terminator(self, term) -> None:
        if isinstance(term, Jump):
            self._L(f"goto B{term.target};")
        elif isinstance(term, Branch):
            cond = term.condition
            if isinstance(cond, Const):
                expr = "1" if cond.value != 0 else "0"
            else:
                if self._is_complex(cond.name):
                    raise CodegenError(
                        "branching on complex values unsupported in C demo"
                    )
                buf = self._group_buf(cond.name)
                r, c = self._dims(cond.name)
                expr = f"rt_istrue({buf}, {r}, {c})"
            self._L(
                f"if ({expr}) goto B{term.true_target}; "
                f"else goto B{term.false_target};"
            )
        elif isinstance(term, Ret):
            self._L("return 0;")

    # -- instructions ----------------------------------------------------

    def _emit_instr(self, instr: Instr) -> None:
        op = instr.op
        if op == "const":
            self._emit_const(instr)
        elif op == "copy":
            self._emit_copy(instr)
        elif op in _ELEMENTWISE_EXPR:
            self._emit_elementwise(instr)
        elif op == "mul":
            self._emit_mul(instr)
        elif op in ("div", "ldiv", "pow"):
            self._emit_scalar_matrix_op(instr)
        elif op == "neg":
            self._emit_unary(instr, "(-({x}))")
        elif op == "not":
            self._emit_unary(instr, "(({x} == 0.0) ? 1.0 : 0.0)")
        elif op in ("transpose", "ctranspose"):
            self._emit_transpose(instr)
        elif op == "range":
            self._emit_range(instr)
        elif op == "forindex":
            v = instr.results[0]
            vbuf = self._group_buf(v)
            vr, vc = self._dims(v)
            start = self._scalar_expr(instr.args[0])
            step = self._scalar_expr(instr.args[1])
            counter = self._scalar_expr(instr.args[3])
            self._resize_for(v, "1")
            self._L(f"{vbuf}[0] = {start} + {counter} * {step};")
            self._L(f"{vr} = 1; {vc} = 1;")
        elif op == "subsref":
            self._emit_subsref(instr)
        elif op == "subsasgn":
            self._emit_subsasgn(instr)
        elif op in ("horzcat", "vertcat"):
            self._emit_concat(instr, horizontal=(op == "horzcat"))
        elif op == "empty":
            v = instr.results[0]
            r, c = self._dims(v)
            self._L(f"{r} = 0; {c} = 0;")
        elif op == "undef":
            v = instr.results[0]
            r, c = self._dims(v)
            self._L(f"{r} = 0; {c} = 0;")
        elif op == "display":
            self._emit_display(instr)
        elif instr.is_call:
            self._emit_call(instr)
        else:
            raise CodegenError(f"IR op {op!r} unsupported in C demo backend")

    def _emit_const(self, instr: Instr) -> None:
        v = instr.results[0]
        operand = instr.args[0]
        buf = self._group_buf(v)
        r, c = self._dims(v)
        if isinstance(operand, StrConst):
            # char arrays are code-point vectors; display of strings is
            # outside the demo subset, but comparisons/lengths work
            text = operand.value
            self._resize_for(v, str(max(1, len(text))))
            for i, ch in enumerate(text):
                self._L(f"{buf}[{i}] = {float(ord(ch))!r};")
            self._L(f"{r} = 1; {c} = {len(text)};")
            return
        if operand.value.imag != 0:  # type: ignore[union-attr]
            raise CodegenError("complex literal unsupported in C demo")
        self._resize_for(v, "1")
        self._L(f"{buf}[0] = {operand.value.real!r};")  # type: ignore[union-attr]
        self._L(f"{r} = 1; {c} = 1;")

    def _emit_copy(self, instr: Instr) -> None:
        v = instr.results[0]
        src = instr.args[0]
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        if isinstance(src, Const):
            self._resize_for(v, "1")
            self._L(f"{vbuf}[0] = {src.value.real!r};")
            self._L(f"{vr} = 1; {vc} = 1;")
            return
        assert isinstance(src, Var)
        sbuf = self._group_buf(src.name)
        sr, sc = self._dims(src.name)
        vq, sq = self._qdim(v), self._qdim(src.name)
        if self.plan.same_storage(v, src.name):
            # identity assignment: no data movement (paper §2.2.1)
            self._L(f"{vr} = {sr}; {vc} = {sc}; {vq} = {sq};")
            return
        self._resize_for(v, f"{sr} * {sc}")
        v_z, s_z = self._is_complex(v), self._is_complex(src.name)
        if v_z == s_z:
            elem_type = "double complex" if v_z else "double"
            self._L(
                f"memcpy({vbuf}, {sbuf}, "
                f"(size_t)({sr} * {sc}) * sizeof({elem_type}));"
            )
        else:
            # converting copy (real ↔ complex buffers)
            self._L(
                f"for (i0 = 0; i0 < {sr} * {sc}; i0++) "
                f"{vbuf}[i0] = {sbuf}[i0];"
            )
        self._L(f"{vr} = {sr}; {vc} = {sc}; {vq} = {sq};")

    def _emit_elementwise(self, instr: Instr) -> None:
        """The Figure-1 pattern: scalar/scalar/array dispatch."""
        expr = _ELEMENTWISE_EXPR[instr.op]
        if instr.op == "elpow" and self._any_complex(instr):
            expr = "cpow({x}, {y})"
        if instr.op in ("eq", "ne") and self._any_complex(instr):
            expr = expr  # C99 ==/!= work on complex values
        elif instr.op in ("lt", "le", "gt", "ge") and self._any_complex(
            instr
        ):
            raise CodegenError(
                "ordered comparison of complex values unsupported"
            )
        self._emit_elementwise_generic(instr, expr)

    def _any_complex(self, instr: Instr) -> bool:
        for operand in instr.args:
            if isinstance(operand, Var) and self._is_complex(operand.name):
                return True
            if isinstance(operand, Const) and operand.value.imag != 0:
                return True
        return any(self._is_complex(r) for r in instr.results)

    def _emit_elementwise_generic(self, instr: Instr, expr: str) -> None:
        v = instr.results[0]
        x = self._operand(instr.args[0])
        y = self._operand(instr.args[1])
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)

        def loop(n_expr, x_elem, y_elem, rr, cc):
            self._resize_for(v, n_expr)
            body = expr.format(x=x_elem, y=y_elem)
            self._L(f"n0 = {n_expr};")
            self._L(f"for (i0 = 0; i0 < n0; i0++) {vbuf}[i0] = {body};")
            self._L(f"{vr} = {rr}; {vc} = {cc};")

        # scalar snapshots go to complex scratch vars when the value
        # may carry an imaginary part
        sx = "z0" if x.is_complex else "s0"
        sy = "z1" if y.is_complex else "s1"
        if x.is_const and y.is_const:
            self._resize_for(v, "1")
            self._L(f"{vbuf}[0] = {expr.format(x=x.first, y=y.first)};")
            self._L(f"{vr} = 1; {vc} = 1;")
            return
        if x.is_const:
            self._L(f"{sx} = {x.first};")
            loop(f"{y.rows} * {y.cols}", sx, y.elem, y.rows, y.cols)
            return
        if y.is_const:
            self._L(f"{sy} = {y.first};")
            loop(f"{x.rows} * {x.cols}", x.elem, sy, x.rows, x.cols)
            return
        # full run-time dispatch (Figure 1); scalar operands are read
        # into locals before the loop so in-place evaluation is safe
        self._L(f"if ({x.rows} == 1 && {x.cols} == 1) {{")
        self._L(f"    {sx} = {x.first};")
        self._indent(loop, f"{y.rows} * {y.cols}", sx, y.elem,
                     y.rows, y.cols)
        self._L(f"}} else if ({y.rows} == 1 && {y.cols} == 1) {{")
        self._L(f"    {sy} = {y.first};")
        self._indent(loop, f"{x.rows} * {x.cols}", x.elem, sy,
                     x.rows, x.cols)
        self._L("} else {")
        self._indent(loop, f"{x.rows} * {x.cols}", x.elem, y.elem,
                     x.rows, x.cols)
        self._L("}")

    def _indent(self, fn, *args) -> None:
        saved = self.lines
        inner: list[str] = []
        self.lines = inner
        fn(*args)
        self.lines = saved
        self.lines.extend("    " + line for line in inner)

    def _emit_unary(self, instr: Instr, expr: str) -> None:
        v = instr.results[0]
        x = self._operand(instr.args[0])
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        n = f"{x.rows} * {x.cols}"
        self._resize_for(v, n)
        self._L(f"n0 = {n};")
        self._L(
            f"for (i0 = 0; i0 < n0; i0++) "
            f"{vbuf}[i0] = {expr.format(x=x.elem)};"
        )
        self._L(f"{vr} = {x.rows}; {vc} = {x.cols};")

    def _emit_mul(self, instr: Instr) -> None:
        v = instr.results[0]
        x = self._operand(instr.args[0])
        y = self._operand(instr.args[1])
        if x.is_const or y.is_const:
            self._emit_elementwise(
                Instr(op="elmul", results=instr.results, args=instr.args)
            )
            return
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        xbuf = x.elem.split("[")[0]
        ybuf = y.elem.split("[")[0]
        # run-time dispatch: scalar cases are elementwise
        self._L(f"if (({x.rows} == 1 && {x.cols} == 1) || "
                f"({y.rows} == 1 && {y.cols} == 1)) {{")
        saved = self.lines
        inner: list[str] = []
        self.lines = inner
        self._emit_elementwise(
            Instr(op="elmul", results=instr.results, args=instr.args)
        )
        self.lines = saved
        self.lines.extend("    " + line for line in inner)
        self._L("} else {")
        self._resize_for(v, f"{x.rows} * {y.cols}")
        self._L(f"    for (i0 = 0; i0 < {x.rows}; i0++)")
        self._L(f"      for (i1 = 0; i1 < {y.cols}; i1++) {{")
        self._L("        s0 = 0.0;")
        self._L(f"        for (i2 = 0; i2 < {x.cols}; i2++)")
        self._L(
            f"          s0 += {xbuf}[i2 * {x.rows} + i0] * "
            f"{ybuf}[i1 * {y.rows} + i2];"
        )
        self._L(f"        {vbuf}[i1 * {x.rows} + i0] = s0;")
        self._L("      }")
        self._L(f"    {vr} = {x.rows}; {vc} = {y.cols};")
        self._L("}")

    def _emit_scalar_matrix_op(self, instr: Instr) -> None:
        """div/ldiv/pow — scalar forms only in the demo backend."""
        op = instr.op
        x = self._operand(instr.args[0])
        y = self._operand(instr.args[1])
        mapping = {"div": "eldiv", "ldiv": "elldiv", "pow": "elpow"}
        self._emit_elementwise(
            Instr(
                op=mapping[op], results=instr.results, args=instr.args
            )
        )

    def _emit_transpose(self, instr: Instr) -> None:
        v = instr.results[0]
        x = self._operand(instr.args[0])
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        xbuf = x.elem.split("[")[0]
        source = f"{xbuf}[i1 * {x.rows} + i0]"
        if instr.op == "ctranspose" and x.is_complex:
            source = f"conj({source})"
        self._resize_for(v, f"{x.rows} * {x.cols}")
        self._L(f"for (i0 = 0; i0 < {x.rows}; i0++)")
        self._L(f"  for (i1 = 0; i1 < {x.cols}; i1++)")
        self._L(
            f"    {vbuf}[i0 * {x.cols} + i1] = {source};"
        )
        self._L(f"{vr} = {x.cols}; {vc} = {x.rows};")

    def _emit_range(self, instr: Instr) -> None:
        v = instr.results[0]
        start = self._scalar_expr(instr.args[0])
        step = self._scalar_expr(instr.args[1])
        stop = self._scalar_expr(instr.args[2])
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        self._L(f"s0 = {start}; s1 = {step};")
        self._L(f"n0 = (long)floor(({stop} - s0) / s1 + 1e-10) + 1;")
        self._L("if (n0 < 0) n0 = 0;")
        self._resize_for(v, "n0")
        self._L(f"for (i0 = 0; i0 < n0; i0++) {vbuf}[i0] = s0 + s1 * i0;")
        self._L(f"{vr} = 1; {vc} = n0;")

    def _scalar_expr(self, operand: Operand) -> str:
        if isinstance(operand, Const):
            return repr(operand.value.real)
        if isinstance(operand, Var):
            vartype = self.compilation.env.of(operand.name)
            if vartype.shape.is_scalar:
                buf = f"{self._group_buf(operand.name)}[0]"
                if self._is_complex(operand.name):
                    return f"creal({buf})"
                return buf
            if not vartype.shape.maybe_scalar:
                raise CodegenError(
                    f"{operand.name}: non-scalar value (shape "
                    f"{vartype.shape}) where the C demo backend needs "
                    "a scalar (e.g. a vector subscript)"
                )
            if self._is_complex(operand.name):
                raise CodegenError(
                    f"{operand.name}: complex where a real scalar is "
                    "needed in the C demo backend"
                )
            # dynamically checked: traps with exit(3) if not 1×1
            buf = self._group_buf(operand.name)
            r, c = self._dims(operand.name)
            return f"rt_scalar({buf}, {r}, {c})"
        raise CodegenError("string where scalar expected")

    def _emit_subsref(self, instr: Instr) -> None:
        v = instr.results[0]
        base = instr.args[0]
        subs = instr.args[1:]
        assert isinstance(base, Var)
        bbuf = self._group_buf(base.name)
        br, bc = self._dims(base.name)
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        def provably_scalar(sub) -> bool:
            if isinstance(sub, StrConst):
                return False
            if isinstance(sub, Const):
                return True
            return self.compilation.env.of(sub.name).shape.is_scalar

        if len(subs) == 1 and provably_scalar(subs[0]):
            idx = self._scalar_expr(subs[0])
            self._resize_for(v, "1")
            self._L(f"{vbuf}[0] = {bbuf}[(long){idx} - 1];")
            self._L(f"{vr} = 1; {vc} = 1;")
            return
        if len(subs) == 2:
            s1, s2 = subs
            if provably_scalar(s1) and provably_scalar(s2):
                i = self._scalar_expr(s1)
                j = self._scalar_expr(s2)
                self._resize_for(v, "1")
                self._L(
                    f"{vbuf}[0] = {bbuf}[((long){j} - 1) * {br} + "
                    f"(long){i} - 1];"
                )
                self._L(f"{vr} = 1; {vc} = 1;")
                return
            if isinstance(s1, StrConst) and provably_scalar(s2):
                j = self._scalar_expr(s2)
                self._resize_for(v, br)
                self._L(f"n0 = {br};")
                self._L(
                    f"for (i0 = 0; i0 < n0; i0++) {vbuf}[i0] = "
                    f"{bbuf}[((long){j} - 1) * {br} + i0];"
                )
                self._L(f"{vr} = {br}; {vc} = 1;")
                return
            if provably_scalar(s1) and isinstance(s2, StrConst):
                i = self._scalar_expr(s1)
                self._resize_for(v, bc)
                self._L(f"n0 = {bc};")
                self._L(
                    f"for (i0 = 0; i0 < n0; i0++) {vbuf}[i0] = "
                    f"{bbuf}[i0 * {br} + (long){i} - 1];"
                )
                self._L(f"{vr} = 1; {vc} = {bc};")
                return
        if len(subs) == 1:
            # single vector subscript: gather, source orientation
            desc = self._subscript_desc(subs[0], f"{br} * {bc}")
            self._L(f"n0 = {desc.count};")
            self._resize_for(v, "n0")
            self._L(
                f"for (i0 = 0; i0 < n0; i0++) {vbuf}[i0] = "
                f"{bbuf}[rt_idx({desc.value('i0')}, {br} * {bc})];"
            )
            self._L(f"if ({br} == 1) {{ {vr} = 1; {vc} = n0; }}")
            self._L(f"else {{ {vr} = n0; {vc} = 1; }}")
            return
        if len(subs) == 2:
            # general (scalar | vector | colon) × 2 gather
            d1 = self._subscript_desc(subs[0], br)
            d2 = self._subscript_desc(subs[1], bc)
            self._L(f"n0 = {d1.count}; n1 = {d2.count};")
            self._resize_for(v, "n0 * n1")
            self._L("for (i0 = 0; i0 < n0; i0++)")
            self._L("  for (i1 = 0; i1 < n1; i1++)")
            self._L(
                f"    {vbuf}[i1 * n0 + i0] = "
                f"{bbuf}[rt_idx({d2.value('i1')}, {bc}) * {br} + "
                f"rt_idx({d1.value('i0')}, {br})];"
            )
            self._L(f"{vr} = n0; {vc} = n1;")
            return
        if len(subs) == 3:
            bq = self._qdim(base.name)
            true_c = f"({bq} ? {bq} : {bc})"
            pages = f"({bc} / {true_c})"
            d1 = self._subscript_desc(subs[0], br)
            d2 = self._subscript_desc(subs[1], true_c)
            d3 = self._subscript_desc(subs[2], pages)
            self._L(
                f"n0 = {d1.count}; n1 = {d2.count}; n2 = {d3.count};"
            )
            self._resize_for(v, "n0 * n1 * n2")
            self._L("for (i0 = 0; i0 < n0; i0++)")
            self._L("  for (i1 = 0; i1 < n1; i1++)")
            self._L("    for (i2 = 0; i2 < n2; i2++)")
            self._L(
                f"      {vbuf}[(i2 * n1 + i1) * n0 + i0] = "
                f"{bbuf}[(rt_idx({d3.value('i2')}, {pages}) * {true_c} + "
                f"rt_idx({d2.value('i1')}, {true_c})) * {br} + "
                f"rt_idx({d1.value('i0')}, {br})];"
            )
            vq = self._qdim(v)
            self._L(f"{vr} = n0; {vc} = n1 * n2; {vq} = n1;")
            return
        raise CodegenError(
            "subsref form unsupported in C demo backend "
            "(rank ≤ 3 subscript lists only)"
        )

    def _subscript_desc(self, sub: Operand, extent: str) -> _SubscriptDesc:
        """Describe a (scalar | vector | ':') subscript for C loops."""
        if isinstance(sub, StrConst):  # ':'
            return _SubscriptDesc(str(extent), "(double)({i} + 1)")
        if isinstance(sub, Const):
            return _SubscriptDesc("1", repr(sub.value.real))
        assert isinstance(sub, Var)
        vartype = self.compilation.env.of(sub.name)
        buf = self._group_buf(sub.name)
        if vartype.shape.is_scalar:
            return _SubscriptDesc("1", f"{buf}[0]")
        r, c = self._dims(sub.name)
        return _SubscriptDesc(f"({r} * {c})", f"{buf}[{{i}}]")

    def _emit_subsasgn(self, instr: Instr) -> None:
        v = instr.results[0]
        base = instr.args[0]
        rhs = instr.args[1]
        subs = instr.args[2:]
        assert isinstance(base, Var)
        if not self.plan.same_storage(v, base.name) and isinstance(
            base, Var
        ):
            # materialize the base copy first, then update in place
            self._emit_copy(
                Instr(op="copy", results=[v], args=[base])
            )
            br, bc = self._dims(v)
        else:
            sr, sc = self._dims(base.name)
            vr, vc = self._dims(v)
            self._L(
                f"{vr} = {sr}; {vc} = {sc}; "
                f"{self._qdim(v)} = {self._qdim(base.name)};"
            )
            br, bc = vr, vc
        vbuf = self._group_buf(v)
        if isinstance(rhs, StrConst):
            raise CodegenError("string subsasgn rhs unsupported in C demo")
        rhs_scalar = isinstance(rhs, Const) or (
            isinstance(rhs, Var)
            and self.compilation.env.of(rhs.name).shape.is_scalar
        )
        scalar_subs = all(
            not isinstance(s, StrConst)
            and (
                isinstance(s, Const)
                or self.compilation.env.of(s.name).shape.is_scalar
            )
            for s in subs
        )
        if not (rhs_scalar and scalar_subs) or len(subs) == 3:
            self._emit_subsasgn_general(instr, br, bc)
            return
        value = self._scalar_expr(rhs)
        if len(subs) == 1 and not isinstance(subs[0], StrConst):
            idx = self._scalar_expr(subs[0])
            self._L(f"n0 = (long){idx};")
            self._L(f"if (n0 > {br} * {bc}) {{")
            gid = self.plan.group_of.get(v)
            if gid is not None and self.plan.groups[gid].storage is (
                StorageClass.HEAP
            ):
                self._L(
                    f"    g{gid}_buf = rt_resize(g{gid}_buf, "
                    f"&g{gid}_cap, n0);"
                )
            self._L(
                f"    for (i0 = {br} * {bc}; i0 < n0; i0++) "
                f"{vbuf}[i0] = 0.0;"
            )
            self._L(f"    if ({br} == 1) {bc} = n0; else {br} = n0;")
            self._L("}")
            self._L(f"{vbuf}[n0 - 1] = {value};")
            return
        if len(subs) == 2 and all(
            not isinstance(s, StrConst) for s in subs
        ):
            i = self._scalar_expr(subs[0])
            j = self._scalar_expr(subs[1])
            self._L(
                f"{vbuf}[((long){j} - 1) * {br} + (long){i} - 1] "
                f"= {value};"
            )
            return
        raise CodegenError(
            "subsasgn form unsupported in C demo backend"
        )

    def _emit_subsasgn_general(self, instr: Instr, br, bc) -> None:
        """(scalar | vector | ':') × ≤2 scatter, in-bounds only.

        Out-of-range indices trap via rt_idx — expansion through
        vector subscripts is outside the demo subset.
        """
        v = instr.results[0]
        rhs = instr.args[1]
        subs = instr.args[2:]
        if len(subs) > 3:
            raise CodegenError(
                "rank>3 subsasgn unsupported in C demo backend"
            )
        vbuf = self._group_buf(v)
        vq = self._qdim(v)
        true_c = f"({vq} ? {vq} : {bc})"
        pages = f"({bc} / {true_c})"
        d1 = self._subscript_desc(subs[0], br)
        if len(subs) >= 2:
            extent2 = true_c if len(subs) == 3 else bc
            d2 = self._subscript_desc(subs[1], extent2)
        else:
            d2 = _SubscriptDesc("1", "1.0")
        if len(subs) == 3:
            d3 = self._subscript_desc(subs[2], pages)
        else:
            d3 = _SubscriptDesc("1", "1.0")
        self._L(
            f"n0 = {d1.count}; n1 = {d2.count}; n2 = {d3.count};"
        )
        rhs_is_scalar = isinstance(rhs, Const) or (
            isinstance(rhs, Var)
            and self.compilation.env.of(rhs.name).shape.is_scalar
        )
        if rhs_is_scalar:
            self._L(f"s0 = {self._scalar_expr(rhs)};")
            elem = "s0"
        else:
            assert isinstance(rhs, Var)
            rbuf = self._group_buf(rhs.name)
            rr, rc = self._dims(rhs.name)
            self._L(f"if ({rr} * {rc} != n0 * n1 * n2) {{")
            self._L(
                '    fprintf(stderr, "runtime error: subscripted '
                'assignment dimension mismatch\\n"); exit(5);'
            )
            self._L("}")
            elem = f"{rbuf}[(i2 * n1 + i1) * n0 + i0]"
        if len(subs) == 3:
            target = (
                f"{vbuf}[(rt_idx({d3.value('i2')}, {pages}) * {true_c} "
                f"+ rt_idx({d2.value('i1')}, {true_c})) * {br} + "
                f"rt_idx({d1.value('i0')}, {br})]"
            )
        elif len(subs) == 2:
            target = (
                f"{vbuf}[rt_idx({d2.value('i1')}, {bc}) * {br} + "
                f"rt_idx({d1.value('i0')}, {br})]"
            )
        else:
            target = f"{vbuf}[rt_idx({d1.value('i0')}, {br} * {bc})]"
        self._L("for (i0 = 0; i0 < n0; i0++)")
        self._L("  for (i1 = 0; i1 < n1; i1++)")
        self._L("    for (i2 = 0; i2 < n2; i2++)")
        self._L(f"      {target} = {elem};")

    def _emit_concat(self, instr: Instr, horizontal: bool) -> None:
        v = instr.results[0]
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        parts = [self._operand(a) for a in instr.args]
        total = " + ".join(
            f"({p.rows} * {p.cols})" for p in parts
        )
        self._resize_for(v, total)
        if horizontal:
            self._L("n0 = 0;")
            for p, arg in zip(parts, instr.args):
                if p.is_const:
                    self._L(f"{vbuf}[n0] = {p.first}; n0 += 1;")
                else:
                    buf = p.elem.split("[")[0]
                    self._L(
                        f"for (i0 = 0; i0 < {p.rows} * {p.cols}; i0++) "
                        f"{vbuf}[n0 + i0] = {buf}[i0];"
                    )
                    self._L(f"n0 += {p.rows} * {p.cols};")
            self._L(f"{vr} = {parts[0].rows}; {vc} = 0;")
            cols = " + ".join(p.cols for p in parts)
            self._L(f"{vc} = {cols};")
            return
        # vertical: column-major interleave
        rows_total = " + ".join(p.rows for p in parts)
        cols = parts[0].cols
        self._L(f"n0 = {rows_total};")
        offset = "0"
        for p in parts:
            if p.is_const:
                self._L(f"{vbuf}[{offset}] = {p.first};")
            else:
                buf = p.elem.split("[")[0]
                self._L(f"for (i1 = 0; i1 < {p.cols}; i1++)")
                self._L(f"  for (i0 = 0; i0 < {p.rows}; i0++)")
                self._L(
                    f"    {vbuf}[i1 * n0 + ({offset}) + i0] = "
                    f"{buf}[i1 * {p.rows} + i0];"
                )
            offset = f"({offset}) + {p.rows}"
        self._L(f"{vr} = n0; {vc} = {cols};")

    def _emit_display(self, instr: Instr) -> None:
        value = instr.args[0]
        label = instr.args[1]
        assert isinstance(label, StrConst)
        self._L(f'printf("%s =\\n", "{label.value}");')
        if isinstance(value, Var):
            buf = self._group_buf(value.name)
            r, c = self._dims(value.name)
            fn = (
                "rt_print_matrix_z"
                if self._is_complex(value.name)
                else "rt_print_matrix"
            )
            self._L(f"{fn}({buf}, {r}, {c});")
        else:
            self._L(f"rt_print_scalar({self._scalar_expr(value)});")

    # -- builtin calls ----------------------------------------------------

    def _emit_call(self, instr: Instr) -> None:
        name = instr.callee
        if name == "disp":
            arg = instr.args[0]
            if isinstance(arg, StrConst):
                self._L(f'printf("%s\\n", "{arg.value}");')
                return
            if isinstance(arg, Const):
                self._L(f"rt_print_scalar({arg.value.real!r});")
                return
            x = self._operand(arg)
            buf = x.elem.split("[")[0]
            fn = "rt_print_matrix_z" if x.is_complex else "rt_print_matrix"
            self._L(f"{fn}({buf}, {x.rows}, {x.cols});")
            return
        if name == "fprintf":
            self._emit_fprintf(instr)
            return
        if not instr.results:
            if name in ("tic", "error"):
                if name == "error":
                    self._L('fprintf(stderr, "error\\n"); exit(1);')
                return
            raise CodegenError(f"effect builtin {name!r} unsupported in C")
        v = instr.results[0]
        vbuf = self._group_buf(v)
        vr, vc = self._dims(v)
        if name in ("zeros", "ones", "eye", "rand"):
            dims = [self._scalar_expr(a) for a in instr.args] or ["1"]
            if len(dims) > 3 or (len(dims) == 3 and name == "eye"):
                raise CodegenError(f"{name}: too many extents for C demo")
            rexp = f"(long){dims[0]}"
            cexp = f"(long){dims[1]}" if len(dims) > 1 else rexp
            if len(dims) == 3:
                vq = self._qdim(v)
                self._L(f"{vq} = (long){dims[1]};")
                cexp = f"((long){dims[1]} * (long){dims[2]})"
            fill = {
                "zeros": "0.0",
                "ones": "1.0",
                "eye": None,
                "rand": "rt_rand1()",
            }[name]
            self._L(f"{vr} = {rexp}; {vc} = {cexp};")
            self._resize_for(v, f"{vr} * {vc}")
            if name == "eye":
                self._L(
                    f"for (i0 = 0; i0 < {vr} * {vc}; i0++) "
                    f"{vbuf}[i0] = 0.0;"
                )
                self._L(
                    f"for (i0 = 0; i0 < (({vr} < {vc}) ? {vr} : {vc}); "
                    f"i0++) {vbuf}[i0 * {vr} + i0] = 1.0;"
                )
            else:
                self._L(
                    f"for (i0 = 0; i0 < {vr} * {vc}; i0++) "
                    f"{vbuf}[i0] = {fill};"
                )
            return
        if name in _UNARY_CALLS:
            arg = instr.args[0]
            arg_complex = (
                isinstance(arg, Var) and self._is_complex(arg.name)
            ) or (isinstance(arg, Const) and arg.value.imag != 0)
            if arg_complex:
                if name not in _COMPLEX_UNARY:
                    raise CodegenError(
                        f"{name}: complex argument unsupported in C demo"
                    )
                self._emit_unary(instr, _COMPLEX_UNARY[name])
                return
            self._emit_unary(
                instr, _UNARY_CALLS[name]
            )
            return
        if name == "mod":
            x = self._operand(instr.args[0])
            y = self._scalar_expr(instr.args[1])
            self._emit_unary(
                Instr(op="call:mod", results=instr.results,
                      args=[instr.args[0]]),
                f"({{x}} - floor({{x}} / {y}) * {y})",
            )
            return
        if name in ("min", "max") and len(instr.args) == 2:
            # elementwise two-argument form
            fn = "fmin" if name == "min" else "fmax"
            self._emit_elementwise_generic(
                instr, f"{fn}({{x}}, {{y}})"
            )
            return
        if name in _REDUCERS:
            x = self._operand(instr.args[0])
            if x.is_complex:
                raise CodegenError(
                    f"{name}: complex reductions unsupported in C demo"
                )
            if len(instr.args) > 1:
                raise CodegenError(
                    f"two-argument {name} unsupported in C demo"
                )
            buf = x.elem.split("[")[0]
            fn = _REDUCERS[name]
            self._L(f"if ({x.rows} == 1 || {x.cols} == 1) {{")
            self._resize_for(v, "1")
            self._L(
                f"    {vbuf}[0] = {fn}({buf}, {x.rows} * {x.cols});"
            )
            self._L(f"    {vr} = 1; {vc} = 1;")
            self._L("} else {")
            self._resize_for(v, x.cols)
            self._L(f"    for (i1 = 0; i1 < {x.cols}; i1++)")
            self._L(
                f"        {vbuf}[i1] = {fn}({buf} + i1 * {x.rows}, "
                f"{x.rows});"
            )
            self._L(f"    {vr} = 1; {vc} = {x.cols};")
            self._L("}")
            return
        if name == "norm":
            x = self._operand(instr.args[0])
            buf = x.elem.split("[")[0]
            self._resize_for(v, "1")
            self._L(f"{vbuf}[0] = rt_norm({buf}, {x.rows} * {x.cols});")
            self._L(f"{vr} = 1; {vc} = 1;")
            return
        if name in ("numel", "length"):
            x = self._operand(instr.args[0])
            self._resize_for(v, "1")
            expr = (
                f"(double)({x.rows} * {x.cols})"
                if name == "numel"
                else f"(double)(({x.rows} > {x.cols}) ? {x.rows} : {x.cols})"
            )
            self._L(f"{vbuf}[0] = {expr};")
            self._L(f"{vr} = 1; {vc} = 1;")
            return
        if name == "size":
            x = self._operand(instr.args[0])
            if len(instr.args) > 1:
                k = self._scalar_expr(instr.args[1])
                self._resize_for(v, "1")
                self._L(
                    f"{vbuf}[0] = ((long){k} == 1) ? (double){x.rows} "
                    f": (double){x.cols};"
                )
                self._L(f"{vr} = 1; {vc} = 1;")
                return
            if len(instr.results) == 2:
                v2 = instr.results[1]
                v2buf = self._group_buf(v2)
                v2r, v2c = self._dims(v2)
                self._resize_for(v, "1")
                self._resize_for(v2, "1")
                self._L(f"{vbuf}[0] = (double){x.rows};")
                self._L(f"{v2buf}[0] = (double){x.cols};")
                self._L(f"{vr} = 1; {vc} = 1; {v2r} = 1; {v2c} = 1;")
                return
            self._resize_for(v, "2")
            self._L(f"{vbuf}[0] = (double){x.rows};")
            self._L(f"{vbuf}[1] = (double){x.cols};")
            self._L(f"{vr} = 1; {vc} = 2;")
            return
        raise CodegenError(
            f"builtin {name!r} unsupported in the C demo backend"
        )

    def _emit_fprintf(self, instr: Instr) -> None:
        fmt = instr.args[0]
        if not isinstance(fmt, StrConst):
            raise CodegenError("fprintf needs a literal format in C demo")
        template = fmt.value.replace("\\n", "\\n").replace('"', '\\"')
        args = []
        casts = []
        i = 0
        arg_idx = 1
        text = fmt.value
        out = []
        while i < len(text):
            if text[i] == "%" and i + 1 < len(text):
                j = i + 1
                while j < len(text) and text[j] not in "diufgGeEsxc%":
                    j += 1
                kind = text[j] if j < len(text) else "%"
                if kind == "%":
                    out.append("%%")
                    i = j + 1
                    continue
                spec = text[i : j + 1]
                value = self._scalar_expr(instr.args[arg_idx])
                arg_idx += 1
                if kind in "diu":
                    out.append(spec.replace(kind, "ld"))
                    casts.append(f"(long)({value})")
                else:
                    out.append(spec)
                    casts.append(f"({value})")
                i = j + 1
                continue
            ch = text[i]
            out.append('\\"' if ch == '"' else ch)
            i += 1
        fmt_c = "".join(out)
        arg_list = (", " + ", ".join(casts)) if casts else ""
        self._L(f'printf("{fmt_c}"{arg_list});')


def generate_c(compilation) -> str:
    """Generate the C translation of a compiled program."""
    return CEmitter(compilation).emit()
