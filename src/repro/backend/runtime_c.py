"""The C runtime preamble emitted at the top of every translation.

Small, self-contained helpers: resizing, printing (format-compatible
with the Python runtime so differential tests can compare stdout
byte-for-byte), a few math builtins, and a portable LCG for ``rand``.
"""

RUNTIME_PREAMBLE = r"""
/* --- mat2c runtime (reproduction) ----------------------------------- */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <complex.h>

static double *rt_resize(double *buf, long *cap, long need) {
    if (need > *cap) {
        buf = (double *)realloc(buf, (size_t)need * sizeof(double));
        if (!buf) { fprintf(stderr, "out of memory\n"); exit(1); }
        *cap = need;
    }
    return buf;
}

static double complex *rt_resize_z(double complex *buf, long *cap,
                                   long need) {
    if (need > *cap) {
        buf = (double complex *)realloc(
            buf, (size_t)need * sizeof(double complex));
        if (!buf) { fprintf(stderr, "out of memory\n"); exit(1); }
        *cap = need;
    }
    return buf;
}

static void rt_print_matrix_z(const double complex *buf, long r, long c) {
    long i, j;
    if (r == 1 && c == 1) {  /* scalar format matches the VM's */
        printf("%.4f + %.4fi\n", creal(buf[0]), cimag(buf[0]));
        return;
    }
    for (i = 0; i < r; i++) {
        for (j = 0; j < c; j++) {
            double complex v = buf[j * r + i];
            if (j) printf("  ");
            printf("%.4f+%.4fi", creal(v), cimag(v));
        }
        printf("\n");
    }
}

/* deterministic LCG; NOT numpy-compatible (tests avoid rand) */
static unsigned long long rt_seed = 88172645463325252ULL;
static double rt_rand1(void) {
    rt_seed ^= rt_seed << 13;
    rt_seed ^= rt_seed >> 7;
    rt_seed ^= rt_seed << 17;
    return (double)(rt_seed >> 11) / 9007199254740992.0;
}

static void rt_print_scalar(double v) {
    if (v == floor(v) && fabs(v) < 1e15) printf("%ld\n", (long)v);
    else printf("%.4f\n", v);
}

static void rt_print_matrix(const double *buf, long r, long c) {
    long i, j;
    if (r == 1 && c == 1) { rt_print_scalar(buf[0]); return; }
    for (i = 0; i < r; i++) {
        for (j = 0; j < c; j++) {
            double v = buf[j * r + i];
            if (j) printf("  ");
            if (v == floor(v) && fabs(v) < 1e15) printf("%ld", (long)v);
            else printf("%.4f", v);
        }
        printf("\n");
    }
}

static double rt_scalar(const double *buf, long r, long c) {
    if (r != 1 || c != 1) {
        fprintf(stderr, "runtime error: expected a scalar, got %ldx%ld\n",
                r, c);
        exit(3);
    }
    return buf[0];
}

static long rt_idx(double v, long extent) {
    long k = (long)v;
    if (k < 1 || k > extent) {
        fprintf(stderr, "runtime error: index %ld out of range 1..%ld\n",
                k, extent);
        exit(4);
    }
    return k - 1;
}

static int rt_istrue(const double *buf, long r, long c) {
    long i, n = r * c;
    if (n == 0) return 0;
    for (i = 0; i < n; i++) if (buf[i] == 0.0) return 0;
    return 1;
}

static double rt_sum(const double *buf, long n) {
    double s = 0.0; long i;
    for (i = 0; i < n; i++) s += buf[i];
    return s;
}

static double rt_prod(const double *buf, long n) {
    double s = 1.0; long i;
    for (i = 0; i < n; i++) s *= buf[i];
    return s;
}

static double rt_min(const double *buf, long n) {
    double s = buf[0]; long i;
    for (i = 1; i < n; i++) if (buf[i] < s) s = buf[i];
    return s;
}

static double rt_max(const double *buf, long n) {
    double s = buf[0]; long i;
    for (i = 1; i < n; i++) if (buf[i] > s) s = buf[i];
    return s;
}

static double rt_norm(const double *buf, long n) {
    double s = 0.0; long i;
    for (i = 0; i < n; i++) s += buf[i] * buf[i];
    return sqrt(s);
}
/* --------------------------------------------------------------------- */
"""
