"""Compile-and-run harness for generated C (integration testing).

The paper compiled mat2c output with Sun Workshop cc ``-xO4``; we use
whatever host C compiler is available at ``-O2``.

When a ``cache_dir`` is given, compiled binaries are reused across
calls, keyed by the SHA-256 of the C source (plus compiler identity):
``<cache_dir>/bin/<hash>/program``.  The binary is built in a
temporary directory and moved into place atomically, so concurrent
test workers sharing one cache race benignly.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from shutil import which

_CFLAGS = ("-O2",)


class CCompilerUnavailable(RuntimeError):
    pass


@dataclass(slots=True)
class CRunResult:
    stdout: str
    stderr: str
    returncode: int
    c_source: str
    cached: bool = False          # binary came from the cache


def find_compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        if which(candidate):
            return candidate
    return None


def binary_cache_key(c_source: str, compiler: str) -> str:
    """Content hash of the C source + compiler identity + flags."""
    payload = "\x00".join((compiler, " ".join(_CFLAGS), c_source))
    return hashlib.sha256(payload.encode()).hexdigest()


def _build(
    compiler: str, src: Path, exe: Path, timeout_seconds: float,
    c_source: str,
) -> None:
    build = subprocess.run(
        [compiler, *_CFLAGS, "-o", str(exe), str(src), "-lm"],
        capture_output=True,
        text=True,
        timeout=timeout_seconds,
    )
    if build.returncode != 0:
        raise RuntimeError(
            f"C compilation failed:\n{build.stderr}\n--- source ---\n"
            + c_source
        )


def compile_and_run(
    c_source: str,
    timeout_seconds: float = 30.0,
    cache_dir: str | Path | None = None,
    injector=None,
) -> CRunResult:
    """Compile the C translation with the host compiler and run it.

    ``cache_dir`` (usually the artifact cache root, see
    :class:`repro.service.cache.ArtifactCache`) enables binary reuse:
    an identical C source is compiled at most once per cache.

    ``injector`` (:class:`repro.faults.FaultInjector`) is consulted at
    the ``cc.compile`` site: a CRASH fault models the host compiler
    blowing up, a HANG models a pathologically slow build.  Either
    lands before any cache lookup, like a real toolchain failure.
    """
    if injector is not None:
        injector.interrupt("cc.compile")
    compiler = find_compiler()
    if compiler is None:
        raise CCompilerUnavailable("no C compiler on PATH")

    cached_exe: Path | None = None
    if cache_dir is not None:
        key = binary_cache_key(c_source, compiler)
        cached_exe = Path(cache_dir) / "bin" / key / "program"
        if cached_exe.is_file() and os.access(cached_exe, os.X_OK):
            return _run(cached_exe, c_source, timeout_seconds, cached=True)

    with tempfile.TemporaryDirectory(prefix="mat2c_") as tmp:
        src = Path(tmp) / "program.c"
        exe = Path(tmp) / "program"
        src.write_text(c_source)
        _build(compiler, src, exe, timeout_seconds, c_source)
        if cached_exe is not None:
            cached_exe.parent.mkdir(parents=True, exist_ok=True)
            staging = cached_exe.parent / f".tmp-{os.getpid()}"
            try:
                # Copy (the tempdir may be on another filesystem), then
                # rename atomically within the cache directory.
                shutil.copy2(exe, staging)
                os.replace(staging, cached_exe)
            except OSError:
                return _run(exe, c_source, timeout_seconds, cached=False)
            return _run(cached_exe, c_source, timeout_seconds, cached=False)
        return _run(exe, c_source, timeout_seconds, cached=False)


def _run(
    exe: Path, c_source: str, timeout_seconds: float, cached: bool
) -> CRunResult:
    run = subprocess.run(
        [str(exe)],
        capture_output=True,
        text=True,
        timeout=timeout_seconds,
    )
    return CRunResult(
        stdout=run.stdout,
        stderr=run.stderr,
        returncode=run.returncode,
        c_source=c_source,
        cached=cached,
    )
