"""Compile-and-run harness for generated C (integration testing).

The paper compiled mat2c output with Sun Workshop cc ``-xO4``; we use
whatever host C compiler is available at ``-O2``.
"""

from __future__ import annotations

import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from shutil import which


class CCompilerUnavailable(RuntimeError):
    pass


@dataclass(slots=True)
class CRunResult:
    stdout: str
    stderr: str
    returncode: int
    c_source: str


def find_compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        if which(candidate):
            return candidate
    return None


def compile_and_run(
    c_source: str, timeout_seconds: float = 30.0
) -> CRunResult:
    """Compile the C translation with the host compiler and run it."""
    compiler = find_compiler()
    if compiler is None:
        raise CCompilerUnavailable("no C compiler on PATH")
    with tempfile.TemporaryDirectory(prefix="mat2c_") as tmp:
        src = Path(tmp) / "program.c"
        exe = Path(tmp) / "program"
        src.write_text(c_source)
        build = subprocess.run(
            [compiler, "-O2", "-o", str(exe), str(src), "-lm"],
            capture_output=True,
            text=True,
            timeout=timeout_seconds,
        )
        if build.returncode != 0:
            raise RuntimeError(
                f"C compilation failed:\n{build.stderr}\n--- source ---\n"
                + c_source
            )
        run = subprocess.run(
            [str(exe)],
            capture_output=True,
            text=True,
            timeout=timeout_seconds,
        )
        return CRunResult(
            stdout=run.stdout,
            stderr=run.stderr,
            returncode=run.returncode,
            c_source=c_source,
        )
