"""C back end: code generation and the host-compiler harness."""

from repro.backend.cc import (
    CCompilerUnavailable,
    CRunResult,
    compile_and_run,
    find_compiler,
)
from repro.backend.cgen import CodegenError, generate_c

__all__ = [
    "CCompilerUnavailable",
    "CRunResult",
    "compile_and_run",
    "find_compiler",
    "CodegenError",
    "generate_c",
]
