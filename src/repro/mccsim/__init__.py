"""mcc baseline model: every array a heap mxArray behind library calls."""

from repro.mccsim.executor import MXARRAY_HEADER_BYTES, MccExecutor

__all__ = ["MXARRAY_HEADER_BYTES", "MccExecutor"]
