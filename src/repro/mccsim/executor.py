"""The mcc execution model (paper §4.4).

Every array is a heap ``mxArray``: an 88-byte struct of meta
information (shape, intrinsic class, flags) plus the payload, set up at
run time as arrays get created.  Every IR operation is a library call
that performs run-time type/shape checks on its operands and returns a
freshly created array.  Copies are sharing + copy-on-write.  Arrays
created inside library calls are deallocated immediately after their
last use in the block (the paper's "deallocated immediately after
being used"); a named variable's old value is freed on reassignment.

The run-time stack stays small — mcc functions pass handles, so the
paper saw a flat 16 KB stack segment for every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import compute_liveness
from repro.ir.cfg import IRFunction
from repro.ir.instr import Instr, Var
from repro.memsim.costs import CostModel, DEFAULT_COSTS
from repro.memsim.heap import HeapModel
from repro.memsim.meter import MemoryMeter, MemoryReport
from repro.memsim.stack import StackModel
from repro.runtime.builtins import RuntimeContext
from repro.runtime.marray import MArray

from repro.vm.base import BaseIRExecutor
from repro.vm.work import computation_work

MXARRAY_HEADER_BYTES = 88  # mcc 2.2's struct size (paper §4.4)

#: mcc binaries are small (operations live in the shared library), but
#: the mapped MATLAB math library dominates the virtual-memory picture.
MCC_IMAGE_BASE = 180 * 1024
MCC_LIBRARY_MAPPED = 620 * 1024
#: fraction of the mapped library a benchmark actually touches
MCC_LIBRARY_RESIDENT_FRACTION = 0.45

#: handle-passing frames only
MCC_FRAME_BYTES = 256


@dataclass(slots=True)
class _Box:
    """One mxArray allocation (possibly shared by several names)."""

    addr: int
    bytes: int
    refs: int = 1


class MccExecutor(BaseIRExecutor):
    def __init__(
        self,
        func: IRFunction,
        ctx: RuntimeContext | None = None,
        costs: CostModel = DEFAULT_COSTS,
        max_steps: int = 20_000_000,
    ) -> None:
        super().__init__(func, ctx, costs, max_steps)
        self.heap = HeapModel()
        self.stack = StackModel()
        self.meter = MemoryMeter(
            self.heap,
            self.stack,
            MCC_IMAGE_BASE + MCC_LIBRARY_MAPPED,
            resident_image_bytes=int(
                MCC_IMAGE_BASE
                + MCC_LIBRARY_MAPPED * MCC_LIBRARY_RESIDENT_FRACTION
            ),
        )
        self._box_of: dict[str, _Box] = {}
        self._liveness = compute_liveness(func)

    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.stack.push_frame(MCC_FRAME_BYTES)
        # mcc codes were observed at a flat 16 KB stack segment
        self.stack.push_frame(MCC_FRAME_BYTES * 2)
        self.stack.pop_frame()
        self.meter.sample(self.clock)

    def on_finish(self) -> None:
        for name in list(self._box_of):
            self._release(name)
        self.stack.pop_frame()
        self.clock += 1.0
        self.meter.sample(self.clock)

    # -- box management ----------------------------------------------------

    def _allocate_box(self, name: str, value: MArray) -> None:
        payload = value.byte_size()
        box = _Box(
            addr=self.heap.malloc(MXARRAY_HEADER_BYTES + payload),
            bytes=MXARRAY_HEADER_BYTES + payload,
        )
        self._box_of[name] = box
        self.clock += self.costs.mxarray_create + self.costs.malloc_call

    def _release(self, name: str) -> None:
        box = self._box_of.pop(name, None)
        if box is None:
            return
        box.refs -= 1
        if box.refs == 0:
            self.heap.free(box.addr)
            self.clock += self.costs.mxarray_free + self.costs.free_call

    @staticmethod
    def _scalar_foldable(instr: Instr, args, results) -> bool:
        """mcc folds all-scalar arithmetic to native doubles at compile
        time (paper §4.4: only scalars that *don't* get folded are
        boxed) — this is why adpt's speedup is marginal in Figure 5."""
        if instr.is_call or instr.op in ("subsref", "subsasgn", "display"):
            return False
        if any(isinstance(a, MArray) and not a.is_scalar for a in args):
            return False
        return all(r.is_scalar for r in results)

    def define(self, name: str, value: MArray, instr: Instr) -> None:
        super().define(name, value, instr)
        if name in self._box_of:
            self._release(name)  # reassignment frees the old value
        if self._scalar_foldable(instr, [
            self.env.get(a.name) if isinstance(a, Var) else None
            for a in instr.args
        ], [value]):
            return  # lives in a C double, not an mxArray
        if instr.op == "copy" and isinstance(instr.args[0], Var):
            # copy-on-write: share the source's box
            src_box = self._box_of.get(instr.args[0].name)
            if src_box is not None:
                src_box.refs += 1
                self._box_of[name] = src_box
                self.clock += self.costs.cow_share
                return
        self._allocate_box(name, value)

    def account(self, instr, args, results) -> None:
        work = computation_work(instr, args, results)
        operands = len(instr.args)
        if self._scalar_foldable(instr, args, results):
            self.clock += self.costs.element_op * work
        elif instr.op == "copy":
            self.clock += self.costs.cow_share
        elif instr.op == "const":
            # mcc boxes run-time scalars as 1×1 mxArrays (paper §4.4);
            # creation cost is charged in define()
            self.clock += self.costs.type_check
        else:
            self.clock += (
                self.costs.library_call
                + self.costs.type_check * max(1, operands)
                + self.costs.element_op * work
            )
        self.meter.sample(self.clock)

    def on_block_end(self, block_id: int) -> None:
        # mxArrays created within library calls are deallocated right
        # after their last use (§4.4) — compiler temporaries, in our
        # IR.  *Named* user variables persist until reassigned.
        live_out = self._liveness.live_out.get(block_id, set())
        for name in list(self._box_of):
            if name not in live_out and "$" in name:
                self._release(name)
        self.meter.sample(self.clock)

    def build_report(self) -> MemoryReport:
        return self.meter.report()
