"""repro — reproduction of *Static Array Storage Optimization in MATLAB*.

Joisha & Banerjee, PLDI 2003.  The package implements a mat2c-style
static MATLAB compiler whose centrepiece is the **GCTD** pass (Graph
Coloring with Type-based Decomposition) for array storage coalescing,
together with every substrate the paper's evaluation depends on: a
MATLAB frontend, SSA-based middle end, MAGICA-style type/shape
inference, a MATLAB runtime and interpreter, an mcc-model baseline
executor, a page-granular memory simulator, and a C back end.

Typical usage::

    from repro import compile_source

    result = compile_source("a = rand(100); b = a + 1.0; disp(sum(sum(b)));")
    print(result.report.storage_reduction_bytes)
"""

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy re-exports: keep `import repro` cheap and avoid import cycles.
    if name in ("CompilationResult", "CompilerOptions", "compile_program",
                "compile_source"):
        from repro.compiler import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "CompilationResult",
    "CompilerOptions",
    "compile_program",
    "compile_source",
    "__version__",
]
