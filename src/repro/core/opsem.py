"""Interference due to operator semantics (paper §2.3).

For each SO-form assignment ``Y = op(X1, …, Xm)``, an extra edge Y–Xi
is inserted when computing Y *in place* in Xi's storage could violate
the operator's semantics — unless inferred type information proves the
dangerous case impossible.  The rules implemented here are the paper's:

* elementwise ops (``+`` and friends, §2.3.1): always in-place legal in
  a sufficiently-sized operand (the C mapping reads scalar operands
  into locals first, cf. Figure 1) — no edges;
* ``*``/``/``/``\\``/``^`` (§2.3): matrix semantics clobber operand
  elements before they are fully used — edges to both operands unless
  one is *provably scalar*, which turns the op elementwise;
* R-indexing ``subsref`` (§2.3.2): an array subscript permutes
  elements arbitrarily (``a(4:-1:1)``) — edges unless every subscript
  is provably scalar;
* L-indexing ``subsasgn`` (§2.3.3.1): always in-place legal in the
  *indexed array* (elements are computed last-to-first), so no edge to
  it; edges to the RHS and to nonscalar subscripts, which must stay
  readable while the result is written;
* transpose: permutes element positions — edge unless the operand is
  provably a vector or scalar (a vector's column-major layout is
  unchanged by transposition);
* builtins: classified as elementwise-safe, reduction-safe (the C
  mapping accumulates in registers), or unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import IRFunction
from repro.ir.instr import (
    Const,
    ELEMENTWISE_BINARY,
    ELEMENTWISE_UNARY,
    Instr,
    MATRIX_BINARY,
    Operand,
    StrConst,
    Var,
)
from repro.typing.infer import TypeEnvironment
from repro.typing.shape import ConstDim

from repro.core.interference import InterferenceGraph, InterferenceStats
from repro.core.optionset import OptionSet

#: builtins whose result may alias an array argument (identity element
#: mapping, computed position-by-position).
ELEMENTWISE_SAFE_BUILTINS = frozenset(
    {
        "abs",
        "sqrt",
        "exp",
        "log",
        "log2",
        "log10",
        "sin",
        "cos",
        "tan",
        "asin",
        "acos",
        "atan",
        "sinh",
        "cosh",
        "tanh",
        "floor",
        "ceil",
        "round",
        "fix",
        "sign",
        "real",
        "imag",
        "conj",
        "angle",
        "mod",
        "rem",
        "atan2",
        "cumsum",  # forward scan: c[i] from c[i-1], a[i] — safe in place
    }
)

#: builtins that read all input elements into registers before writing
#: a (smaller) result.
REDUCTION_SAFE_BUILTINS = frozenset(
    {
        "sum",
        "prod",
        "min",
        "max",
        "norm",
        "dot",
        "trace",
        "any",
        "all",
        "numel",
        "length",
        "ndims",
        "size",
        "isempty",
        "isreal",
    }
)

#: layout-preserving structural ops.
LAYOUT_SAFE_BUILTINS = frozenset({"reshape"})


@dataclass(slots=True)
class OpsemConfig(OptionSet):
    """Ablation switches for the §2.3 rules."""

    use_type_info: bool = True  # resolve conflicts with inferred types
    enabled: bool = True


def _provably_scalar(operand: Operand, env: TypeEnvironment | None) -> bool:
    if isinstance(operand, Const):
        return True
    if isinstance(operand, StrConst):
        return False
    if env is None:
        return False
    return env.of(operand.name).is_scalar


def _provably_vector(operand: Operand, env: TypeEnvironment | None) -> bool:
    if _provably_scalar(operand, env):
        return True
    if env is None or not isinstance(operand, Var):
        return False
    shape = env.of(operand.name).shape
    if not shape.exact:
        return False
    ones = sum(
        1 for d in shape.dims if isinstance(d, ConstDim) and d.value == 1
    )
    return ones >= shape.rank - 1


def add_operator_semantics_interference(
    func: IRFunction,
    graph: InterferenceGraph,
    env: TypeEnvironment | None,
    config: OpsemConfig | None = None,
    stats: InterferenceStats | None = None,
) -> int:
    """Insert §2.3 edges; returns how many were added."""
    config = config or OpsemConfig()
    if not config.enabled:
        return 0
    type_env = env if config.use_type_info else None
    added = 0
    for instr in func.instructions():
        for operand in _conflicting_operands(instr, type_env):
            if isinstance(operand, Var):
                for res in instr.results:
                    if not graph.interferes(res, operand.name):
                        graph.add_edge(res, operand.name)
                        added += 1
    if stats is not None:
        stats.opsem_edges += added
    return added


def _conflicting_operands(
    instr: Instr, env: TypeEnvironment | None
) -> list[Operand]:
    """Operands Xi for which in-place computation of Y is illegal."""
    op = instr.op
    if op in ELEMENTWISE_BINARY or op in ELEMENTWISE_UNARY:
        return []
    if op in (
        "copy",
        "const",
        "phi",
        "undef",
        "empty",
        "range",
        "forindex",
        "display",
    ):
        return []
    if op in MATRIX_BINARY:
        a, b = instr.args[0], instr.args[1]
        if _provably_scalar(a, env) or _provably_scalar(b, env):
            return []  # elementwise at run time: in-place legal
        return [a, b]
    if op in ("transpose", "ctranspose"):
        return [] if _provably_vector(instr.args[0], env) else [instr.args[0]]
    if op == "subsref":
        subs = instr.args[1:]
        if all(
            _provably_scalar(s, env)
            for s in subs
            if not isinstance(s, StrConst)
        ) and not any(isinstance(s, StrConst) for s in subs):
            return []
        return [instr.args[0]]
    if op == "subsasgn":
        # never the indexed array (backward computation, §2.3.3.1)
        conflicts: list[Operand] = []
        rhs = instr.args[1]
        if not _provably_scalar(rhs, env):
            conflicts.append(rhs)
        for s in instr.args[2:]:
            if isinstance(s, StrConst):
                continue
            if not _provably_scalar(s, env):
                conflicts.append(s)
        return conflicts
    if op in ("horzcat", "vertcat"):
        # conservative: element positions shift (except horzcat's first
        # operand, but we follow the paper in not special-casing glue)
        return list(instr.args)
    if instr.is_call:
        name = instr.callee
        if name in ELEMENTWISE_SAFE_BUILTINS:
            return []
        if name in REDUCTION_SAFE_BUILTINS:
            return []
        if name in LAYOUT_SAFE_BUILTINS:
            return []
        # in-place hazards only involve *array* operands; scalar args
        # (e.g. the extents of eye/zeros/rand) are read into locals
        return [
            a
            for a in instr.args
            if isinstance(a, Var) and not _provably_scalar(a, env)
        ]
    # unknown op: be safe
    return [
        a
        for a in instr.args
        if isinstance(a, Var) and not _provably_scalar(a, env)
    ]
