"""GCTD — the paper's contribution: Phase 1 interference/coloring and
Phase 2 type-based decomposition into storage groups."""

from repro.core.allocation import (
    AllocationPlan,
    GROW_ONLY,
    MAY_RESIZE,
    NO_RESIZE,
    ReductionStats,
    StorageClass,
    StorageGroup,
    build_allocation_plan,
)
from repro.core.coalesce import coalesce_phi_webs
from repro.core.coloring import (
    Coloring,
    color_graph,
    coloring_order,
    verify_coloring,
)
from repro.core.decompose import (
    Group,
    decompose_color_class,
    strongly_connected_components,
)
from repro.core.gctd import GCTDOptions, GCTDResult, run_gctd
from repro.core.interference import (
    InterferenceGraph,
    InterferenceStats,
    build_interference_graph,
)
from repro.core.opsem import (
    ELEMENTWISE_SAFE_BUILTINS,
    OpsemConfig,
    REDUCTION_SAFE_BUILTINS,
    add_operator_semantics_interference,
)
from repro.core.partial import (
    PartialInterferenceReport,
    PartialPair,
    find_partial_interference,
)
from repro.core.storage_order import StorageOrder

__all__ = [
    "AllocationPlan",
    "GROW_ONLY",
    "MAY_RESIZE",
    "NO_RESIZE",
    "ReductionStats",
    "StorageClass",
    "StorageGroup",
    "build_allocation_plan",
    "coalesce_phi_webs",
    "Coloring",
    "color_graph",
    "coloring_order",
    "verify_coloring",
    "Group",
    "decompose_color_class",
    "strongly_connected_components",
    "GCTDOptions",
    "GCTDResult",
    "run_gctd",
    "InterferenceGraph",
    "InterferenceStats",
    "build_interference_graph",
    "ELEMENTWISE_SAFE_BUILTINS",
    "OpsemConfig",
    "REDUCTION_SAFE_BUILTINS",
    "add_operator_semantics_interference",
    "PartialInterferenceReport",
    "PartialPair",
    "find_partial_interference",
    "StorageOrder",
]
