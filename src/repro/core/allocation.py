"""Phase 2 output: storage groups, stack/heap classes, resize marks.

Soundness note: Phase 1 guarantees that same-colored variables are
never simultaneously live-and-available, so *any* decomposition of a
color class is semantically safe; Phase 2's grouping is a quality
decision (spatial reuse, resize avoidance), exactly as the paper frames
it.

* Groups whose maximal element has a statically estimable size are
  **stack** allocated: one buffer of the maximal size per group, fixed
  for the procedure activation (§3.2.1).  Scalars map to C automatics.
* Groups with symbolic maximal sizes are **heap** allocated and resized
  on the fly to each member's needs (§3.2.2).  Each heap definition is
  annotated with the paper's superscripts:

  - ``∘``  — defined array never resized (size provably equal to a
    group member available at the definition, Example 1);
  - ``+``  — if resized, only grown (chained via ⪯, Example 2);
  - ``±``  — may need an arbitrary resize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.availability import AvailabilityInfo
from repro.ir.cfg import IRFunction
from repro.typing.infer import TypeEnvironment
from repro.typing.intrinsic import Intrinsic
from repro.typing.types import VarType

from repro.core.coloring import Coloring
from repro.core.decompose import decompose_color_class
from repro.core.interference import InterferenceGraph
from repro.core.storage_order import StorageOrder

NO_RESIZE = "nonresized"   # ∘
GROW_ONLY = "grown"        # +
MAY_RESIZE = "resizable"   # ±


class StorageClass(Enum):
    STACK = "stack"
    HEAP = "heap"


@dataclass(slots=True)
class StorageGroup:
    gid: int
    color: int
    storage: StorageClass
    intrinsic: Intrinsic
    root: str
    members: list[str] = field(default_factory=list)
    static_size: int | None = None  # bytes; None for HEAP groups

    @property
    def is_stack(self) -> bool:
        return self.storage is StorageClass.STACK


@dataclass(slots=True)
class ReductionStats:
    """The quantities of the paper's Table 2."""

    original_variable_count: int = 0
    static_subsumed: int = 0       # the `s` of the s/d column
    dynamic_subsumed: int = 0      # the `d` of the s/d column
    storage_reduction_bytes: int = 0  # static (stack) coalescing only
    group_count: int = 0
    color_count: int = 0
    #: units merged specifically by the ⪯ partial order (Phase 2), as
    #: opposed to φ-web sharing established in Phase 1 — the quantity
    #: the symbolic-criterion ablation turns off
    static_chain_subsumed: int = 0
    dynamic_chain_subsumed: int = 0

    @property
    def storage_reduction_kb(self) -> float:
        return self.storage_reduction_bytes / 1024.0


@dataclass(slots=True)
class AllocationPlan:
    groups: list[StorageGroup]
    group_of: dict[str, int]
    resize_marks: dict[str, str]
    stats: ReductionStats

    def group(self, name: str) -> StorageGroup:
        return self.groups[self.group_of[name]]

    def same_storage(self, a: str, b: str) -> bool:
        return (
            a in self.group_of
            and b in self.group_of
            and self.group_of[a] == self.group_of[b]
        )

    def stack_frame_bytes(self) -> int:
        return sum(
            g.static_size or 0 for g in self.groups if g.is_stack
        )


def _merged_type(env: TypeEnvironment, members: list[str]) -> VarType:
    merged = env.of(members[0])
    for name in members[1:]:
        merged = merged.join(env.of(name))
    return merged


def build_allocation_plan(
    func: IRFunction,
    env: TypeEnvironment,
    graph: InterferenceGraph,
    coloring: Coloring,
    availability: AvailabilityInfo,
    use_symbolic: bool = True,
) -> AllocationPlan:
    # Work per coalesced node: a φ-web shares one storage slot by
    # construction, so its members stay together with a joined type.
    rep_type: dict[str, VarType] = {}
    for rep in graph.nodes():
        rep_type[rep] = _merged_type(env, graph.members(rep))

    class _OverrideEnv:
        def of(self, name: str) -> VarType:
            return rep_type.get(name) or env.of(name)

    order = StorageOrder(
        env=_OverrideEnv(),  # type: ignore[arg-type]
        availability=availability,
        use_symbolic=use_symbolic,
    )

    by_color: dict[int, list[str]] = {}
    for rep in graph.nodes():
        by_color.setdefault(coloring.color_of[rep], []).append(rep)

    groups: list[StorageGroup] = []
    group_of: dict[str, int] = {}
    chain_merges: list[tuple[bool, int]] = []  # (is_stack, merged reps)
    for color in sorted(by_color):
        reps = sorted(by_color[color])
        for decomposed in decompose_color_class(reps, order):
            gid = len(groups)
            root = _pick_root(decomposed.members, rep_type)
            vartype = rep_type[root]
            members: list[str] = []
            for rep in decomposed.members:
                members.extend(graph.members(rep))
            static_size = _group_static_size(
                decomposed.members, rep_type
            )
            chain_merges.append(
                (static_size is not None, len(decomposed.members) - 1)
            )
            group = StorageGroup(
                gid=gid,
                color=color,
                storage=(
                    StorageClass.STACK
                    if static_size is not None
                    else StorageClass.HEAP
                ),
                intrinsic=vartype.intrinsic,
                root=root,
                members=sorted(members),
                static_size=static_size,
            )
            groups.append(group)
            for name in members:
                group_of[name] = gid

    resize_marks = _resize_marks(
        func, env, groups, group_of, availability
    )
    stats = _reduction_stats(func, env, graph, coloring, groups)
    for is_stack, merged in chain_merges:
        if is_stack:
            stats.static_chain_subsumed += merged
        else:
            stats.dynamic_chain_subsumed += merged
    return AllocationPlan(
        groups=groups,
        group_of=group_of,
        resize_marks=resize_marks,
        stats=stats,
    )


def _pick_root(reps: list[str], rep_type: dict[str, VarType]) -> str:
    """Choose the maximal member (largest static size, else first)."""
    static = [
        (rep_type[r].static_storage_size(), r)
        for r in reps
        if rep_type[r].static_storage_size() is not None
    ]
    if static and len(static) == len(reps):
        return max(static)[1]
    return reps[0]


def _group_static_size(
    reps: list[str], rep_type: dict[str, VarType]
) -> int | None:
    """Stack size = maximal static size; None if any member symbolic."""
    sizes = []
    for rep in reps:
        size = rep_type[rep].static_storage_size()
        if size is None:
            return None
        sizes.append(size)
    return max(sizes) if sizes else None


def _resize_marks(
    func: IRFunction,
    env: TypeEnvironment,
    groups: list[StorageGroup],
    group_of: dict[str, int],
    availability: AvailabilityInfo,
) -> dict[str, str]:
    marks: dict[str, str] = {}
    for instr in func.instructions():
        for res in instr.results:
            gid = group_of.get(res)
            if gid is None or groups[gid].is_stack:
                continue
            marks[res] = _mark_for(
                res, groups[gid], env, availability
            )
    return marks


def _mark_for(
    name: str,
    group: StorageGroup,
    env: TypeEnvironment,
    availability: AvailabilityInfo,
) -> str:
    own = env.of(name)
    grow = False
    for other in group.members:
        if other == name:
            continue
        if not availability.available_at_definition_of(other, name):
            continue
        other_type = env.of(other)
        if other_type.shape.numel() == own.shape.numel():
            return NO_RESIZE
        if other_type.shape.storage_le(own.shape):
            grow = True
    return GROW_ONLY if grow else MAY_RESIZE


def _reduction_stats(
    func: IRFunction,
    env: TypeEnvironment,
    graph: InterferenceGraph,
    coloring: Coloring,
    groups: list[StorageGroup],
) -> ReductionStats:
    stats = ReductionStats()
    stats.original_variable_count = len(graph.all_names())
    stats.color_count = coloring.num_colors
    stats.group_count = len(groups)
    for group in groups:
        extra = len(group.members) - 1
        if extra <= 0:
            continue
        if group.is_stack:
            stats.static_subsumed += extra
            member_sizes = [
                env.of(m).static_storage_size() or 0
                for m in group.members
            ]
            stats.storage_reduction_bytes += (
                sum(member_sizes) - (group.static_size or 0)
            )
        else:
            stats.dynamic_subsumed += extra
    return stats
