"""``Decompose-color-class`` (paper §3.3).

A color class V is decomposed into *groups* using the storage-size
partial order ⪯:

1. build the digraph over V with an edge from larger to smaller
   (x → y iff S(y) ⪯ S(x), y ≠ x) — oriented so that the roots of the
   forest below are the ⪯-*maximal* elements, as the paper's Lemma 1
   and in-degree-0 argument require;
2. find its strongly connected components and form the (acyclic)
   component graph G^SCC;
3. grow a forest by BFS from the in-degree-0 SCCs: every tree is one
   group, rooted at a maximal element that bounds the storage of all
   variables in the group.

Nodes reachable from two maximal chains are assigned wholly to the
first tree that reaches them, matching the paper's implementation
note.  Runs in O(V + E).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.storage_order import StorageOrder


@dataclass(slots=True)
class Group:
    """One decomposition group: variables overlaid on a shared area."""

    root: str                       # a ⪯-maximal member
    members: list[str] = field(default_factory=list)


def strongly_connected_components(
    nodes: list[str], succ: dict[str, list[str]]
) -> list[list[str]]:
    """Iterative Tarjan SCC (no recursion: CFG-sized inputs only, but
    color classes can hold hundreds of temporaries)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []
    counter = 0

    for start in nodes:
        if start in index:
            continue
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, child_idx = work[-1]
            if child_idx == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succ.get(node, [])
            while child_idx < len(children):
                child = children[child_idx]
                child_idx += 1
                if child not in index:
                    work[-1] = (node, child_idx)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work[-1] = (node, len(children))
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


def decompose_color_class(
    variables: list[str], order: StorageOrder
) -> list[Group]:
    """Partition one color class into groups per the paper's algorithm."""
    if not variables:
        return []
    # Step 0: the ⪯ digraph, big → small.
    succ: dict[str, list[str]] = {v: [] for v in variables}
    for u in variables:
        for v in variables:
            if u != v and order.precedes(v, u):
                succ[u].append(v)

    # Step 1: component graph.
    sccs = strongly_connected_components(variables, succ)
    scc_of: dict[str, int] = {}
    for i, comp in enumerate(sccs):
        for v in comp:
            scc_of[v] = i
    scc_succ: dict[int, set[int]] = {i: set() for i in range(len(sccs))}
    in_degree: dict[int, int] = {i: 0 for i in range(len(sccs))}
    for u in variables:
        for v in succ[u]:
            a, b = scc_of[u], scc_of[v]
            if a != b and b not in scc_succ[a]:
                scc_succ[a].add(b)
                in_degree[b] += 1

    # Step 2: BFS forest from in-degree-0 (maximal) components.
    assigned: dict[int, int] = {}  # scc id → group index
    groups: list[Group] = []
    for i, comp in enumerate(sccs):
        if in_degree[i] != 0 or i in assigned:
            continue
        group_index = len(groups)
        groups.append(Group(root=comp[0]))
        queue = deque([i])
        assigned[i] = group_index
        while queue:
            current = queue.popleft()
            groups[group_index].members.extend(sccs[current])
            for nxt in scc_succ[current]:
                if nxt not in assigned:
                    assigned[nxt] = group_index
                    queue.append(nxt)
    return groups
