"""Phase 1 interference graph (paper §2).

Two variables interfere when their du-chains overlap — approximated, as
in Chaitin et al. and Briggs, by "both live and available at an
assignment".  The builder does the paper's backward block scan: start
from the set of variables live∧available at block end; each definition
is interfered with the set's members; then the set drops the defined
variables and gains the used ones.

Copies and φs do not interfere with their own sources (same value —
Chaitin's third criterion), which is what later lets φ coalescing and
copy folding produce identity assignments.

The graph also supports node *coalescing* (union-find merge), used by
φ-web coalescing (§2.2.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.availability import compute_availability
from repro.analysis.liveness import compute_liveness
from repro.ir.cfg import IRFunction
from repro.ir.instr import Instr, Var


class InterferenceGraph:
    """Undirected conflict graph over SSA names with coalescing."""

    def __init__(self) -> None:
        self._adj: dict[str, set[str]] = defaultdict(set)
        self._parent: dict[str, str] = {}
        self._members: dict[str, list[str]] = {}

    # -- union-find ------------------------------------------------------

    def add_node(self, name: str) -> None:
        if name not in self._parent:
            self._parent[name] = name
            self._members[name] = [name]
            self._adj.setdefault(name, set())

    def find(self, name: str) -> str:
        self.add_node(name)
        root = name
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[name] != root:
            self._parent[name], name = root, self._parent[name]
        return root

    def members(self, name: str) -> list[str]:
        return self._members[self.find(name)]

    # -- edges --------------------------------------------------------------

    def add_edge(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        self._adj[ra].add(rb)
        self._adj[rb].add(ra)

    def interferes(self, a: str, b: str) -> bool:
        ra, rb = self.find(a), self.find(b)
        return rb in self._adj[ra]

    def neighbors(self, name: str) -> set[str]:
        return self._adj[self.find(name)]

    def coalesce(self, a: str, b: str) -> bool:
        """Merge the nodes of ``a`` and ``b``; False if they interfere."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if rb in self._adj[ra]:
            return False
        self._parent[rb] = ra
        self._members[ra].extend(self._members.pop(rb))
        for n in self._adj.pop(rb):
            self._adj[n].discard(rb)
            self._adj[n].add(ra)
            self._adj[ra].add(n)
        return True

    # -- queries ---------------------------------------------------------

    def nodes(self) -> list[str]:
        """Current representatives (post-coalescing nodes)."""
        return [n for n in self._parent if self._parent[n] == n]

    def all_names(self) -> list[str]:
        return list(self._parent)

    def edge_count(self) -> int:
        return sum(len(s) for s in self._adj.values()) // 2

    def degree(self, name: str) -> int:
        return len(self._adj[self.find(name)])


@dataclass(slots=True)
class InterferenceStats:
    duchain_edges: int = 0
    opsem_edges: int = 0
    phi_coalesced: int = 0
    phi_blocked: int = 0


def build_interference_graph(
    func: IRFunction,
    liveness=None,
    availability=None,
) -> tuple[InterferenceGraph, InterferenceStats]:
    """Run the paper's backward scan over every block."""
    live = liveness or compute_liveness(func)
    avail = availability or compute_availability(func)
    graph = InterferenceGraph()
    stats = InterferenceStats()

    for name in func.defined_vars():
        graph.add_node(name)

    for bid in func.block_order():
        block = func.blocks[bid]
        # live ∧ available at block end
        current = set(live.live_out[bid]) & set(avail.avail_out[bid])

        # SSA inversion will materialize each successor's φs as a
        # *parallel copy* at this block's end.  A φ-destination is
        # therefore defined here, simultaneously with every other φ's
        # source being read — so it must interfere with everything
        # live at this point except its own source (same value).
        # Without this, a source that dies on the edge (and is thus
        # invisible to the successor's scan) could share storage with
        # a destination that clobbers it mid-copy.
        for succ in block.successors():
            for phi in func.blocks[succ].phis():
                assert phi.phi_blocks is not None
                own_sources = {
                    a.name
                    for a, p in zip(phi.args, phi.phi_blocks)
                    if p == bid and isinstance(a, Var)
                }
                if not own_sources:
                    continue
                dest = phi.results[0]
                for other in current:
                    if other != dest and other not in own_sources:
                        graph.add_edge(dest, other)
                        stats.duchain_edges += 1

        for instr in reversed(block.instrs):
            same_value = _same_value_sources(instr)
            # multiple results of one call are simultaneously live
            for i, res_a in enumerate(instr.results):
                for res_b in instr.results[i + 1 :]:
                    graph.add_edge(res_a, res_b)
                    stats.duchain_edges += 1
            for res in instr.results:
                for other in current:
                    if other != res and other not in same_value:
                        before = graph.edge_count()
                        graph.add_edge(res, other)
                        stats.duchain_edges += graph.edge_count() - before
            for res in instr.results:
                current.discard(res)
            if instr.is_phi:
                # φ operands are used on the incoming edges, not here.
                continue
            for used in instr.used_vars():
                current.add(used)
    return graph, stats


def _same_value_sources(instr: Instr) -> set[str]:
    """Sources that hold the defined value itself (no interference).

    Only genuine copies qualify: on SSA, ``x = copy y`` means x and y
    denote one value wherever both are live.  A φ does *not* qualify —
    it executes once per reaching path with a different value each
    time, so an operand that stays live beyond the φ (it is then in
    the scan's live set) holds a different value than the φ result and
    must interfere with it.  (Operands that die at the φ are not in
    the set, so the usual coalescing cases are unaffected.)
    """
    if instr.op == "copy":
        return {a.name for a in instr.args if isinstance(a, Var)}
    return set()
