"""Partial-interference analysis (paper §2.1).

The paper's example: ``a`` and ``b`` are 2×2 matrices whose du-chains
overlap — so they fully interfere in the implementation — yet the only
use of ``a`` in the overlap is the scalar read ``c = a(1)``, so all but
one element of their storage could have been shared ("a total of five
double precision memory locations" for the whole computation).  The
paper treats this as future work and stays conservative; we do the
same for *allocation*, but this pass detects the opportunities and
quantifies the foregone savings, so the conservatism is measured
rather than silent.

A pair (a, b) is a partial-interference candidate when:

* a and b interfere (same du-chain-overlap test as Phase 1), and
* every use of ``a`` at a point where ``b`` is also live is a
  ``subsref`` with all-scalar subscripts (so only one element of ``a``
  is demanded while ``b``'s storage is in play) — or symmetrically.

The reported potential saving for the pair is S(small) − one element.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.liveness import compute_liveness
from repro.ir.cfg import IRFunction
from repro.ir.instr import Instr, StrConst, Var
from repro.typing.infer import TypeEnvironment
from repro.typing.intrinsic import scalar_size

from repro.core.interference import InterferenceGraph


@dataclass(frozen=True, slots=True)
class PartialPair:
    array: str          # the variable accessed only elementwise
    other: str          # the interfering variable it could overlap
    potential_bytes: int


@dataclass(slots=True)
class PartialInterferenceReport:
    pairs: list[PartialPair] = field(default_factory=list)

    @property
    def total_potential_bytes(self) -> int:
        return sum(p.potential_bytes for p in self.pairs)


def _is_scalar_subsref(instr: Instr, env: TypeEnvironment, of: str) -> bool:
    if instr.op != "subsref":
        return False
    base = instr.args[0]
    if not (isinstance(base, Var) and base.name == of):
        return False
    for sub in instr.args[1:]:
        if isinstance(sub, StrConst):
            return False
        if isinstance(sub, Var) and not env.of(sub.name).is_scalar:
            return False
    return True


def find_partial_interference(
    func: IRFunction,
    env: TypeEnvironment,
    graph: InterferenceGraph,
) -> PartialInterferenceReport:
    """Scan for §2.1 pairs among interfering array variables."""
    live = compute_liveness(func)
    report = PartialInterferenceReport()

    # collect, per variable, its use sites (instruction + block)
    uses: dict[str, list[tuple[int, int, Instr]]] = {}
    for bid in func.block_order():
        for idx, instr in enumerate(func.blocks[bid].instrs):
            for name in instr.used_vars():
                uses.setdefault(name, []).append((bid, idx, instr))

    arrays = [
        name
        for name in func.defined_vars()
        if not env.of(name).is_scalar
        and env.of(name).shape.static_numel() not in (None, 0, 1)
    ]
    seen: set[tuple[str, str]] = set()
    for a in arrays:
        for b in graph.neighbors(a):
            if b not in uses and b not in arrays:
                continue
            if env.of(b).is_scalar:
                continue
            key = (a, b)
            if key in seen:
                continue
            seen.add(key)
            if _only_scalar_uses_while_live(a, b, uses, live, func, env):
                numel = env.of(a).shape.static_numel()
                if numel is None or numel <= 1:
                    continue
                element = scalar_size(env.of(a).intrinsic)
                report.pairs.append(
                    PartialPair(
                        array=a,
                        other=b,
                        potential_bytes=(numel - 1) * element,
                    )
                )
    report.pairs.sort(key=lambda p: -p.potential_bytes)
    return report


def _only_scalar_uses_while_live(
    a: str, b: str, uses, live, func: IRFunction, env: TypeEnvironment
) -> bool:
    """Every use of ``a`` at a point where ``b`` is live must be a
    scalar subsref (and there must be at least one such use)."""
    relevant = 0
    for bid, idx, instr in uses.get(a, ()):
        # approximate "b live here" at block granularity
        block_live = b in live.live_in.get(bid, set()) or b in (
            live.live_out.get(bid, set())
        ) or any(
            b in i.results for i in func.blocks[bid].instrs[:idx]
        )
        if not block_live:
            continue
        relevant += 1
        if not _is_scalar_subsref(instr, env, a):
            return False
    return relevant > 0
