"""Canonical dict round-trip for option dataclasses.

Every options object in the pipeline (``CompilerOptions``,
``GCTDOptions``, ``OpsemConfig``) inherits :class:`OptionSet`, which
derives one canonical ``to_dict()``/``from_dict()`` pair from the
dataclass fields themselves:

* ``to_dict`` emits keys in sorted order with nested option sets
  recursively flattened — the exact form the artifact-cache
  fingerprint hashes, so "same options" always means "same dict";
* ``from_dict`` is the single parser: it rejects unknown keys (a
  typo'd ablation flag must fail loudly, not silently compile with
  defaults) and recursively rebuilds nested option sets.

The service fingerprint and the server's wire format both consume
this round-trip instead of maintaining private canonicalizations.
"""

from __future__ import annotations

from dataclasses import MISSING, fields, is_dataclass


class UnknownOptionError(ValueError):
    """A dict carried keys no field of the options class matches."""


class OptionSet:
    """Mixin giving a dataclass the canonical dict round-trip."""

    __slots__ = ()

    def to_dict(self) -> dict:
        out: dict = {}
        for f in sorted(fields(self), key=lambda f: f.name):
            value = getattr(self, f.name)
            out[f.name] = (
                value.to_dict() if isinstance(value, OptionSet) else value
            )
        return out

    @classmethod
    def from_dict(cls, data: dict | None) -> "OptionSet":
        if data is None:
            return cls()
        if isinstance(data, cls):
            return data
        if not isinstance(data, dict):
            raise UnknownOptionError(
                f"{cls.__name__} expects a dict, got {type(data).__name__}"
            )
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise UnknownOptionError(
                f"unknown {cls.__name__} keys: {unknown}"
            )
        kwargs: dict = {}
        for name, value in data.items():
            nested = _nested_type(known[name])
            if nested is not None:
                kwargs[name] = (
                    value
                    if isinstance(value, nested)
                    else nested.from_dict(value)
                )
            else:
                kwargs[name] = value
        return cls(**kwargs)


def _nested_type(field) -> type | None:
    """The nested OptionSet class of a field, if it holds one.

    Nested option sets always use ``default_factory=<their class>``,
    which is how the parser discovers the type without evaluating
    string annotations.
    """
    factory = field.default_factory
    if (
        factory is not MISSING
        and isinstance(factory, type)
        and is_dataclass(factory)
        and issubclass(factory, OptionSet)
    ):
        return factory
    return None
