"""Greedy coloring heuristic (paper §2.4).

Visits nodes in the lexical order of the corresponding variable
definitions and assigns the smallest color consistent with the
neighbors — O(V + E).  As the paper stresses (§5), minimal-coloring
greediness is *not* storage-optimal; the classic 4/2/3 counterexample
ships as a unit test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import IRFunction

from repro.core.interference import InterferenceGraph


@dataclass(slots=True)
class Coloring:
    """color per SSA name (coalesced names share their node's color)."""

    color_of: dict[str, int] = field(default_factory=dict)
    num_colors: int = 0

    def color_classes(self) -> dict[int, list[str]]:
        classes: dict[int, list[str]] = {}
        for name, color in self.color_of.items():
            classes.setdefault(color, []).append(name)
        return classes

    def same_color(self, a: str, b: str) -> bool:
        return (
            a in self.color_of
            and b in self.color_of
            and self.color_of[a] == self.color_of[b]
        )


def color_graph(
    graph: InterferenceGraph, lexical_order: list[str]
) -> Coloring:
    """Greedy smallest-consistent-color pass over ``lexical_order``."""
    node_color: dict[str, int] = {}
    coloring = Coloring()
    seen: set[str] = set()
    for name in lexical_order:
        rep = graph.find(name)
        if rep in seen:
            continue
        seen.add(rep)
        neighbor_colors = {
            node_color[n] for n in graph.neighbors(rep) if n in node_color
        }
        color = 0
        while color in neighbor_colors:
            color += 1
        node_color[rep] = color
        coloring.num_colors = max(coloring.num_colors, color + 1)
    for name in graph.all_names():
        coloring.color_of[name] = node_color[graph.find(name)]
    return coloring


def verify_coloring(
    graph: InterferenceGraph, coloring: Coloring
) -> None:
    """Assert no interfering pair shares a color (raises on violation)."""
    for node in graph.nodes():
        for neighbor in graph.neighbors(node):
            if coloring.color_of[node] == coloring.color_of[neighbor]:
                raise AssertionError(
                    f"coloring violation: {node} and {neighbor} interfere "
                    f"but share color {coloring.color_of[node]}"
                )


def coloring_order(func: IRFunction) -> list[str]:
    """Lexical definition order of variables, as the paper's heuristic."""
    return func.defined_vars()
