"""The storage-size partial order ⪯ (paper §3.2, Relation 1).

    S(u) ⪯ S(v)  iff
      (static criterion)   both sizes statically estimable,
                           τ(u) = τ(v), and S(u) ≤ S(v);   or
      (symbolic criterion) both sizes statically inestimable,
                           u is available at the definition of v,
                           τ(u) = τ(v), and S(u) ≤ S(v) symbolically.

The two criteria are deliberately disjoint (a static and a symbolic
size are never related — the paper's Example 2 closing remark), and
both require *identical* intrinsic types so the generated C needs no
casts and meets no alignment issues.

The symbolic criterion's "available at the definition" clause is what
ties Phase 2 to control flow: chains built from it correspond to
definitions stepping through nondecreasingly-sized arrays along an
execution path, which is precisely the spatial-reuse pattern the paper
is after (§3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.availability import AvailabilityInfo
from repro.typing.infer import TypeEnvironment
from repro.typing.types import VarType


@dataclass(slots=True)
class StorageOrder:
    """Decidable wrapper around ⪯ for one function's variables."""

    env: TypeEnvironment
    availability: AvailabilityInfo
    use_symbolic: bool = True  # ablation: drop the second criterion

    def statically_estimable(self, name: str) -> bool:
        """Paper §3.2.1: explicit shape tuple (φ-joins of explicit
        tuples are folded to per-extent maxima by the shape lattice, so
        case 2 — ``max(S(v), S(w))`` at a join — is subsumed)."""
        return self.env.of(name).shape.is_static

    def static_size(self, name: str) -> int:
        size = self.env.of(name).static_storage_size()
        assert size is not None
        return size

    def precedes(self, u: str, v: str) -> bool:
        """S(u) ⪯ S(v) under Relation 1 (reflexive)."""
        if u == v:
            return True
        tu: VarType = self.env.of(u)
        tv: VarType = self.env.of(v)
        if tu.intrinsic != tv.intrinsic:
            return False
        u_static = tu.shape.is_static
        v_static = tv.shape.is_static
        if u_static and v_static:
            su, sv = tu.static_storage_size(), tv.static_storage_size()
            assert su is not None and sv is not None
            return su <= sv
        if u_static or v_static:
            # sizes in different estimability classes are never related
            return False
        if not self.use_symbolic:
            return False
        if not self.availability.available_at_definition_of(u, v):
            return False
        return tu.shape.storage_le(tv.shape)
