"""φ-web coalescing (paper §2.2.1).

For every join node ``Z = φ(X, Y)``, Z is coalesced with each operand
that it does not interfere with, so the copies reintroduced by SSA
inversion become identity assignments and vanish.  As the paper notes,
such coalescing constrains the coloring (it can raise the chromatic
number) but is "indispensable to the generation of efficient code":
a single uncoalesced copy of a large array inside a loop dominates the
run time through paging activity.
"""

from __future__ import annotations

from repro.ir.cfg import IRFunction
from repro.ir.instr import Var

from repro.core.interference import InterferenceGraph, InterferenceStats


def coalesce_phi_webs(
    func: IRFunction,
    graph: InterferenceGraph,
    stats: InterferenceStats | None = None,
) -> int:
    """Coalesce φ results with non-interfering operands.

    Returns the number of successful merges.  Iterates to a fixed point
    because one merge can make another φ's operands coalescible (or
    not), and the interference graph is updated in place by
    :meth:`InterferenceGraph.coalesce`.
    """
    merged_total = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks.values():
            for phi in block.phis():
                z = phi.results[0]
                for arg in phi.args:
                    if not isinstance(arg, Var):
                        continue
                    if graph.find(z) == graph.find(arg.name):
                        continue
                    if graph.coalesce(z, arg.name):
                        merged_total += 1
                        changed = True
                    elif stats is not None:
                        stats.phi_blocked += 1
    if stats is not None:
        stats.phi_coalesced += merged_total
    return merged_total
