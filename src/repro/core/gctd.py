"""GCTD driver: Graph Coloring with Type-based Decomposition.

``run_gctd`` is the paper's algorithm end to end:

Phase 1 — build the interference graph from liveness ∧ availability,
add operator-semantics conflicts resolved with inferred types (§2.3),
coalesce φ-webs (§2.2.1), and greedily color (§2.4).

Phase 2 — decompose every color class into groups with the
storage-size partial order (§3.2–3.3) and produce the allocation plan
(stack/heap, shared buffers, resize marks).

Every step has an ablation switch so the benchmarks can reproduce the
paper's "with/without GCTD" comparison (Figure 6) and probe the design
choices individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.availability import AvailabilityInfo, compute_availability
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.ir.cfg import IRFunction
from repro.typing.infer import TypeEnvironment

from repro.core.allocation import (
    MAY_RESIZE,
    AllocationPlan,
    ReductionStats,
    StorageClass,
    StorageGroup,
    build_allocation_plan,
)
from repro.core.coalesce import coalesce_phi_webs
from repro.core.coloring import (
    Coloring,
    color_graph,
    coloring_order,
    verify_coloring,
)
from repro.core.interference import (
    InterferenceGraph,
    InterferenceStats,
    build_interference_graph,
)
from repro.core.opsem import OpsemConfig, add_operator_semantics_interference
from repro.core.optionset import OptionSet


@dataclass(slots=True)
class GCTDOptions(OptionSet):
    enabled: bool = True                 # Figure 6's on/off switch
    opsem: OpsemConfig = field(default_factory=OpsemConfig)
    phi_coalescing: bool = True
    phase2_symbolic: bool = True         # Relation 1's second criterion
    verify: bool = True


@dataclass(slots=True)
class GCTDResult:
    graph: InterferenceGraph
    coloring: Coloring
    plan: AllocationPlan
    interference_stats: InterferenceStats
    liveness: LivenessInfo
    availability: AvailabilityInfo


def run_gctd(
    func: IRFunction,
    env: TypeEnvironment,
    options: GCTDOptions | None = None,
) -> GCTDResult:
    """Run both GCTD phases on an SSA function with inferred types."""
    options = options or GCTDOptions()
    liveness = compute_liveness(func)
    availability = compute_availability(func)

    if not options.enabled:
        return _trivial_result(func, env, liveness, availability)

    graph, stats = build_interference_graph(func, liveness, availability)
    add_operator_semantics_interference(
        func, graph, env, options.opsem, stats
    )
    if options.phi_coalescing:
        coalesce_phi_webs(func, graph, stats)

    coloring = color_graph(graph, coloring_order(func))
    if options.verify:
        verify_coloring(graph, coloring)

    plan = build_allocation_plan(
        func,
        env,
        graph,
        coloring,
        availability,
        use_symbolic=options.phase2_symbolic,
    )
    return GCTDResult(
        graph=graph,
        coloring=coloring,
        plan=plan,
        interference_stats=stats,
        liveness=liveness,
        availability=availability,
    )


def mcc_fallback_result(
    func: IRFunction,
    env: TypeEnvironment,
    liveness: LivenessInfo | None = None,
    availability: AvailabilityInfo | None = None,
) -> GCTDResult:
    """The mcc 2.2 allocation model: every variable alone, on the heap.

    This is the graceful-degradation fallback the pipeline reaches for
    when GCTD itself fails (crash, pathological slowness): no sharing,
    no stack promotion, every definition free to resize.  It is the
    paper's baseline model, so it is *always* sound — singleton groups
    cannot violate liveness or operator semantics, an all-heap plan
    makes the stack check vacuous, and a ``±`` mark on every definition
    is justified by construction.  Callers still run the independent
    checker over it; soundness here is cheap insurance, not an excuse
    to skip verification.
    """
    if liveness is None:
        liveness = compute_liveness(func)
    if availability is None:
        availability = compute_availability(func)
    graph = InterferenceGraph()
    names = func.defined_vars()
    for name in names:
        graph.add_node(name)
    coloring = Coloring(
        color_of={name: i for i, name in enumerate(names)},
        num_colors=len(names),
    )
    groups: list[StorageGroup] = []
    group_of: dict[str, int] = {}
    resize_marks: dict[str, str] = {}
    stats = ReductionStats(original_variable_count=len(names))
    for i, name in enumerate(names):
        vartype = env.of(name)
        groups.append(
            StorageGroup(
                gid=i,
                color=i,
                storage=StorageClass.HEAP,
                intrinsic=vartype.intrinsic,
                root=name,
                members=[name],
                static_size=None,
            )
        )
        group_of[name] = i
        resize_marks[name] = MAY_RESIZE
    stats.group_count = len(groups)
    stats.color_count = len(names)
    plan = AllocationPlan(
        groups=groups,
        group_of=group_of,
        resize_marks=resize_marks,
        stats=stats,
    )
    return GCTDResult(
        graph=graph,
        coloring=coloring,
        plan=plan,
        interference_stats=InterferenceStats(),
        liveness=liveness,
        availability=availability,
    )


def _trivial_result(
    func: IRFunction,
    env: TypeEnvironment,
    liveness: LivenessInfo,
    availability: AvailabilityInfo,
) -> GCTDResult:
    """No coalescing at all: one group per variable (Figure 6 baseline).

    φ-webs must still share storage for out-of-SSA correctness *not* to
    insert array copies…  but that is exactly what the paper's baseline
    pays for: without GCTD, the reintroduced copies stay.  So here each
    SSA name really does get its own storage.
    """
    graph = InterferenceGraph()
    names = func.defined_vars()
    for name in names:
        graph.add_node(name)
    coloring = Coloring(
        color_of={name: i for i, name in enumerate(names)},
        num_colors=len(names),
    )
    groups: list[StorageGroup] = []
    group_of: dict[str, int] = {}
    stats = ReductionStats(original_variable_count=len(names))
    for i, name in enumerate(names):
        vartype = env.of(name)
        size = vartype.static_storage_size()
        groups.append(
            StorageGroup(
                gid=i,
                color=i,
                storage=(
                    StorageClass.STACK if size is not None
                    else StorageClass.HEAP
                ),
                intrinsic=vartype.intrinsic,
                root=name,
                members=[name],
                static_size=size,
            )
        )
        group_of[name] = i
    stats.group_count = len(groups)
    stats.color_count = len(names)
    plan = AllocationPlan(
        groups=groups,
        group_of=group_of,
        resize_marks={},
        stats=stats,
    )
    return GCTDResult(
        graph=graph,
        coloring=coloring,
        plan=plan,
        interference_stats=InterferenceStats(),
        liveness=liveness,
        availability=availability,
    )
