"""MATLAB operator semantics over :class:`MArray`.

MATLAB 6 rules: elementwise binary operators accept equal shapes or a
scalar operand (no general broadcasting); ``*``/``/``/``\\``/``^`` have
matrix semantics unless an operand is scalar; comparisons yield logical
arrays.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.errors import MatlabRuntimeError, ShapeConformanceError
from repro.runtime.marray import MArray


def _conform(a: MArray, b: MArray, op: str) -> None:
    if a.is_scalar or b.is_scalar:
        return
    if a.shape != b.shape:
        raise ShapeConformanceError(
            f"operands of '{op}' must have equal shapes "
            f"({a.shape} vs {b.shape})"
        )


def _wrap(result: np.ndarray, logical: bool = False) -> MArray:
    return MArray.from_numpy(result, is_logical=logical)


def _elementwise(a: MArray, b: MArray, fn, op: str) -> MArray:
    _conform(a, b, op)
    if a.is_scalar and not b.is_scalar:
        return _wrap(fn(a.scalar() if a.is_complex else a.scalar_real(),
                        b.data))
    if b.is_scalar and not a.is_scalar:
        return _wrap(fn(a.data,
                        b.scalar() if b.is_complex else b.scalar_real()))
    return _wrap(fn(a.data, b.data))


def add(a: MArray, b: MArray) -> MArray:
    return _elementwise(a, b, lambda x, y: x + y, "+")


def sub(a: MArray, b: MArray) -> MArray:
    return _elementwise(a, b, lambda x, y: x - y, "-")


def elmul(a: MArray, b: MArray) -> MArray:
    return _elementwise(a, b, lambda x, y: x * y, ".*")


def eldiv(a: MArray, b: MArray) -> MArray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return _elementwise(a, b, lambda x, y: x / y, "./")


def elldiv(a: MArray, b: MArray) -> MArray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return _elementwise(a, b, lambda x, y: y / x, ".\\")


def elpow(a: MArray, b: MArray) -> MArray:
    def fn(x, y):
        result = np.power(x.astype(complex) if _needs_complex(x, y) else x, y)
        return result

    return _elementwise(a, b, fn, ".^")


def _needs_complex(x, y) -> bool:
    if np.iscomplexobj(x) or np.iscomplexobj(y):
        return False  # already complex; numpy handles it
    return bool(np.any(np.asarray(x) < 0) and np.any(np.asarray(y) % 1 != 0))


def mul(a: MArray, b: MArray) -> MArray:
    if a.is_scalar or b.is_scalar:
        return elmul(a, b)
    if a.shape[-1] != b.shape[0] or a.data.ndim > 2 or b.data.ndim > 2:
        raise ShapeConformanceError(
            f"inner matrix dimensions must agree ({a.shape} * {b.shape})"
        )
    return _wrap(a.data @ b.data)


def div(a: MArray, b: MArray) -> MArray:
    """A/B — right matrix divide (A·B⁻¹); elementwise for scalars."""
    if b.is_scalar or a.is_scalar:
        return eldiv(a, b)
    return _wrap(np.linalg.lstsq(b.data.T, a.data.T, rcond=None)[0].T)


def ldiv(a: MArray, b: MArray) -> MArray:
    """A\\B — left matrix divide (A⁻¹·B); elementwise for scalars."""
    if a.is_scalar:
        return elldiv(a, b)
    if a.shape[0] == a.shape[1] == b.shape[0]:
        return _wrap(np.linalg.solve(a.data, b.data))
    return _wrap(np.linalg.lstsq(a.data, b.data, rcond=None)[0])


def pow_(a: MArray, b: MArray) -> MArray:
    if a.is_scalar and b.is_scalar:
        return elpow(a, b)
    if b.is_scalar:
        exponent = b.scalar_real()
        if exponent != int(exponent):
            raise MatlabRuntimeError("matrix power requires integer exponent")
        return _wrap(np.linalg.matrix_power(a.data, int(exponent)))
    raise MatlabRuntimeError("unsupported matrix power form")


def neg(a: MArray) -> MArray:
    return _wrap(-a.data)


def not_(a: MArray) -> MArray:
    return _wrap(a.data == 0, logical=True)


def transpose(a: MArray, conjugate: bool) -> MArray:
    if a.data.ndim > 2:
        raise MatlabRuntimeError("transpose of N-D array is undefined")
    data = a.data.T
    if conjugate and a.is_complex:
        data = data.conj()
    return MArray.from_numpy(
        data, is_logical=a.is_logical, is_char=a.is_char
    )


def _compare(a: MArray, b: MArray, fn, op: str) -> MArray:
    _conform(a, b, op)
    x = a.data.real if a.is_complex else a.data
    y = b.data.real if b.is_complex else b.data
    if a.is_scalar and not b.is_scalar:
        x = x.flat[0]
    if b.is_scalar and not a.is_scalar:
        y = y.flat[0]
    return _wrap(fn(x, y), logical=True)


def lt(a, b):
    return _compare(a, b, lambda x, y: x < y, "<")


def le(a, b):
    return _compare(a, b, lambda x, y: x <= y, "<=")


def gt(a, b):
    return _compare(a, b, lambda x, y: x > y, ">")


def ge(a, b):
    return _compare(a, b, lambda x, y: x >= y, ">=")


def eq(a, b):
    def fn(x, y):
        return x == y

    _conform(a, b, "==")
    if a.is_scalar and not b.is_scalar:
        return _wrap(b.data == a.scalar(), logical=True)
    if b.is_scalar and not a.is_scalar:
        return _wrap(a.data == b.scalar(), logical=True)
    return _wrap(a.data == b.data, logical=True)


def ne(a, b):
    _conform(a, b, "~=")
    if a.is_scalar and not b.is_scalar:
        return _wrap(b.data != a.scalar(), logical=True)
    if b.is_scalar and not a.is_scalar:
        return _wrap(a.data != b.scalar(), logical=True)
    return _wrap(a.data != b.data, logical=True)


def and_(a, b):
    return _compare(
        a, b, lambda x, y: (x != 0) & (y != 0), "&"
    )


def or_(a, b):
    return _compare(
        a, b, lambda x, y: (x != 0) | (y != 0), "|"
    )


def make_range(start: MArray, step: MArray, stop: MArray) -> MArray:
    """``start:step:stop`` as a row vector (empty when degenerate)."""
    s0 = start.scalar_real()
    d = step.scalar_real()
    s1 = stop.scalar_real()
    if d == 0:
        raise MatlabRuntimeError("range step must be nonzero")
    n = int(np.floor((s1 - s0) / d + 1e-10)) + 1
    if n <= 0:
        return MArray.from_numpy(np.zeros((1, 0))[:, :0].reshape(1, 0))
    values = s0 + d * np.arange(n, dtype=float)
    return MArray.from_numpy(values.reshape(1, n))


def horzcat(parts: list[MArray]) -> MArray:
    parts = [p for p in parts if not p.is_empty]
    if not parts:
        return MArray.empty()
    rows = parts[0].shape[0]
    for p in parts:
        if p.shape[0] != rows:
            raise ShapeConformanceError(
                "horizontal concatenation: row counts differ"
            )
    is_char = all(p.is_char for p in parts)
    return MArray.from_numpy(
        np.hstack([p.data for p in parts]), is_char=is_char
    )


def vertcat(parts: list[MArray]) -> MArray:
    parts = [p for p in parts if not p.is_empty]
    if not parts:
        return MArray.empty()
    cols = parts[0].shape[1]
    for p in parts:
        if p.shape[1] != cols:
            raise ShapeConformanceError(
                "vertical concatenation: column counts differ"
            )
    is_char = all(p.is_char for p in parts)
    return MArray.from_numpy(
        np.vstack([p.data for p in parts]), is_char=is_char
    )
