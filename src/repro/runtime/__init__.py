"""MATLAB value semantics: arrays, operators, indexing, builtins."""

from repro.runtime.builtins import (
    RuntimeContext,
    call_builtin,
    lookup_builtin,
)
from repro.runtime.errors import (
    IndexError_,
    MatlabRuntimeError,
    ShapeConformanceError,
)
from repro.runtime.indexing import COLON, subsasgn, subsref
from repro.runtime.marray import MArray, as_marray
from repro.runtime.names import (
    BUILTIN_NAMES,
    CONSTANT_BUILTINS,
    EFFECT_BUILTINS,
    MULTI_BUILTINS,
    VALUE_BUILTINS,
)

__all__ = [
    "RuntimeContext",
    "call_builtin",
    "lookup_builtin",
    "IndexError_",
    "MatlabRuntimeError",
    "ShapeConformanceError",
    "COLON",
    "subsasgn",
    "subsref",
    "MArray",
    "as_marray",
    "BUILTIN_NAMES",
    "CONSTANT_BUILTINS",
    "EFFECT_BUILTINS",
    "MULTI_BUILTINS",
    "VALUE_BUILTINS",
]
