"""Names of the MATLAB builtins the toolchain knows about.

Kept as pure data in its own module so the frontend/lowering layer can
distinguish *call* from *array index* without importing the runtime
implementation (which would create an import cycle).
"""

from __future__ import annotations

# Builtins that behave like ordinary functions returning one value.
VALUE_BUILTINS = frozenset(
    {
        "rand",
        "randn",
        "zeros",
        "ones",
        "eye",
        "numel",
        "length",
        "ndims",
        "abs",
        "sqrt",
        "exp",
        "log",
        "log2",
        "log10",
        "sin",
        "cos",
        "tan",
        "asin",
        "acos",
        "atan",
        "atan2",
        "sinh",
        "cosh",
        "tanh",
        "floor",
        "ceil",
        "round",
        "fix",
        "sign",
        "mod",
        "rem",
        "sum",
        "prod",
        "cumsum",
        "min",
        "max",
        "real",
        "imag",
        "conj",
        "angle",
        "norm",
        "dot",
        "isempty",
        "isreal",
        "any",
        "all",
        "find",
        "repmat",
        "reshape",
        "linspace",
        "num2str",
        "int2str",
        "sort",
        "fliplr",
        "flipud",
        "diag",
        "trace",
        "kron",
        "toc",
    }
)

# Builtins that may return several values (`[m, n] = size(a)`).
MULTI_BUILTINS = frozenset({"size", "sort", "min", "max", "find"})

# Builtins executed for effect.
EFFECT_BUILTINS = frozenset({"disp", "fprintf", "error", "tic"})

# Named constants that look like variables in source.
CONSTANT_BUILTINS = frozenset({"pi", "eps", "Inf", "inf", "NaN", "nan"})

BUILTIN_NAMES = (
    VALUE_BUILTINS | MULTI_BUILTINS | EFFECT_BUILTINS | CONSTANT_BUILTINS
)
