"""MATLAB array values.

An :class:`MArray` is a column-major (Fortran-order) numpy array plus a
MATLAB *class* tag (``double``/``logical``/``char``); MATLAB 6's data
model, which is all the benchmark suite needs.  Arrays are at least
2-D; scalars are 1×1.  Complex data is carried in a complex128 buffer,
real data in float64 — mirroring how the paper's C translation picks a
representation from the inferred intrinsic type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.errors import MatlabRuntimeError


@dataclass(frozen=True, slots=True)
class MArray:
    data: np.ndarray          # ≥2-D, Fortran order
    is_logical: bool = False
    is_char: bool = False

    # -- constructors --------------------------------------------------

    @staticmethod
    def from_scalar(value: complex | float | int | bool) -> "MArray":
        if isinstance(value, bool):
            return MArray(
                np.asfortranarray(np.full((1, 1), float(value))),
                is_logical=True,
            )
        value = complex(value)
        if value.imag == 0:
            return MArray(np.asfortranarray(np.full((1, 1), value.real)))
        return MArray(np.asfortranarray(np.full((1, 1), value)))

    @staticmethod
    def from_numpy(array: np.ndarray, is_logical: bool = False,
                   is_char: bool = False) -> "MArray":
        array = np.atleast_2d(np.asarray(array))
        if array.dtype == bool:
            array = array.astype(float)
            is_logical = True
        elif array.dtype.kind in "iu":
            array = array.astype(float)
        if np.iscomplexobj(array) and np.all(array.imag == 0):
            array = array.real.copy(order="F")
        return MArray(
            np.asfortranarray(array), is_logical=is_logical, is_char=is_char
        )

    @staticmethod
    def from_string(text: str) -> "MArray":
        codes = np.array([[float(ord(c)) for c in text]])
        if not text:
            codes = np.zeros((0, 0))
        return MArray(np.asfortranarray(codes), is_char=True)

    @staticmethod
    def empty() -> "MArray":
        return MArray(np.asfortranarray(np.zeros((0, 0))))

    # -- queries ---------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def numel(self) -> int:
        return int(self.data.size)

    @property
    def is_scalar(self) -> bool:
        return self.data.size == 1

    @property
    def is_empty(self) -> bool:
        return self.data.size == 0

    @property
    def is_vector(self) -> bool:
        shape = self.data.shape
        return sum(1 for d in shape if d > 1) <= 1

    @property
    def is_complex(self) -> bool:
        return np.iscomplexobj(self.data)

    def scalar(self) -> complex:
        if not self.is_scalar:
            raise MatlabRuntimeError(
                f"expected a scalar, got shape {self.shape}"
            )
        return complex(self.data.flat[0])

    def scalar_real(self) -> float:
        value = self.scalar()
        return value.real

    def scalar_int(self) -> int:
        return int(self.scalar_real())

    def is_true(self) -> bool:
        """MATLAB truthiness: nonempty and all elements nonzero."""
        if self.is_empty:
            return False
        return bool(np.all(self.data != 0))

    def flat(self) -> np.ndarray:
        """Elements in column-major order."""
        return self.data.flatten(order="F")

    def byte_size(self, logical_bytes: int = 4) -> int:
        """Payload bytes under the C translation's representation."""
        if self.is_logical:
            return self.numel * logical_bytes
        if self.is_char:
            return self.numel
        if self.is_complex:
            return self.numel * 16
        return self.numel * 8

    def as_string(self) -> str:
        return "".join(chr(int(c.real)) for c in self.flat())

    def __repr__(self) -> str:
        kind = (
            "char" if self.is_char else
            "logical" if self.is_logical else
            "complex" if self.is_complex else "double"
        )
        return f"MArray({kind}, {self.shape})"


def as_marray(value) -> MArray:
    if isinstance(value, MArray):
        return value
    if isinstance(value, str):
        return MArray.from_string(value)
    if isinstance(value, (int, float, complex, bool)):
        return MArray.from_scalar(value)
    if isinstance(value, np.ndarray):
        return MArray.from_numpy(value)
    raise MatlabRuntimeError(f"cannot convert {type(value)} to MArray")
