"""R-indexing (``subsref``) and L-indexing (``subsasgn``) semantics.

Implements the paper's §2.3.2–2.3.3 description: subscripts may be
arbitrary arrays; element sets are Cartesian products of the subscript
values; out-of-range L-indexing *expands* the array, zero-filling fresh
locations.  The shrinkage form ``a(i) = []`` is unsupported, exactly as
in the paper's translator.

``COLON`` is the marker object for a ``:`` subscript.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.errors import IndexError_, MatlabRuntimeError
from repro.runtime.marray import MArray

COLON = ":"


def _index_vector(sub, extent: int) -> np.ndarray:
    """A subscript as 0-based indices (no range check here)."""
    if sub is COLON:
        return np.arange(extent)
    assert isinstance(sub, MArray)
    if sub.is_logical:
        flat = sub.flat()
        return np.nonzero(flat != 0)[0]
    values = sub.flat().real
    if values.size and (np.any(values < 1) or np.any(values % 1 != 0)):
        raise IndexError_(
            "subscripts must be positive integers or logicals"
        )
    return values.astype(int) - 1


def subsref(a: MArray, subs: list) -> MArray:
    """``a(s1, …, sm)``."""
    if not subs:
        return a
    if len(subs) == 1:
        return _subsref_linear(a, subs[0])
    return _subsref_nd(a, subs)


def _subsref_linear(a: MArray, sub) -> MArray:
    flat = a.flat()
    idx = _index_vector(sub, a.numel)
    if idx.size and idx.max() >= a.numel:
        raise IndexError_(
            f"index {idx.max() + 1} exceeds array numel {a.numel}"
        )
    picked = flat[idx]
    if sub is COLON:
        result = picked.reshape(-1, 1)  # a(:) is a column vector
    elif isinstance(sub, MArray) and sub.is_logical:
        result = picked.reshape(-1, 1) if a.shape[0] > 1 else picked.reshape(1, -1)
    elif a.is_vector and not a.is_scalar:
        # vector source: result takes the source's orientation
        if a.shape[0] > 1:
            result = picked.reshape(-1, 1)
        else:
            result = picked.reshape(1, -1)
    else:
        # result has the subscript's shape
        result = picked.reshape(sub.shape, order="F")
    return MArray.from_numpy(
        result, is_logical=a.is_logical, is_char=a.is_char
    )


def _subsref_nd(a: MArray, subs: list) -> MArray:
    data = a.data
    m = len(subs)
    shape = _padded_shape(data.shape, m)
    data = data.reshape(shape, order="F")
    index_vectors = []
    for k, sub in enumerate(subs):
        iv = _index_vector(sub, shape[k])
        if iv.size and iv.max() >= shape[k]:
            raise IndexError_(
                f"index {iv.max() + 1} exceeds extent {shape[k]} in "
                f"dimension {k + 1}"
            )
        index_vectors.append(iv)
    result = data[np.ix_(*index_vectors)]
    if result.ndim < 2:
        result = np.atleast_2d(result)
    return MArray.from_numpy(
        result, is_logical=a.is_logical, is_char=a.is_char
    )


def _padded_shape(shape: tuple[int, ...], m: int) -> tuple[int, ...]:
    """Reshape rule: using m subscripts on an n-D array folds trailing
    dimensions into the m-th and pads missing ones with 1."""
    if m == len(shape):
        return shape
    if m > len(shape):
        return shape + (1,) * (m - len(shape))
    head = shape[: m - 1]
    tail = int(np.prod(shape[m - 1 :]))
    return head + (tail,)


def subsasgn(a: MArray, rhs: MArray, subs: list) -> MArray:
    """``a(s1, …, sm) = rhs`` with zero-filled expansion."""
    if isinstance(rhs, MArray) and rhs.is_empty and not rhs.is_char:
        raise MatlabRuntimeError(
            "deletion via a(i) = [] (shrinkage) is not supported"
        )
    if len(subs) == 1:
        return _subsasgn_linear(a, rhs, subs[0])
    return _subsasgn_nd(a, rhs, subs)


def _result_flags(a: MArray, rhs: MArray) -> dict:
    return {
        "is_logical": a.is_logical and rhs.is_logical,
        "is_char": a.is_char and rhs.is_char,
    }


def _subsasgn_linear(a: MArray, rhs: MArray, sub) -> MArray:
    idx = _index_vector(sub, a.numel)
    if idx.size == 0:
        return a
    needed = int(idx.max()) + 1
    flat = a.flat()
    shape = a.shape
    if needed > a.numel:
        if a.is_empty:
            shape = (1, needed)
        elif a.is_vector:
            shape = (
                (needed, 1) if a.shape[0] > 1 else (1, needed)
            )
        else:
            raise IndexError_(
                "linear index out of range for a non-vector array"
            )
        grown = np.zeros(needed, dtype=flat.dtype)
        grown[: flat.size] = flat
        flat = grown
    if rhs.is_scalar:
        values = np.full(idx.size, rhs.scalar() if rhs.is_complex
                         else rhs.scalar_real())
    else:
        if rhs.numel != idx.size:
            raise MatlabRuntimeError(
                "subscripted assignment dimension mismatch"
            )
        values = rhs.flat()
    if np.iscomplexobj(values) and not np.iscomplexobj(flat):
        flat = flat.astype(complex)
    flat[idx] = values
    result = flat.reshape(shape, order="F")
    return MArray.from_numpy(result, **_result_flags(a, rhs))


def _subsasgn_nd(a: MArray, rhs: MArray, subs: list) -> MArray:
    m = len(subs)
    old_shape = _padded_shape(a.shape, m)
    index_vectors = []
    new_shape = list(old_shape)
    for k, sub in enumerate(subs):
        iv = _index_vector(sub, old_shape[k])
        index_vectors.append(iv)
        if iv.size:
            new_shape[k] = max(new_shape[k], int(iv.max()) + 1)
    dtype = complex if (a.is_complex or rhs.is_complex) else float
    if tuple(new_shape) != old_shape or dtype != a.data.dtype:
        expanded = np.zeros(tuple(new_shape), dtype=dtype, order="F")
        if a.numel:
            expanded[tuple(slice(0, e) for e in old_shape)] = (
                a.data.reshape(old_shape, order="F")
            )
        data = expanded
    else:
        data = a.data.reshape(old_shape, order="F").copy(order="F")
    count = int(np.prod([iv.size for iv in index_vectors]))
    if rhs.is_scalar:
        data[np.ix_(*index_vectors)] = (
            rhs.scalar() if rhs.is_complex else rhs.scalar_real()
        )
    else:
        expected = tuple(iv.size for iv in index_vectors)
        if rhs.numel != count:
            raise MatlabRuntimeError(
                "subscripted assignment dimension mismatch "
                f"(need {expected}, rhs has {rhs.numel} elements)"
            )
        data[np.ix_(*index_vectors)] = rhs.flat().reshape(
            expected, order="F"
        )
    return MArray.from_numpy(data, **_result_flags(a, rhs))
