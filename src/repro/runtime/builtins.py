"""Executable MATLAB builtins over :class:`MArray`.

Each builtin takes ``(ctx, args, nargout)`` and returns a list of
results.  ``ctx`` is a :class:`RuntimeContext` carrying the output
sink, a seeded RNG (so every executor — interpreter, mcc model, mat2c
VM — sees identical data), and the tic/toc clock.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.errors import MatlabRuntimeError
from repro.runtime.marray import MArray


@dataclass(slots=True)
class RuntimeContext:
    output: list[str] = field(default_factory=list)
    seed: int = 20030609  # PLDI'03's date, for luck and determinism
    rng: np.random.Generator = None  # type: ignore[assignment]
    tic_time: float = 0.0

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(self.seed)

    def write(self, text: str) -> None:
        self.output.append(text)

    def captured(self) -> str:
        return "".join(self.output)


_BUILTINS: dict[str, object] = {}


def builtin(name: str):
    def register(fn):
        _BUILTINS[name] = fn
        return fn

    return register


def lookup_builtin(name: str):
    return _BUILTINS.get(name)


def call_builtin(ctx, name, args, nargout=1) -> list[MArray]:
    fn = _BUILTINS.get(name)
    if fn is None:
        raise MatlabRuntimeError(f"unknown builtin {name!r}")
    return fn(ctx, args, nargout)


def _dims_from_args(args: list[MArray]) -> tuple[int, ...]:
    if not args:
        return (1, 1)
    if len(args) == 1:
        n = args[0].scalar_int()
        return (n, n)
    return tuple(a.scalar_int() for a in args)


# -- constructors -------------------------------------------------------


@builtin("zeros")
def _zeros(ctx, args, nargout):
    return [MArray.from_numpy(np.zeros(_dims_from_args(args), order="F"))]


@builtin("ones")
def _ones(ctx, args, nargout):
    return [MArray.from_numpy(np.ones(_dims_from_args(args), order="F"))]


@builtin("eye")
def _eye(ctx, args, nargout):
    dims = _dims_from_args(args)
    if len(dims) != 2:
        raise MatlabRuntimeError("eye expects at most two extents")
    return [
        MArray.from_numpy(np.eye(dims[0], dims[1], order="F"),
                          is_logical=True)
    ]


@builtin("rand")
def _rand(ctx, args, nargout):
    dims = _dims_from_args(args)
    return [MArray.from_numpy(
        np.asfortranarray(ctx.rng.random(dims))
    )]


@builtin("randn")
def _randn(ctx, args, nargout):
    dims = _dims_from_args(args)
    return [MArray.from_numpy(
        np.asfortranarray(ctx.rng.standard_normal(dims))
    )]


@builtin("linspace")
def _linspace(ctx, args, nargout):
    n = args[2].scalar_int() if len(args) > 2 else 100
    return [MArray.from_numpy(np.linspace(
        args[0].scalar_real(), args[1].scalar_real(), n
    ).reshape(1, -1))]


@builtin("repmat")
def _repmat(ctx, args, nargout):
    reps = tuple(a.scalar_int() for a in args[1:])
    if len(reps) == 1:
        reps = (reps[0], reps[0])
    return [MArray.from_numpy(np.tile(args[0].data, reps))]


@builtin("reshape")
def _reshape(ctx, args, nargout):
    dims = tuple(a.scalar_int() for a in args[1:])
    return [MArray.from_numpy(
        args[0].data.reshape(dims, order="F"),
        is_logical=args[0].is_logical,
        is_char=args[0].is_char,
    )]


# -- shape observers -----------------------------------------------------


@builtin("size")
def _size(ctx, args, nargout):
    shape = args[0].shape
    if len(args) > 1:
        k = args[1].scalar_int()
        extent = shape[k - 1] if 1 <= k <= len(shape) else 1
        return [MArray.from_scalar(extent)]
    if nargout <= 1:
        return [MArray.from_numpy(
            np.array([list(shape)], dtype=float)
        )]
    out = []
    for i in range(nargout):
        out.append(MArray.from_scalar(shape[i] if i < len(shape) else 1))
    return out


@builtin("numel")
def _numel(ctx, args, nargout):
    return [MArray.from_scalar(args[0].numel)]


@builtin("length")
def _length(ctx, args, nargout):
    a = args[0]
    return [MArray.from_scalar(0 if a.is_empty else max(a.shape))]


@builtin("ndims")
def _ndims(ctx, args, nargout):
    return [MArray.from_scalar(args[0].data.ndim)]


@builtin("isempty")
def _isempty(ctx, args, nargout):
    return [MArray.from_scalar(bool(args[0].is_empty))]


@builtin("isreal")
def _isreal(ctx, args, nargout):
    return [MArray.from_scalar(not args[0].is_complex)]


# -- elementwise math -----------------------------------------------------


def _unary(fn, preserve_flags=False):
    def apply(ctx, args, nargout):
        a = args[0]
        result = fn(a.data)
        if preserve_flags:
            return [MArray.from_numpy(
                result, is_logical=a.is_logical, is_char=a.is_char
            )]
        return [MArray.from_numpy(result)]

    return apply


_BUILTINS["abs"] = _unary(np.abs)
_BUILTINS["exp"] = _unary(np.exp)
_BUILTINS["sin"] = _unary(np.sin)
_BUILTINS["cos"] = _unary(np.cos)
_BUILTINS["tan"] = _unary(np.tan)
_BUILTINS["asin"] = _unary(np.arcsin)
_BUILTINS["acos"] = _unary(np.arccos)
_BUILTINS["atan"] = _unary(np.arctan)
_BUILTINS["sinh"] = _unary(np.sinh)
_BUILTINS["cosh"] = _unary(np.cosh)
_BUILTINS["tanh"] = _unary(np.tanh)
_BUILTINS["floor"] = _unary(np.floor)
_BUILTINS["ceil"] = _unary(np.ceil)
_BUILTINS["round"] = _unary(np.round)
_BUILTINS["fix"] = _unary(np.trunc)
_BUILTINS["sign"] = _unary(np.sign)
_BUILTINS["real"] = _unary(np.real)
_BUILTINS["imag"] = _unary(np.imag)
_BUILTINS["conj"] = _unary(np.conj)
_BUILTINS["angle"] = _unary(np.angle)


@builtin("sqrt")
def _sqrt(ctx, args, nargout):
    data = args[0].data
    if not np.iscomplexobj(data) and np.any(data < 0):
        data = data.astype(complex)
    return [MArray.from_numpy(np.sqrt(data))]


@builtin("log")
def _log(ctx, args, nargout):
    data = args[0].data
    if not np.iscomplexobj(data) and np.any(data < 0):
        data = data.astype(complex)
    with np.errstate(divide="ignore"):
        return [MArray.from_numpy(np.log(data))]


_BUILTINS["log2"] = _unary(np.log2)
_BUILTINS["log10"] = _unary(np.log10)


@builtin("mod")
def _mod(ctx, args, nargout):
    a, b = args[0], args[1]
    return [MArray.from_numpy(np.mod(
        a.data if not a.is_scalar else a.scalar_real(),
        b.data if not b.is_scalar else b.scalar_real(),
    ) if not (a.is_scalar and b.is_scalar) else
        np.mod(a.scalar_real(), b.scalar_real()))]


@builtin("rem")
def _rem(ctx, args, nargout):
    a, b = args[0], args[1]
    return [MArray.from_numpy(np.fmod(a.data, b.data)
            if a.shape == b.shape else np.fmod(
                a.data if not a.is_scalar else a.scalar_real(),
                b.data if not b.is_scalar else b.scalar_real()))]


@builtin("atan2")
def _atan2(ctx, args, nargout):
    return [MArray.from_numpy(np.arctan2(args[0].data.real,
                                         args[1].data.real))]


# -- reductions -----------------------------------------------------------


def _reduce(np_fn):
    def apply(ctx, args, nargout):
        a = args[0]
        if a.is_empty:
            return [MArray.from_scalar(0.0)]
        if a.is_vector:
            return [MArray.from_scalar(complex(np_fn(a.flat())))]
        return [MArray.from_numpy(
            np.atleast_2d(np_fn(a.data, axis=0))
        )]

    return apply


_BUILTINS["sum"] = _reduce(np.sum)
_BUILTINS["prod"] = _reduce(np.prod)


@builtin("cumsum")
def _cumsum(ctx, args, nargout):
    a = args[0]
    axis = 1 if (a.shape[0] == 1 and a.data.ndim == 2) else 0
    return [MArray.from_numpy(np.cumsum(a.data, axis=axis))]


def _minmax(np_fn, np_arg_fn):
    def apply(ctx, args, nargout):
        if len(args) >= 2:
            a, b = args[0], args[1]
            x = a.data.real if a.is_complex else a.data
            y = b.data.real if b.is_complex else b.data
            if a.is_scalar and not b.is_scalar:
                x = x.flat[0]
            if b.is_scalar and not a.is_scalar:
                y = y.flat[0]
            fn = np.minimum if np_fn is np.min else np.maximum
            return [MArray.from_numpy(np.atleast_2d(fn(x, y)))]
        a = args[0]
        values = a.data.real if a.is_complex else a.data
        if a.is_vector:
            flat = values.flatten(order="F")
            out = [MArray.from_scalar(float(np_fn(flat)))]
            if nargout > 1:
                out.append(MArray.from_scalar(int(np_arg_fn(flat)) + 1))
            return out
        out = [MArray.from_numpy(np.atleast_2d(np_fn(values, axis=0)))]
        if nargout > 1:
            out.append(MArray.from_numpy(
                np.atleast_2d(np_arg_fn(values, axis=0) + 1).astype(float)
            ))
        return out

    return apply


_BUILTINS["min"] = _minmax(np.min, np.argmin)
_BUILTINS["max"] = _minmax(np.max, np.argmax)


@builtin("any")
def _any(ctx, args, nargout):
    a = args[0]
    if a.is_vector or a.is_scalar:
        return [MArray.from_scalar(bool(np.any(a.data != 0)))]
    return [MArray.from_numpy(np.any(a.data != 0, axis=0,
                                     keepdims=True), is_logical=True)]


@builtin("all")
def _all(ctx, args, nargout):
    a = args[0]
    if a.is_vector or a.is_scalar:
        return [MArray.from_scalar(bool(np.all(a.data != 0)))]
    return [MArray.from_numpy(np.all(a.data != 0, axis=0,
                                     keepdims=True), is_logical=True)]


@builtin("find")
def _find(ctx, args, nargout):
    a = args[0]
    flat = a.flat()
    positions = np.nonzero(flat != 0)[0] + 1
    if a.shape[0] == 1 and a.data.ndim == 2:
        result = positions.reshape(1, -1).astype(float)
    else:
        result = positions.reshape(-1, 1).astype(float)
    return [MArray.from_numpy(result)]


@builtin("sort")
def _sort(ctx, args, nargout):
    a = args[0]
    if a.is_vector:
        flat = a.flat()
        order = np.argsort(flat, kind="stable")
        values = flat[order]
        shape = a.shape
        out = [MArray.from_numpy(values.reshape(shape, order="F"))]
        if nargout > 1:
            out.append(MArray.from_numpy(
                (order + 1).astype(float).reshape(shape, order="F")
            ))
        return out
    order = np.argsort(a.data, axis=0, kind="stable")
    values = np.take_along_axis(a.data, order, axis=0)
    out = [MArray.from_numpy(values)]
    if nargout > 1:
        out.append(MArray.from_numpy((order + 1).astype(float)))
    return out


# -- linear algebra --------------------------------------------------------


@builtin("norm")
def _norm(ctx, args, nargout):
    a = args[0]
    if len(args) > 1 and not a.is_vector:
        raise MatlabRuntimeError("matrix norms with order unsupported")
    if a.is_vector:
        return [MArray.from_scalar(float(np.linalg.norm(a.flat())))]
    return [MArray.from_scalar(float(np.linalg.norm(a.data, 2)))]


@builtin("dot")
def _dot(ctx, args, nargout):
    return [MArray.from_scalar(complex(
        np.dot(args[0].flat().conj(), args[1].flat())
    ))]


@builtin("trace")
def _trace(ctx, args, nargout):
    return [MArray.from_scalar(complex(np.trace(args[0].data)))]


@builtin("diag")
def _diag(ctx, args, nargout):
    a = args[0]
    if a.is_vector:
        return [MArray.from_numpy(np.diag(a.flat()))]
    return [MArray.from_numpy(np.diag(a.data).reshape(-1, 1))]


@builtin("kron")
def _kron(ctx, args, nargout):
    return [MArray.from_numpy(np.kron(args[0].data, args[1].data))]


@builtin("fliplr")
def _fliplr(ctx, args, nargout):
    return [MArray.from_numpy(np.fliplr(args[0].data),
                              is_logical=args[0].is_logical,
                              is_char=args[0].is_char)]


@builtin("flipud")
def _flipud(ctx, args, nargout):
    return [MArray.from_numpy(np.flipud(args[0].data),
                              is_logical=args[0].is_logical)]


# -- output ----------------------------------------------------------------


def _format_value(a: MArray) -> str:
    if a.is_char:
        return a.as_string()
    if a.is_scalar:
        value = a.scalar()
        if value.imag == 0:
            real = value.real
            if real == int(real) and abs(real) < 1e15:
                return str(int(real))
            return f"{real:.4f}"
        return f"{value.real:.4f} + {value.imag:.4f}i"
    rows = []
    data = np.atleast_2d(a.data)
    if data.ndim > 2:
        return f"[{'x'.join(str(d) for d in a.shape)} array]"
    for r in range(data.shape[0]):
        cells = []
        for c in range(data.shape[1]):
            value = complex(data[r, c])
            if value.imag == 0:
                cells.append(
                    str(int(value.real))
                    if value.real == int(value.real)
                    and abs(value.real) < 1e15
                    else f"{value.real:.4f}"
                )
            else:
                cells.append(f"{value.real:.4f}+{value.imag:.4f}i")
        rows.append("  ".join(cells))
    return "\n".join(rows)


@builtin("disp")
def _disp(ctx, args, nargout):
    ctx.write(_format_value(args[0]) + "\n")
    return []


@builtin("fprintf")
def _fprintf(ctx, args, nargout):
    if not args:
        return []
    template = args[0].as_string() if args[0].is_char else _format_value(
        args[0]
    )
    values: list[float] = []
    for a in args[1:]:
        values.extend(v.real for v in a.flat())
    text = _apply_format(template, values)
    ctx.write(text)
    return []


def _apply_format(template: str, values: list[float]) -> str:
    template = (
        template.replace("\\n", "\n")
        .replace("\\t", "\t")
    )
    out = []
    i = 0
    vi = 0
    while i < len(template):
        ch = template[i]
        if ch == "%" and i + 1 < len(template):
            j = i + 1
            while j < len(template) and template[j] not in "diufgGeEsxc%":
                j += 1
            if j < len(template):
                spec = template[i : j + 1]
                kind = template[j]
                if kind == "%":
                    out.append("%")
                elif vi < len(values):
                    value = values[vi]
                    vi += 1
                    if kind in "diu":
                        out.append(spec.replace(kind, "d") % int(value))
                    elif kind == "s":
                        out.append(spec % str(value))
                    else:
                        out.append(spec % value)
                i = j + 1
                continue
        out.append(ch)
        i += 1
    return "".join(out)


@builtin("error")
def _error(ctx, args, nargout):
    message = args[0].as_string() if args else "error"
    raise MatlabRuntimeError(message)


@builtin("num2str")
def _num2str(ctx, args, nargout):
    return [MArray.from_string(_format_value(args[0]))]


@builtin("int2str")
def _int2str(ctx, args, nargout):
    return [MArray.from_string(str(args[0].scalar_int()))]


@builtin("tic")
def _tic(ctx, args, nargout):
    ctx.tic_time = time.perf_counter()
    return []


@builtin("toc")
def _toc(ctx, args, nargout):
    return [MArray.from_scalar(time.perf_counter() - ctx.tic_time)]
