"""Run-time error types shared by the interpreter and both executors."""

from repro.frontend.source import MatlabError


class MatlabRuntimeError(MatlabError):
    """A MATLAB semantic error raised during execution."""


class ShapeConformanceError(MatlabRuntimeError):
    """Operand shapes do not conform for the attempted operation."""


class IndexError_(MatlabRuntimeError):
    """Out-of-range or malformed subscript."""
