"""Differential-execution harness: the plan's dynamic cross-check.

Runs one compiled program under every execution model the repo has —
the GCTD-coalesced mat2c VM (in both name-keyed and storage-aliased
modes), the mcc baseline model, and the tree-walking interpreter
(the semantic oracle) — and diffs the printed outputs.  The aliased
mat2c run is the sharp one: reads and writes go through the shared
group buffers, so an unsound coalescing decision corrupts values and
shows up as an output mismatch.

It also cross-checks the memory meter against the plan: the mat2c
stack segment must equal the page-rounded environment-plus-frame size
predicted by ``plan.stack_frame_bytes()``, and every heap allocation
must be freed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.heap import PAGE_SIZE
from repro.memsim.stack import INITIAL_STACK_BYTES
from repro.runtime.builtins import RuntimeContext
from repro.vm.executor import FRAME_OVERHEAD_BYTES

#: the default RNG seed every model runs under (same as the bench suite)
DEFAULT_SEED = 20030609


@dataclass(slots=True)
class DifferentialReport:
    """Agreement matrix for one program."""

    name: str = ""
    models_run: tuple[str, ...] = ()
    problems: list[str] = field(default_factory=list)
    steps: dict[str, int] = field(default_factory=dict)
    predicted_stack_bytes: int = 0
    observed_stack_bytes: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "name": self.name,
            "models_run": list(self.models_run),
            "problems": list(self.problems),
            "steps": dict(self.steps),
            "predicted_stack_bytes": self.predicted_stack_bytes,
            "observed_stack_bytes": self.observed_stack_bytes,
        }

    def summary(self) -> str:
        label = self.name or "program"
        if self.ok:
            return (
                f"{label}: {len(self.models_run)} models agree, "
                f"meter matches plan "
                f"({self.observed_stack_bytes} B stack)"
            )
        lines = [f"{label}: {len(self.problems)} problem(s)"]
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


def _page_round(size: int) -> int:
    return (size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def run_differential(
    result,
    *,
    name: str = "",
    seed: int = DEFAULT_SEED,
    check_meter: bool = True,
) -> DifferentialReport:
    """Execute ``result`` under all models and diff against the oracle.

    ``result`` is a :class:`repro.compiler.pipeline.CompilationResult`;
    every model gets its own :class:`RuntimeContext` with the same
    seed, so ``rand`` streams are identical across models.
    """
    report = DifferentialReport(name=name)

    oracle = result.run_interpreter(RuntimeContext(seed=seed))
    runs = {
        "mat2c": result.run_mat2c(RuntimeContext(seed=seed)),
        "mat2c-aliased": result.run_mat2c(
            RuntimeContext(seed=seed), aliased=True
        ),
        "mcc": result.run_mcc(RuntimeContext(seed=seed)),
    }
    report.models_run = ("interp", *runs)
    report.steps["interp"] = oracle.steps
    for model, run in runs.items():
        report.steps[model] = run.steps
        if run.output != oracle.output:
            report.problems.append(
                f"{model} output diverges from the interpreter oracle "
                f"({_diff_hint(run.output, oracle.output)})"
            )
    if not oracle.output.strip():
        report.problems.append(
            "program printed nothing; differential comparison is vacuous"
        )

    if check_meter:
        _check_meter(result, runs["mat2c"], report)
    return report


def _check_meter(result, mat2c_run, report: DifferentialReport) -> None:
    """Meter totals must match the plan's predicted footprint."""
    predicted = _page_round(
        INITIAL_STACK_BYTES
        + result.plan.stack_frame_bytes()
        + FRAME_OVERHEAD_BYTES
    )
    observed = round(mat2c_run.report.avg_stack_kb * 1024)
    report.predicted_stack_bytes = predicted
    report.observed_stack_bytes = observed
    if observed != predicted:
        report.problems.append(
            f"mat2c stack segment is {observed} B but the plan "
            f"predicts {predicted} B "
            f"(frame {result.plan.stack_frame_bytes()} B)"
        )
    mem = mat2c_run.report
    if mem.mallocs != mem.frees:
        report.problems.append(
            f"mat2c heap leaks: {mem.mallocs} mallocs vs "
            f"{mem.frees} frees"
        )


def _diff_hint(got: str, want: str) -> str:
    """First differing line, for a readable one-line diagnosis."""
    got_lines = got.splitlines()
    want_lines = want.splitlines()
    for i, (g, w) in enumerate(zip(got_lines, want_lines)):
        if g != w:
            return f"first diff at line {i + 1}: {g!r} != {w!r}"
    return (
        f"line counts differ: {len(got_lines)} vs {len(want_lines)}"
    )
