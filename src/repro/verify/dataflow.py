"""Independent liveness/availability recomputation for the verifier.

Deliberately a *separate code path* from :mod:`repro.analysis`: the
checker must not certify a plan using the very dataflow results the
plan was built from.  Where ``repro.analysis`` iterates all blocks
round-robin to a fixed point, these are classic worklist algorithms
(FIFO over blocks, re-queueing only affected neighbors), with their
own block use/def computation.  The *semantics* are the paper's and
must agree — φ operands are uses at the end of the corresponding
predecessor, φ results are defs at the top of their block,
availability is forward-may — but any divergence between the two
implementations surfaces as a verifier false positive/negative on the
suite, which is exactly the cross-check we want.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.ir.cfg import IRFunction
from repro.ir.instr import Branch, Var


@dataclass(slots=True)
class VerifierLiveness:
    live_in: dict[int, set[str]] = field(default_factory=dict)
    live_out: dict[int, set[str]] = field(default_factory=dict)


@dataclass(slots=True)
class VerifierAvailability:
    avail_in: dict[int, set[str]] = field(default_factory=dict)
    avail_out: dict[int, set[str]] = field(default_factory=dict)
    at_def: dict[str, set[str]] = field(default_factory=dict)

    def available_at_definition_of(self, u: str, v: str) -> bool:
        if u == v:
            return True
        return u in self.at_def.get(v, ())


def _predecessor_map(func: IRFunction) -> dict[int, list[int]]:
    preds: dict[int, list[int]] = {bid: [] for bid in func.blocks}
    for bid, block in func.blocks.items():
        for succ in block.successors():
            preds[succ].append(bid)
    return preds


def _uses_and_defs(func: IRFunction, bid: int) -> tuple[set[str], set[str]]:
    """Upward-exposed uses and defs of a block (φs per SSA convention)."""
    uses: set[str] = set()
    defs: set[str] = set()
    block = func.blocks[bid]
    for instr in block.instrs:
        if not instr.is_phi:
            for name in instr.used_vars():
                if name not in defs:
                    uses.add(name)
        defs.update(instr.results)
    term = block.terminator
    if isinstance(term, Branch) and isinstance(term.condition, Var):
        if term.condition.name not in defs:
            uses.add(term.condition.name)
    return uses, defs


def _phi_edge_uses(func: IRFunction, pred: int) -> set[str]:
    """Names read by successors' φs along edges out of ``pred``."""
    out: set[str] = set()
    for succ in func.blocks[pred].successors():
        for phi in func.blocks[succ].phis():
            assert phi.phi_blocks is not None
            for arg, origin in zip(phi.args, phi.phi_blocks):
                if origin == pred and isinstance(arg, Var):
                    out.add(arg.name)
    return out


def recompute_liveness(func: IRFunction) -> VerifierLiveness:
    """Backward worklist liveness over the CFG."""
    blocks = list(func.blocks)
    preds = _predecessor_map(func)
    uses: dict[int, set[str]] = {}
    defs: dict[int, set[str]] = {}
    edge_uses: dict[int, set[str]] = {}
    phi_defs: dict[int, set[str]] = {}
    for bid in blocks:
        uses[bid], defs[bid] = _uses_and_defs(func, bid)
        edge_uses[bid] = _phi_edge_uses(func, bid)
        phi_defs[bid] = {
            phi.results[0] for phi in func.blocks[bid].phis()
        }

    info = VerifierLiveness(
        live_in={bid: set() for bid in blocks},
        live_out={bid: set() for bid in blocks},
    )
    work: deque[int] = deque(reversed(blocks))
    queued = set(work)
    while work:
        bid = work.popleft()
        queued.discard(bid)
        out = set(edge_uses[bid])
        for succ in func.blocks[bid].successors():
            out |= info.live_in[succ] - phi_defs[succ]
        new_in = uses[bid] | (out - defs[bid])
        info.live_out[bid] = out
        if new_in != info.live_in[bid]:
            info.live_in[bid] = new_in
            for pred in preds[bid]:
                if pred not in queued:
                    work.append(pred)
                    queued.add(pred)
    return info


def recompute_availability(func: IRFunction) -> VerifierAvailability:
    """Forward-may worklist availability, plus per-definition views."""
    blocks = list(func.blocks)
    preds = _predecessor_map(func)
    gen: dict[int, set[str]] = {
        bid: {
            res
            for instr in func.blocks[bid].instrs
            for res in instr.results
        }
        for bid in blocks
    }
    entry_seed = set(func.params)

    info = VerifierAvailability(
        avail_in={bid: set() for bid in blocks},
        avail_out={bid: set() for bid in blocks},
    )
    work: deque[int] = deque(blocks)
    queued = set(work)
    while work:
        bid = work.popleft()
        queued.discard(bid)
        new_in = set(entry_seed) if bid == func.entry else set()
        for pred in preds[bid]:
            new_in |= info.avail_out[pred]
        new_out = new_in | gen[bid]
        info.avail_in[bid] = new_in
        if new_out != info.avail_out[bid]:
            info.avail_out[bid] = new_out
            for succ in func.blocks[bid].successors():
                if succ not in queued:
                    work.append(succ)
                    queued.add(succ)

    for bid in blocks:
        current = set(info.avail_in[bid])
        for instr in func.blocks[bid].instrs:
            snapshot = set(current)
            for res in instr.results:
                info.at_def.setdefault(res, snapshot)
            current.update(instr.results)
    for param in func.params:
        info.at_def.setdefault(param, set())
    return info
