"""Mutation self-test: prove the verifier can actually catch a bug.

A verifier that reports "all clean" on every input is worthless; this
module manufactures a *known-unsound* plan by flipping exactly one
coalescing decision — merging two storage groups whose members the
interference graph says conflict — and the self-test then asserts the
static checker flags the mutant.  The original plan is never touched
(the mutation works on a deep copy).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.core.allocation import AllocationPlan, StorageClass


@dataclass(slots=True)
class PlanMutation:
    """One flipped coalescing decision."""

    plan: AllocationPlan          # the mutated (unsound) plan
    merged: tuple[str, str]       # interfering pair now sharing storage
    target_gid: int               # group that absorbed the other
    source_gid: int               # group whose members moved


def flip_one_coalescing(result) -> PlanMutation | None:
    """Merge two groups across a known interference edge.

    Picks the pair deterministically, preferring groups of the same
    storage class and intrinsic (the most plausible-looking unsound
    merge — exactly what a buggy Phase 2 would produce).  Returns
    ``None`` when the plan has nothing to flip (e.g. the trivial
    one-group-per-variable plan of the no-GCTD ablation, whose graph
    carries no edges worth testing).
    """
    graph = result.gctd.graph
    plan = result.plan
    candidates: list[tuple[int, str, str]] = []
    names = sorted(plan.group_of)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if plan.same_storage(a, b):
                continue
            if not graph.interferes(a, b):
                continue
            ga, gb = plan.group(a), plan.group(b)
            score = 0
            if ga.storage is gb.storage:
                score += 2
            if ga.intrinsic == gb.intrinsic:
                score += 1
            candidates.append((-score, a, b))
    if not candidates:
        return None
    _, a, b = min(candidates)

    mutated = copy.deepcopy(plan)
    target = mutated.group(a)
    source = mutated.group(b)
    for member in source.members:
        mutated.group_of[member] = target.gid
    target.members = sorted(target.members + source.members)
    source.members = []
    if target.storage is StorageClass.STACK:
        if source.static_size is None:
            target.storage = StorageClass.HEAP
            target.static_size = None
        else:
            target.static_size = max(
                target.static_size or 0, source.static_size
            )
    return PlanMutation(
        plan=mutated,
        merged=(a, b),
        target_gid=target.gid,
        source_gid=source.gid,
    )
