"""`repro.verify` — independent soundness checks for allocation plans.

Two layers, both deliberately separate from the code that *builds*
plans:

* the static checker (:mod:`repro.verify.checker`) re-derives the
  paper's interference, in-place-legality, resize-mark, and stack
  criteria from its own dataflow (:mod:`repro.verify.dataflow`) and
  reports violations;
* the differential harness (:mod:`repro.verify.differential`) executes
  the program under every model and diffs outputs and memory meters.

The mutation self-test (:mod:`repro.verify.mutate`) keeps the checker
honest by manufacturing unsound plans it must flag.
"""

from repro.verify.checker import verify_compilation, verify_plan
from repro.verify.dataflow import (
    recompute_availability,
    recompute_liveness,
)
from repro.verify.differential import (
    DEFAULT_SEED,
    DifferentialReport,
    run_differential,
)
from repro.verify.mutate import PlanMutation, flip_one_coalescing
from repro.verify.report import (
    ALL_CHECKS,
    PlanViolation,
    VerificationReport,
)

__all__ = [
    "ALL_CHECKS",
    "DEFAULT_SEED",
    "DifferentialReport",
    "PlanMutation",
    "PlanViolation",
    "VerificationReport",
    "flip_one_coalescing",
    "recompute_availability",
    "recompute_liveness",
    "run_differential",
    "verify_compilation",
    "verify_plan",
]
