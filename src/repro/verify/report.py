"""Verification result types.

A :class:`VerificationReport` is the static checker's verdict on one
:class:`~repro.core.allocation.AllocationPlan`; it serializes to the
wire (the server's ``verification`` response key) and prints as a
human-readable summary for ``repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: check identifiers, in the order the checker runs them.
CHECK_COVERAGE = "coverage"
CHECK_LIVENESS = "liveness"
CHECK_OPSEM = "opsem"
CHECK_RESIZE = "resize"
CHECK_STACK = "stack"

ALL_CHECKS = (
    CHECK_COVERAGE,
    CHECK_LIVENESS,
    CHECK_OPSEM,
    CHECK_RESIZE,
    CHECK_STACK,
)


@dataclass(slots=True)
class PlanViolation:
    """One soundness defect found in an allocation plan."""

    check: str                 # which check flagged it (ALL_CHECKS)
    message: str               # human-readable description
    names: tuple[str, ...] = ()  # the SSA names involved

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "message": self.message,
            "names": list(self.names),
        }


@dataclass(slots=True)
class VerificationReport:
    """Outcome of the static plan checks."""

    violations: list[PlanViolation] = field(default_factory=list)
    checks_run: tuple[str, ...] = ALL_CHECKS
    variables_checked: int = 0
    groups_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        out = {check: 0 for check in self.checks_run}
        for v in self.violations:
            out[v.check] = out.get(v.check, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checks": self.counts(),
            "variables": self.variables_checked,
            "groups": self.groups_checked,
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        if self.ok:
            return (
                f"plan OK: {self.variables_checked} variables in "
                f"{self.groups_checked} groups, "
                f"{len(self.checks_run)} checks clean"
            )
        lines = [
            f"plan UNSOUND: {len(self.violations)} violation(s) across "
            f"{self.variables_checked} variables"
        ]
        for v in self.violations:
            lines.append(f"  [{v.check}] {v.message}")
        return "\n".join(lines)
