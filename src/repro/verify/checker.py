"""Static soundness checks for an allocation plan.

``verify_plan`` re-derives, from the SSA function and inferred types
alone, every property a :class:`~repro.core.allocation.AllocationPlan`
must satisfy, using the verifier's own dataflow
(:mod:`repro.verify.dataflow`) rather than anything cached in the
GCTD result:

* **coverage** — every defined variable belongs to exactly one group
  and the group's member list agrees with the ``group_of`` index;
* **liveness** — no two variables sharing a group are simultaneously
  live-and-available at any assignment (the paper's §2 interference
  criterion, including the φ parallel-copy points at predecessor
  block ends and branch-condition reads at block exits);
* **opsem** — no result shares storage with an operand the §2.3
  operator-semantics rules say it cannot be computed over in place;
* **resize** — every heap definition's ∘/+/± annotation is justified
  by Relation 1 on the verifier's own availability: ∘ requires an
  available member of provably equal size, + an available member of
  symbolically smaller-or-equal size (so marks are monotone along
  within-group ⪯ chains);
* **stack** — stack groups are truly static: every member's size is
  statically estimable and fits the group buffer.

A clean report means the plan is sound *by the paper's own criteria*;
the differential harness (:mod:`repro.verify.differential`) then
checks the criteria against actual execution.
"""

from __future__ import annotations

from repro.core.allocation import (
    AllocationPlan,
    GROW_ONLY,
    MAY_RESIZE,
    NO_RESIZE,
)
from repro.core.opsem import (
    ELEMENTWISE_SAFE_BUILTINS,
    LAYOUT_SAFE_BUILTINS,
    REDUCTION_SAFE_BUILTINS,
)
from repro.ir.cfg import IRFunction
from repro.ir.instr import (
    Branch,
    Const,
    ELEMENTWISE_BINARY,
    ELEMENTWISE_UNARY,
    Instr,
    MATRIX_BINARY,
    Operand,
    StrConst,
    Var,
)
from repro.typing.infer import TypeEnvironment
from repro.typing.shape import ConstDim

from repro.verify.dataflow import (
    VerifierAvailability,
    recompute_availability,
    recompute_liveness,
)
from repro.verify.report import (
    CHECK_COVERAGE,
    CHECK_LIVENESS,
    CHECK_OPSEM,
    CHECK_RESIZE,
    CHECK_STACK,
    PlanViolation,
    VerificationReport,
)


def verify_plan(
    func: IRFunction,
    env: TypeEnvironment,
    plan: AllocationPlan,
) -> VerificationReport:
    """Run every static check; ``func`` must be the SSA function the
    plan was built for (``CompilationResult.ssa_func``)."""
    report = VerificationReport(
        variables_checked=len(func.defined_vars()),
        groups_checked=len(plan.groups),
    )
    _check_coverage(func, plan, report.violations)
    _check_liveness(func, plan, report.violations)
    _check_opsem(func, env, plan, report.violations)
    avail = recompute_availability(func)
    _check_resize(func, env, plan, avail, report.violations)
    _check_stack(env, plan, report.violations)
    return report


def verify_compilation(result) -> VerificationReport:
    """Convenience wrapper over a pipeline result."""
    return verify_plan(result.ssa_func, result.env, result.plan)


# --------------------------------------------------------------------------
# coverage
# --------------------------------------------------------------------------


def _check_coverage(
    func: IRFunction, plan: AllocationPlan, out: list[PlanViolation]
) -> None:
    for name in func.defined_vars():
        gid = plan.group_of.get(name)
        if gid is None:
            out.append(
                PlanViolation(
                    CHECK_COVERAGE,
                    f"variable '{name}' has no storage group",
                    (name,),
                )
            )
        elif name not in plan.groups[gid].members:
            out.append(
                PlanViolation(
                    CHECK_COVERAGE,
                    f"'{name}' maps to group {gid} but is not in its "
                    f"member list",
                    (name,),
                )
            )


# --------------------------------------------------------------------------
# liveness: the §2 interference criterion, re-run against the plan
# --------------------------------------------------------------------------


def _check_liveness(
    func: IRFunction, plan: AllocationPlan, out: list[PlanViolation]
) -> None:
    live = recompute_liveness(func)
    avail = recompute_availability(func)
    reported: set[frozenset[str]] = set()

    def conflict(a: str, b: str, where: str) -> None:
        if a == b or not plan.same_storage(a, b):
            return
        key = frozenset((a, b))
        if key in reported:
            return
        reported.add(key)
        out.append(
            PlanViolation(
                CHECK_LIVENESS,
                f"'{a}' and '{b}' share group {plan.group_of[a]} but "
                f"are simultaneously live at {where}",
                (a, b),
            )
        )

    for bid in func.block_order():
        block = func.blocks[bid]
        current = set(live.live_out[bid]) & set(avail.avail_out[bid])

        # The branch condition is read at the very end of the block —
        # *after* the parallel copies SSA inversion places before the
        # terminator — so it must survive every definition below,
        # including φ destinations materialized on the outgoing edges.
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.condition, Var):
            current.add(term.condition.name)

        # φ destinations are defined here by the edge parallel copy;
        # they conflict with everything live at the block end except
        # their own sources (same value).
        for succ in block.successors():
            for phi in func.blocks[succ].phis():
                assert phi.phi_blocks is not None
                own_sources = {
                    a.name
                    for a, origin in zip(phi.args, phi.phi_blocks)
                    if origin == bid and isinstance(a, Var)
                }
                if not own_sources:
                    continue
                dest = phi.results[0]
                for other in current:
                    if other != dest and other not in own_sources:
                        conflict(
                            dest,
                            other,
                            f"the parallel copy ending block {bid}",
                        )

        for instr in reversed(block.instrs):
            same_value = _same_value_sources(instr)
            for i, res_a in enumerate(instr.results):
                for res_b in instr.results[i + 1 :]:
                    conflict(
                        res_a,
                        res_b,
                        f"a multi-result '{instr.op}' in block {bid}",
                    )
            for res in instr.results:
                for other in current:
                    if other != res and other not in same_value:
                        conflict(
                            res,
                            other,
                            f"the definition of '{res}' in block {bid}",
                        )
            for res in instr.results:
                current.discard(res)
            if instr.is_phi:
                continue  # φ operands are edge uses, handled above
            current.update(instr.used_vars())


def _same_value_sources(instr: Instr) -> set[str]:
    if instr.op == "copy":
        return {a.name for a in instr.args if isinstance(a, Var)}
    return set()


# --------------------------------------------------------------------------
# opsem: §2.3 in-place legality against the plan
# --------------------------------------------------------------------------


def _check_opsem(
    func: IRFunction,
    env: TypeEnvironment,
    plan: AllocationPlan,
    out: list[PlanViolation],
) -> None:
    for instr in func.instructions():
        for operand in _illegal_inplace_operands(instr, env):
            for res in instr.results:
                if res != operand.name and plan.same_storage(
                    res, operand.name
                ):
                    out.append(
                        PlanViolation(
                            CHECK_OPSEM,
                            f"result '{res}' of '{instr.op}' shares "
                            f"group {plan.group_of[res]} with operand "
                            f"'{operand.name}', which it cannot be "
                            f"computed over in place",
                            (res, operand.name),
                        )
                    )


def _scalar(operand: Operand, env: TypeEnvironment) -> bool:
    if isinstance(operand, Const):
        return True
    if isinstance(operand, StrConst):
        return False
    return env.of(operand.name).is_scalar


def _vector(operand: Operand, env: TypeEnvironment) -> bool:
    if _scalar(operand, env):
        return True
    if not isinstance(operand, Var):
        return False
    shape = env.of(operand.name).shape
    if not shape.exact:
        return False
    unit_dims = sum(
        1 for d in shape.dims if isinstance(d, ConstDim) and d.value == 1
    )
    return unit_dims >= shape.rank - 1


#: ops whose result may always alias an operand buffer (§2.3.1 and the
#: value-producing pseudo-ops, which allocate fresh or read nothing).
_ALWAYS_INPLACE = frozenset(
    {"copy", "const", "phi", "undef", "empty", "range", "forindex",
     "display"}
)

_INPLACE_SAFE_CALLS = (
    ELEMENTWISE_SAFE_BUILTINS
    | REDUCTION_SAFE_BUILTINS
    | LAYOUT_SAFE_BUILTINS
)


def _illegal_inplace_operands(
    instr: Instr, env: TypeEnvironment
) -> list[Var]:
    """Var operands the result may not overwrite while computing.

    An independent restatement of §2.3 (cf.
    :func:`repro.core.opsem._conflicting_operands`): identical rules,
    so a divergence between the two is itself a bug signal.
    """
    op = instr.op
    if (
        op in _ALWAYS_INPLACE
        or op in ELEMENTWISE_BINARY
        or op in ELEMENTWISE_UNARY
    ):
        return []
    hazards: list[Operand]
    if op in MATRIX_BINARY:
        a, b = instr.args[0], instr.args[1]
        # one scalar operand makes the op elementwise at run time
        hazards = [] if _scalar(a, env) or _scalar(b, env) else [a, b]
    elif op in ("transpose", "ctranspose"):
        # vectors keep their column-major layout under transposition
        hazards = [] if _vector(instr.args[0], env) else [instr.args[0]]
    elif op == "subsref":
        subs = instr.args[1:]
        all_scalar_subs = all(
            _scalar(s, env) for s in subs if not isinstance(s, StrConst)
        ) and not any(isinstance(s, StrConst) for s in subs)
        hazards = [] if all_scalar_subs else [instr.args[0]]
    elif op == "subsasgn":
        # the indexed array itself is always in-place legal (§2.3.3.1)
        hazards = [
            arg
            for arg in instr.args[1:]
            if not isinstance(arg, StrConst) and not _scalar(arg, env)
        ]
    elif op in ("horzcat", "vertcat"):
        hazards = list(instr.args)
    elif instr.is_call and instr.callee in _INPLACE_SAFE_CALLS:
        hazards = []
    else:
        hazards = [
            arg
            for arg in instr.args
            if isinstance(arg, Var) and not _scalar(arg, env)
        ]
    return [h for h in hazards if isinstance(h, Var)]


# --------------------------------------------------------------------------
# resize marks: Relation 1 justification, recomputed
# --------------------------------------------------------------------------

#: safety order: each mark may only be *more* conservative than the
#: strongest claim the verifier can justify.
_MARK_RANK = {NO_RESIZE: 0, GROW_ONLY: 1, MAY_RESIZE: 2}


def _check_resize(
    func: IRFunction,
    env: TypeEnvironment,
    plan: AllocationPlan,
    avail: VerifierAvailability,
    out: list[PlanViolation],
) -> None:
    for instr in func.instructions():
        for res in instr.results:
            gid = plan.group_of.get(res)
            if gid is None or plan.groups[gid].is_stack:
                continue
            claimed = plan.resize_marks.get(res)
            if claimed is None:
                out.append(
                    PlanViolation(
                        CHECK_RESIZE,
                        f"heap definition of '{res}' carries no "
                        f"resize annotation",
                        (res,),
                    )
                )
                continue
            justified = _justified_mark(
                res, plan.groups[gid].members, env, avail
            )
            if _MARK_RANK[claimed] < _MARK_RANK[justified]:
                out.append(
                    PlanViolation(
                        CHECK_RESIZE,
                        f"'{res}' is annotated '{claimed}' but only "
                        f"'{justified}' is justified by Relation 1",
                        (res,),
                    )
                )


def _justified_mark(
    name: str,
    members: list[str],
    env: TypeEnvironment,
    avail: VerifierAvailability,
) -> str:
    """Strongest ∘/+/± claim Relation 1 supports for this definition."""
    own_shape = env.of(name).shape
    grow_only = False
    for other in members:
        if other == name:
            continue
        if not avail.available_at_definition_of(other, name):
            continue
        other_shape = env.of(other).shape
        if other_shape.numel() == own_shape.numel():
            return NO_RESIZE
        if other_shape.storage_le(own_shape):
            grow_only = True
    return GROW_ONLY if grow_only else MAY_RESIZE


# --------------------------------------------------------------------------
# stack groups: statically sized, buffer adequate
# --------------------------------------------------------------------------


def _check_stack(
    env: TypeEnvironment, plan: AllocationPlan, out: list[PlanViolation]
) -> None:
    for group in plan.groups:
        if not group.is_stack:
            continue
        if group.static_size is None:
            out.append(
                PlanViolation(
                    CHECK_STACK,
                    f"stack group {group.gid} (root '{group.root}') "
                    f"has no static size",
                    (group.root,),
                )
            )
            continue
        for member in group.members:
            size = env.of(member).static_storage_size()
            if size is None:
                out.append(
                    PlanViolation(
                        CHECK_STACK,
                        f"stack group {group.gid} contains '{member}' "
                        f"whose size is not statically estimable",
                        (member,),
                    )
                )
            elif size > group.static_size:
                out.append(
                    PlanViolation(
                        CHECK_STACK,
                        f"'{member}' needs {size} bytes but stack "
                        f"group {group.gid} reserves only "
                        f"{group.static_size}",
                        (member,),
                    )
                )
