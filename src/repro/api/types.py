"""Typed request/response/error types — the `/v1` wire format's home.

Before this module existed the CLI, the batch driver, and the server
each hand-rolled the same dicts; a field rename in one place silently
broke the other two.  These dataclasses are now the single source of
truth: everything that crosses a process boundary goes through a
``to_wire``/``from_wire`` pair defined here, and the wire shapes are
frozen into ``api-schema.json`` (see :mod:`repro.api.schema`) with a
drift test.

Compatibility contract: ``to_wire`` reproduces the pre-facade `/v1`
payloads byte-for-byte (same keys, same order, optional keys omitted
when unset); new fields are only ever *added*.  Error responses carry
the ``{code, message, detail}`` envelope on top of the legacy
``{ok, error}`` keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.pipeline import CompilerOptions
from repro.core.gctd import GCTDOptions
from repro.core.optionset import UnknownOptionError


class ApiValidationError(ValueError):
    """A wire payload failed facade validation (maps to HTTP 400)."""


# --------------------------------------------------------------------------
# Compiler options on the wire
# --------------------------------------------------------------------------

#: `/v1` spells options with short switch names; this is the one place
#: that mapping lives.  ``gctd`` is a plain on/off bool on the wire.
WIRE_OPTION_KEYS = ("gctd", "cse", "constfold", "shapefold")


def options_from_wire(payload: dict | None) -> CompilerOptions:
    """Parse the `/v1` options object into :class:`CompilerOptions`."""
    payload = payload or {}
    if not isinstance(payload, dict):
        raise ApiValidationError("'options' must be an object")
    unknown = set(payload) - set(WIRE_OPTION_KEYS)
    if unknown:
        raise ApiValidationError(f"unknown options: {sorted(unknown)}")
    return CompilerOptions(
        gctd=GCTDOptions(enabled=bool(payload.get("gctd", True))),
        enable_cse=bool(payload.get("cse", True)),
        enable_constfold=bool(payload.get("constfold", True)),
        enable_shapefold=bool(payload.get("shapefold", True)),
    )


def options_to_wire(options: CompilerOptions | None) -> dict:
    """Minimal wire options dict (defaults omitted, like the CLI sends)."""
    if options is None:
        return {}
    out: dict = {}
    if not options.gctd.enabled:
        out["gctd"] = False
    if not options.enable_cse:
        out["cse"] = False
    if not options.enable_constfold:
        out["constfold"] = False
    if not options.enable_shapefold:
        out["shapefold"] = False
    return out


def validated_sources(payload: dict) -> dict[str, str]:
    """The `/v1` ``sources`` object: nonempty str→str map."""
    sources = payload.get("sources")
    if not isinstance(sources, dict) or not sources:
        raise ApiValidationError("missing 'sources' (filename -> M text)")
    for name, text in sources.items():
        if not isinstance(name, str) or not isinstance(text, str):
            raise ApiValidationError("'sources' must map str -> str")
    return sources


# --------------------------------------------------------------------------
# Requests
# --------------------------------------------------------------------------


@dataclass(slots=True)
class CompileRequest:
    """One compilation: a set of M-files plus options.

    Shared by the CLI, :func:`repro.service.driver.compile_many`
    (which reads ``sources``/``entry``/``options``/``name``), and the
    server's `/v1/compile` body.
    """

    sources: dict[str, str]
    entry: str | None = None
    options: CompilerOptions | None = None
    name: str = ""
    emit_c: bool = False
    verify_plan: bool = False
    deadline_seconds: float | None = None

    def to_wire(self) -> dict:
        payload: dict = {"sources": self.sources}
        if self.entry is not None:
            payload["entry"] = self.entry
        wire_options = options_to_wire(self.options)
        if wire_options:
            payload["options"] = wire_options
        if self.name:
            payload["name"] = self.name
        if self.emit_c:
            payload["emit_c"] = True
        if self.verify_plan:
            payload["verify_plan"] = True
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "CompileRequest":
        if not isinstance(payload, dict):
            raise ApiValidationError("request body must be a JSON object")
        sources = validated_sources(payload)
        entry = payload.get("entry")
        if entry is not None and not isinstance(entry, str):
            raise ApiValidationError("'entry' must be a string")
        deadline = payload.get("deadline_seconds")
        return cls(
            sources=sources,
            entry=entry,
            options=options_from_wire(payload.get("options")),
            name=str(payload.get("name", "") or ""),
            emit_c=bool(payload.get("emit_c")),
            verify_plan=bool(payload.get("verify_plan")),
            deadline_seconds=deadline,
        )


@dataclass(slots=True)
class BatchRequest:
    """The `/v1/batch` body: an ordered list of compile requests."""

    items: list[CompileRequest] = field(default_factory=list)
    jobs: int | None = None
    deadline_seconds: float | None = None

    def to_wire(self) -> dict:
        payload: dict = {
            "requests": [item.to_wire() for item in self.items]
        }
        if self.jobs is not None:
            payload["jobs"] = self.jobs
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "BatchRequest":
        raw_items = payload.get("requests")
        if not isinstance(raw_items, list) or not raw_items:
            raise ApiValidationError(
                "missing 'requests' (list of compiles)"
            )
        items: list[CompileRequest] = []
        for index, raw in enumerate(raw_items):
            if not isinstance(raw, dict):
                raise ApiValidationError(
                    f"requests[{index}] must be an object"
                )
            request = CompileRequest.from_wire(raw)
            if not request.name:
                request.name = f"request-{index}"
            items.append(request)
        return cls(
            items=items,
            jobs=payload.get("jobs"),
            deadline_seconds=payload.get("deadline_seconds"),
        )


# --------------------------------------------------------------------------
# Responses
# --------------------------------------------------------------------------


@dataclass(slots=True)
class CompileStats:
    """The Table-2 numbers every surface reports."""

    variables: int = 0
    static_subsumed: int = 0
    dynamic_subsumed: int = 0
    storage_reduction_kb: float = 0.0
    colors: int = 0
    groups: int = 0
    stack_frame_bytes: int = 0
    #: True when the plan is the mcc all-heap fallback (GCTD failed).
    degraded: bool = False

    @classmethod
    def from_result(cls, result) -> "CompileStats":
        stats = result.report
        return cls(
            variables=stats.original_variable_count,
            static_subsumed=stats.static_subsumed,
            dynamic_subsumed=stats.dynamic_subsumed,
            storage_reduction_kb=stats.storage_reduction_kb,
            colors=stats.color_count,
            groups=stats.group_count,
            stack_frame_bytes=result.plan.stack_frame_bytes(),
            # getattr: cached pickles predating the field lack the slot.
            degraded=bool(getattr(result, "degraded", False)),
        )

    def to_wire(self) -> dict:
        out = {
            "variables": self.variables,
            "static_subsumed": self.static_subsumed,
            "dynamic_subsumed": self.dynamic_subsumed,
            "storage_reduction_kb": self.storage_reduction_kb,
            "colors": self.colors,
            "groups": self.groups,
            "stack_frame_bytes": self.stack_frame_bytes,
        }
        if self.degraded:
            out["degraded"] = True
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "CompileStats":
        return cls(
            variables=int(payload.get("variables", 0)),
            static_subsumed=int(payload.get("static_subsumed", 0)),
            dynamic_subsumed=int(payload.get("dynamic_subsumed", 0)),
            storage_reduction_kb=float(
                payload.get("storage_reduction_kb", 0.0)
            ),
            colors=int(payload.get("colors", 0)),
            groups=int(payload.get("groups", 0)),
            stack_frame_bytes=int(payload.get("stack_frame_bytes", 0)),
            degraded=bool(payload.get("degraded", False)),
        )


@dataclass(slots=True)
class CompileResponse:
    """The `/v1/compile` success body."""

    ok: bool = True
    name: str = ""
    fingerprint: str = ""
    cache_hit: bool = False
    entry: str = ""
    wall_seconds: float = 0.0
    stats: CompileStats = field(default_factory=CompileStats)
    report: str = ""
    verification: dict | None = None
    c_source: str | None = None
    #: True when the result carries the mcc fallback plan; mirrored on
    #: ``stats.degraded`` so both summary and full consumers see it.
    degraded: bool = False

    @classmethod
    def from_result(
        cls,
        result,
        *,
        name: str = "",
        fingerprint: str = "",
        cache_hit: bool = False,
        wall_seconds: float = 0.0,
        report: str = "",
        emit_c: bool = False,
    ) -> "CompileResponse":
        verification = getattr(result, "verification", None)
        return cls(
            ok=True,
            name=name,
            fingerprint=fingerprint,
            cache_hit=cache_hit,
            entry=result.program.entry,
            wall_seconds=wall_seconds,
            stats=CompileStats.from_result(result),
            report=report,
            verification=(
                verification.to_dict()
                if verification is not None
                else None
            ),
            c_source=result.generate_c() if emit_c else None,
            degraded=bool(getattr(result, "degraded", False)),
        )

    def to_wire(self) -> dict:
        # Key order matches the pre-facade server response exactly;
        # the new `verification`, `c_source`, and `degraded` keys are
        # additive and only present when set, so undegraded responses
        # stay byte-identical to pre-envelope output.
        payload: dict = {
            "ok": self.ok,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "entry": self.entry,
            "wall_seconds": self.wall_seconds,
            "stats": self.stats.to_wire(),
            "report": self.report,
        }
        if self.verification is not None:
            payload["verification"] = self.verification
        if self.c_source is not None:
            payload["c_source"] = self.c_source
        if self.degraded:
            payload["degraded"] = True
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "CompileResponse":
        return cls(
            ok=bool(payload.get("ok")),
            name=str(payload.get("name", "")),
            fingerprint=str(payload.get("fingerprint", "")),
            cache_hit=bool(payload.get("cache_hit")),
            entry=str(payload.get("entry", "")),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            stats=CompileStats.from_wire(payload.get("stats") or {}),
            report=str(payload.get("report", "")),
            verification=payload.get("verification"),
            c_source=payload.get("c_source"),
            degraded=bool(payload.get("degraded", False)),
        )


# --------------------------------------------------------------------------
# Error envelope
# --------------------------------------------------------------------------

#: default machine-readable code per HTTP status — every non-2xx the
#: server can produce has a stable code clients may branch on.
CODE_FOR_STATUS = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "request_timeout",
    413: "payload_too_large",
    422: "compile_error",
    429: "queue_full",
    500: "internal_error",
    503: "unavailable",
    504: "deadline_exceeded",
}


def code_for_status(status: int) -> str:
    return CODE_FOR_STATUS.get(status, f"http_{status}")


@dataclass(slots=True)
class ErrorEnvelope:
    """Uniform non-2xx body: ``{code, message, detail}``.

    ``to_wire`` keeps the legacy ``{ok: false, error: ...}`` keys so
    pre-envelope clients keep working; ``from_wire`` accepts both the
    new envelope and bare legacy bodies (``code`` inferred from the
    HTTP status).
    """

    code: str = "internal_error"
    message: str = ""
    detail: dict = field(default_factory=dict)
    status: int = 0  # transport-level; not serialized

    def to_wire(self) -> dict:
        return {
            "ok": False,
            "error": self.message,
            "code": self.code,
            "message": self.message,
            "detail": self.detail,
        }

    @classmethod
    def from_wire(
        cls, payload: dict | None, status: int = 0
    ) -> "ErrorEnvelope":
        payload = payload if isinstance(payload, dict) else {}
        message = (
            payload.get("message")
            or payload.get("error")
            or f"HTTP {status}" if status else "unknown error"
        )
        detail = payload.get("detail")
        return cls(
            code=str(payload.get("code") or code_for_status(status)),
            message=str(message),
            detail=detail if isinstance(detail, dict) else {},
            status=status,
        )

    def summary(self) -> str:
        """One line for CLI stderr: status, code, message, retry hint."""
        parts = [f"server returned {self.status or '?'}"]
        parts.append(f"[{self.code}]")
        out = " ".join(parts) + f": {self.message}"
        retry = self.detail.get("retry_after_seconds")
        if retry is not None:
            out += f" (retry after {retry}s)"
        return out


__all__ = [
    "ApiValidationError",
    "BatchRequest",
    "CODE_FOR_STATUS",
    "CompileRequest",
    "CompileResponse",
    "CompileStats",
    "ErrorEnvelope",
    "UnknownOptionError",
    "WIRE_OPTION_KEYS",
    "code_for_status",
    "options_from_wire",
    "options_to_wire",
    "validated_sources",
]
