"""Machine-readable description of the `/v1` wire format.

``api_schema()`` derives a JSON document from the facade dataclasses
themselves (field names, annotations, required-ness) plus the error
codes and endpoints.  The repo commits a golden copy as
``api-schema.json``; a drift test regenerates the schema and runs
:func:`schema_compatibility_problems` against the golden file, so an
incompatible wire change (removed field, changed type, repurposed
error code) fails CI until the golden file — and the schema version —
are deliberately updated.
"""

from __future__ import annotations

import dataclasses
import json

from repro.compiler.pipeline import PIPELINE_VERSION

from repro.api.types import (
    BatchRequest,
    CODE_FOR_STATUS,
    CompileRequest,
    CompileResponse,
    CompileStats,
    ErrorEnvelope,
    WIRE_OPTION_KEYS,
)

#: bump when the wire format changes incompatibly (never so far).
SCHEMA_VERSION = 1

_WIRE_TYPES = (
    CompileRequest,
    BatchRequest,
    CompileResponse,
    CompileStats,
    ErrorEnvelope,
)

ENDPOINTS = {
    "/v1/compile": {"method": "POST", "request": "CompileRequest",
                    "response": "CompileResponse"},
    "/v1/batch": {"method": "POST", "request": "BatchRequest",
                  "response": "BatchResponse"},
    "/healthz": {"method": "GET"},
    "/readyz": {"method": "GET"},
    "/metrics": {"method": "GET"},
}


def _describe(cls) -> dict:
    fields_doc: dict = {}
    for f in dataclasses.fields(cls):
        required = (
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        )
        fields_doc[f.name] = {
            "type": str(f.type),
            "required": required,
        }
    return {"fields": fields_doc}


def api_schema() -> dict:
    """The current schema as a JSON-safe dict (keys fully sorted)."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "pipeline_version": PIPELINE_VERSION,
        "endpoints": ENDPOINTS,
        "error_codes": {
            str(status): code for status, code in CODE_FOR_STATUS.items()
        },
        "wire_option_keys": list(WIRE_OPTION_KEYS),
        "types": {cls.__name__: _describe(cls) for cls in _WIRE_TYPES},
    }
    # normalize through JSON so the golden file comparison is stable
    return json.loads(json.dumps(doc, sort_keys=True))


def schema_text() -> str:
    return json.dumps(api_schema(), indent=2, sort_keys=True) + "\n"


def schema_compatibility_problems(old: dict, new: dict) -> list[str]:
    """Breaking changes going from ``old`` (golden) to ``new`` (current).

    Additions are compatible; removals, type changes, and
    newly-required fields are not.
    """
    problems: list[str] = []

    for name, old_type in (old.get("types") or {}).items():
        new_type = (new.get("types") or {}).get(name)
        if new_type is None:
            problems.append(f"type removed: {name}")
            continue
        old_fields = old_type.get("fields") or {}
        new_fields = new_type.get("fields") or {}
        for fname, old_field in old_fields.items():
            new_field = new_fields.get(fname)
            if new_field is None:
                problems.append(f"field removed: {name}.{fname}")
                continue
            if new_field.get("type") != old_field.get("type"):
                problems.append(
                    f"field type changed: {name}.{fname} "
                    f"({old_field.get('type')} -> {new_field.get('type')})"
                )
        for fname, new_field in new_fields.items():
            if fname not in old_fields and new_field.get("required"):
                problems.append(
                    f"new field is required: {name}.{fname}"
                )

    for status, old_code in (old.get("error_codes") or {}).items():
        new_code = (new.get("error_codes") or {}).get(status)
        if new_code is None:
            problems.append(f"error code removed: {status} ({old_code})")
        elif new_code != old_code:
            problems.append(
                f"error code repurposed: {status} "
                f"({old_code} -> {new_code})"
            )

    for key in old.get("wire_option_keys") or []:
        if key not in (new.get("wire_option_keys") or []):
            problems.append(f"wire option key removed: {key}")

    for path, old_ep in (old.get("endpoints") or {}).items():
        new_ep = (new.get("endpoints") or {}).get(path)
        if new_ep is None:
            problems.append(f"endpoint removed: {path}")
        elif new_ep.get("method") != old_ep.get("method"):
            problems.append(
                f"endpoint method changed: {path} "
                f"({old_ep.get('method')} -> {new_ep.get('method')})"
            )

    return problems


__all__ = [
    "ENDPOINTS",
    "SCHEMA_VERSION",
    "api_schema",
    "schema_compatibility_problems",
    "schema_text",
]
