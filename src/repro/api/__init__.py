"""`repro.api` — the typed facade over every process boundary.

One import surface for the request/response/error shapes shared by the
CLI (:mod:`repro.__main__`), the batch driver
(:mod:`repro.service.driver`), and the compile server
(:mod:`repro.server.app`); plus the machine-readable schema the drift
test pins (:mod:`repro.api.schema`).
"""

from repro.api.schema import (
    SCHEMA_VERSION,
    api_schema,
    schema_compatibility_problems,
    schema_text,
)
from repro.api.types import (
    ApiValidationError,
    BatchRequest,
    CODE_FOR_STATUS,
    CompileRequest,
    CompileResponse,
    CompileStats,
    ErrorEnvelope,
    UnknownOptionError,
    WIRE_OPTION_KEYS,
    code_for_status,
    options_from_wire,
    options_to_wire,
    validated_sources,
)

__all__ = [
    "ApiValidationError",
    "BatchRequest",
    "CODE_FOR_STATUS",
    "CompileRequest",
    "CompileResponse",
    "CompileStats",
    "ErrorEnvelope",
    "SCHEMA_VERSION",
    "UnknownOptionError",
    "WIRE_OPTION_KEYS",
    "api_schema",
    "code_for_status",
    "options_from_wire",
    "options_to_wire",
    "schema_compatibility_problems",
    "schema_text",
    "validated_sources",
]
