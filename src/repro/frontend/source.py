"""Source locations and front-end error types.

Every token and AST node carries a :class:`Location` so that diagnostics
from any later pass (lowering, type inference, GCTD) can point back at
the offending MATLAB source line.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Location:
    """A position in an M-file: 1-based line and column."""

    line: int = 0
    column: int = 0
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOCATION = Location()


class MatlabError(Exception):
    """Base class for every error raised by the repro toolchain."""


class MatlabSyntaxError(MatlabError):
    """Raised by the lexer or parser on malformed MATLAB source."""

    def __init__(self, message: str, location: Location = UNKNOWN_LOCATION):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.message = message
