"""Tokenizer for the MATLAB subset accepted by the repro frontend.

The lexer handles the classic MATLAB quirks that matter for our
benchmark programs:

* the single quote ``'`` is *transpose* after a value-producing token
  (identifier, number, ``)``, ``]``, ``end``, or another transpose) and a
  *string delimiter* everywhere else;
* ``%`` starts a comment running to the end of the line;
* ``...`` continues a logical line onto the next physical line;
* newlines are significant (they terminate statements), so they are
  emitted as ``NEWLINE`` tokens rather than skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.frontend.source import Location, MatlabSyntaxError


class TokenKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    KEYWORD = auto()
    OP = auto()
    NEWLINE = auto()
    EOF = auto()


KEYWORDS = frozenset(
    {
        "function",
        "if",
        "elseif",
        "else",
        "end",
        "while",
        "for",
        "break",
        "continue",
        "return",
        "global",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "...",
    ".*",
    "./",
    ".\\",
    ".^",
    ".'",
    "==",
    "~=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "\\",
    "^",
    "'",
    "<",
    ">",
    "&",
    "|",
    "~",
    "=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ":",
    "@",
    ".",
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    location: Location

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OP and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Single-pass scanner producing a list of :class:`Token`."""

    def __init__(self, text: str, filename: str = "<source>"):
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1
        self._tokens: list[Token] = []

    def tokenize(self) -> list[Token]:
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch in " \t\r":
                self._advance()
            elif ch == "%":
                self._skip_comment()
            elif ch == "\n":
                self._emit_newline()
            elif self._match_continuation():
                continue
            elif ch.isdigit() or (ch == "." and self._peek_digit()):
                self._lex_number()
            elif _is_ident_start(ch):
                self._lex_ident()
            elif ch == "'" and not self._quote_is_transpose():
                self._lex_string()
            else:
                self._lex_operator()
        self._tokens.append(
            Token(TokenKind.EOF, "", self._location())
        )
        return self._tokens

    # ------------------------------------------------------------------

    def _location(self) -> Location:
        return Location(self._line, self._col, self._filename)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self._pos < len(self._text) and self._text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _peek_digit(self) -> bool:
        nxt = self._pos + 1
        return nxt < len(self._text) and self._text[nxt].isdigit()

    def _skip_comment(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] != "\n":
            self._advance()

    def _emit_newline(self) -> None:
        # Collapse runs of newlines into a single NEWLINE token.
        loc = self._location()
        self._advance()
        if not self._tokens or self._tokens[-1].kind is not TokenKind.NEWLINE:
            self._tokens.append(Token(TokenKind.NEWLINE, "\n", loc))

    def _match_continuation(self) -> bool:
        if self._text.startswith("...", self._pos):
            # Skip the ellipsis and everything up to and including the
            # next newline; the logical line continues.
            while self._pos < len(self._text) and self._text[self._pos] != "\n":
                self._advance()
            if self._pos < len(self._text):
                self._advance()  # consume the newline itself
            return True
        return False

    def _lex_number(self) -> None:
        loc = self._location()
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos].isdigit():
            self._advance()
        if self._pos < len(self._text) and self._text[self._pos] == ".":
            # Don't swallow the dot of elementwise ops like `2.*x`... a dot
            # followed by an operator char belongs to the operator.
            nxt = self._text[self._pos + 1 : self._pos + 2]
            if nxt.isdigit() or nxt in ("e", "E") or not self._op_follows_dot():
                self._advance()
                while (
                    self._pos < len(self._text)
                    and self._text[self._pos].isdigit()
                ):
                    self._advance()
        if self._pos < len(self._text) and self._text[self._pos] in "eE":
            save = self._pos
            self._advance()
            if self._pos < len(self._text) and self._text[self._pos] in "+-":
                self._advance()
            if self._pos < len(self._text) and self._text[self._pos].isdigit():
                while (
                    self._pos < len(self._text)
                    and self._text[self._pos].isdigit()
                ):
                    self._advance()
            else:
                self._pos = save  # not an exponent after all
        if self._pos < len(self._text) and self._text[self._pos] in "ij":
            self._advance()  # imaginary literal suffix
        self._tokens.append(
            Token(TokenKind.NUMBER, self._text[start : self._pos], loc)
        )

    def _op_follows_dot(self) -> bool:
        nxt = self._text[self._pos + 1 : self._pos + 2]
        return nxt in ("*", "/", "\\", "^", "'")

    def _lex_ident(self) -> None:
        loc = self._location()
        start = self._pos
        while self._pos < len(self._text) and _is_ident_char(
            self._text[self._pos]
        ):
            self._advance()
        name = self._text[start : self._pos]
        kind = TokenKind.KEYWORD if name in KEYWORDS else TokenKind.IDENT
        self._tokens.append(Token(kind, name, loc))

    def _quote_is_transpose(self) -> bool:
        """Decide whether a ``'`` at the current position is transpose."""
        for tok in reversed(self._tokens):
            if tok.kind is TokenKind.NEWLINE:
                return False
            if tok.kind in (TokenKind.IDENT, TokenKind.NUMBER):
                return True
            if tok.kind is TokenKind.KEYWORD:
                return tok.text == "end"
            if tok.kind is TokenKind.OP:
                return tok.text in (")", "]", "}", "'", ".'")
            return False
        return False

    def _lex_string(self) -> None:
        loc = self._location()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._text) or self._text[self._pos] == "\n":
                raise MatlabSyntaxError("unterminated string literal", loc)
            ch = self._text[self._pos]
            if ch == "'":
                if self._text[self._pos + 1 : self._pos + 2] == "'":
                    chars.append("'")  # doubled quote escapes itself
                    self._advance(2)
                    continue
                self._advance()
                break
            chars.append(ch)
            self._advance()
        self._tokens.append(Token(TokenKind.STRING, "".join(chars), loc))

    def _lex_operator(self) -> None:
        loc = self._location()
        for op in _OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                self._tokens.append(Token(TokenKind.OP, op, loc))
                return
        raise MatlabSyntaxError(
            f"unexpected character {self._text[self._pos]!r}", loc
        )


def tokenize(text: str, filename: str = "<source>") -> list[Token]:
    """Tokenize MATLAB source, returning a token list ending in EOF."""
    return Lexer(text, filename).tokenize()
