"""MATLAB frontend: lexer, parser, and AST for the supported subset."""

from repro.frontend.ast_nodes import FunctionDef, Program
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse_program, parse_source
from repro.frontend.source import Location, MatlabError, MatlabSyntaxError

__all__ = [
    "FunctionDef",
    "Program",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_program",
    "parse_source",
    "Location",
    "MatlabError",
    "MatlabSyntaxError",
]
