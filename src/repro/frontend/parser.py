"""Recursive-descent parser for the MATLAB subset.

Produces the AST of :mod:`repro.frontend.ast_nodes`.  Operator
precedence follows the MATLAB 6 reference manual; the notorious corner
cases handled here are:

* space-separated elements inside matrix literals (``[1 -2]`` is two
  elements, ``[1 - 2]`` is one) — resolved using token adjacency;
* ``end`` as both a block terminator and a subscript expression —
  resolved by tracking parenthesis nesting;
* ``[a, b] = f(x)`` multi-assignment versus a matrix-literal expression
  statement — resolved by scanning ahead for ``=``.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.source import Location, MatlabSyntaxError

# Binary operator precedence, low to high.  Unary minus sits between
# multiplicative and power, matching MATLAB (-2^2 == -4).
_PRECEDENCE: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "&": 4,
    "==": 5,
    "~=": 5,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    # ':' handled separately (precedence 6)
    "+": 7,
    "-": 7,
    "*": 8,
    "/": 8,
    "\\": 8,
    ".*": 8,
    "./": 8,
    ".\\": 8,
    # '^'/'.^' handled in _parse_power (precedence 10)
}

_RANGE_PREC = 6
_UNARY_PREC = 9

_STMT_END_KEYWORDS = frozenset(
    {"end", "else", "elseif", "function"}
)


class Parser:
    def __init__(self, tokens: list[Token], filename: str = "<source>"):
        self._tokens = tokens
        self._pos = 0
        self._filename = filename
        self._paren_depth = 0
        self._bracket_depth = 0

    # -- token utilities ----------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._next()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._next()
            return True
        return False

    def _expect_op(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_op(text):
            raise MatlabSyntaxError(
                f"expected {text!r}, found {tok.text!r}", tok.location
            )
        return self._next()

    def _expect_keyword(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(text):
            raise MatlabSyntaxError(
                f"expected keyword {text!r}, found {tok.text!r}", tok.location
            )
        return self._next()

    def _skip_newlines(self) -> None:
        while self._peek().kind is TokenKind.NEWLINE or self._peek().is_op(
            ";"
        ) or self._peek().is_op(","):
            self._next()

    # -- program / function structure ---------------------------------

    def parse_file(self, default_name: str) -> list[ast.FunctionDef]:
        """Parse one M-file into its function definitions.

        A script file (no ``function`` header) becomes a single
        zero-argument function named ``default_name``.
        """
        self._skip_newlines()
        funcs: list[ast.FunctionDef] = []
        if not self._peek().is_keyword("function"):
            body = self._parse_statements(stop_keywords=frozenset({"function"}))
            funcs.append(ast.FunctionDef(name=default_name, body=body))
        while self._peek().is_keyword("function"):
            funcs.append(self._parse_function())
            self._skip_newlines()
        tok = self._peek()
        if tok.kind is not TokenKind.EOF:
            raise MatlabSyntaxError(
                f"unexpected {tok.text!r} at top level", tok.location
            )
        return funcs

    def _parse_function(self) -> ast.FunctionDef:
        loc = self._expect_keyword("function").location
        outputs: list[str] = []
        # Three header shapes: `function name(...)`,
        # `function out = name(...)`, `function [o1, o2] = name(...)`.
        if self._peek().is_op("["):
            self._next()
            while not self._peek().is_op("]"):
                outputs.append(self._expect_ident())
                self._accept_op(",")
            self._expect_op("]")
            self._expect_op("=")
            name = self._expect_ident()
        else:
            first = self._expect_ident()
            if self._accept_op("="):
                outputs = [first]
                name = self._expect_ident()
            else:
                name = first
        inputs: list[str] = []
        if self._accept_op("("):
            self._paren_depth += 1
            while not self._peek().is_op(")"):
                inputs.append(self._expect_ident())
                self._accept_op(",")
            self._expect_op(")")
            self._paren_depth -= 1
        body = self._parse_statements(
            stop_keywords=frozenset({"function", "end"})
        )
        # An explicit terminating `end` on the function is optional.
        self._accept_keyword("end")
        return ast.FunctionDef(
            name=name, inputs=inputs, outputs=outputs, body=body, location=loc
        )

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise MatlabSyntaxError(
                f"expected identifier, found {tok.text!r}", tok.location
            )
        self._next()
        return tok.text

    # -- statements -----------------------------------------------------

    def _parse_statements(
        self, stop_keywords: frozenset[str] = frozenset({"end"})
    ) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while True:
            self._skip_newlines()
            tok = self._peek()
            if tok.kind is TokenKind.EOF:
                break
            if tok.kind is TokenKind.KEYWORD and tok.text in stop_keywords:
                break
            stmts.append(self._parse_statement())
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD:
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "break":
                self._next()
                return ast.Break(location=tok.location)
            if tok.text == "continue":
                self._next()
                return ast.Continue(location=tok.location)
            if tok.text == "return":
                self._next()
                return ast.Return(location=tok.location)
            raise MatlabSyntaxError(
                f"unexpected keyword {tok.text!r}", tok.location
            )
        if tok.is_op("[") and self._looks_like_multi_assign():
            return self._parse_multi_assign()
        return self._parse_simple_statement()

    def _looks_like_multi_assign(self) -> bool:
        """After a leading '[', scan for `] =` (but not `==`)."""
        depth = 0
        i = self._pos
        while i < len(self._tokens):
            tok = self._tokens[i]
            if tok.kind in (TokenKind.NEWLINE, TokenKind.EOF):
                return False
            if tok.is_op("[") or tok.is_op("("):
                depth += 1
            elif tok.is_op("]") or tok.is_op(")"):
                depth -= 1
                if depth == 0:
                    nxt = self._tokens[i + 1] if i + 1 < len(self._tokens) else None
                    return nxt is not None and nxt.is_op("=")
            i += 1
        return False

    def _parse_multi_assign(self) -> ast.MultiAssign:
        loc = self._expect_op("[").location
        self._bracket_depth += 1
        targets: list[ast.Expr] = []
        while not self._peek().is_op("]"):
            targets.append(self._parse_postfix())
            self._accept_op(",")
        self._expect_op("]")
        self._bracket_depth -= 1
        self._expect_op("=")
        value = self._parse_expr()
        display = not self._statement_semicolon()
        return ast.MultiAssign(
            targets=targets, value=value, display=display, location=loc
        )

    def _parse_simple_statement(self) -> ast.Stmt:
        loc = self._peek().location
        expr = self._parse_expr()
        if self._peek().is_op("="):
            if not isinstance(expr, (ast.Ident, ast.Apply)):
                raise MatlabSyntaxError(
                    "invalid assignment target", self._peek().location
                )
            self._next()
            value = self._parse_expr()
            display = not self._statement_semicolon()
            return ast.Assign(
                target=expr, value=value, display=display, location=loc
            )
        display = not self._statement_semicolon()
        return ast.ExprStmt(value=expr, display=display, location=loc)

    def _statement_semicolon(self) -> bool:
        """Consume a statement terminator; True if it was ``;``."""
        if self._accept_op(";"):
            return True
        if self._accept_op(","):
            return False
        tok = self._peek()
        if tok.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            return False
        if tok.kind is TokenKind.KEYWORD and tok.text in _STMT_END_KEYWORDS:
            return False
        raise MatlabSyntaxError(
            f"expected end of statement, found {tok.text!r}", tok.location
        )

    def _parse_if(self) -> ast.If:
        loc = self._expect_keyword("if").location
        branches: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        cond = self._parse_expr()
        body = self._parse_statements(frozenset({"end", "else", "elseif"}))
        branches.append((cond, body))
        orelse: list[ast.Stmt] = []
        while True:
            if self._accept_keyword("elseif"):
                cond = self._parse_expr()
                body = self._parse_statements(
                    frozenset({"end", "else", "elseif"})
                )
                branches.append((cond, body))
            elif self._accept_keyword("else"):
                orelse = self._parse_statements(frozenset({"end"}))
                break
            else:
                break
        self._expect_keyword("end")
        return ast.If(branches=branches, orelse=orelse, location=loc)

    def _parse_while(self) -> ast.While:
        loc = self._expect_keyword("while").location
        cond = self._parse_expr()
        body = self._parse_statements(frozenset({"end"}))
        self._expect_keyword("end")
        return ast.While(condition=cond, body=body, location=loc)

    def _parse_for(self) -> ast.For:
        loc = self._expect_keyword("for").location
        var = self._expect_ident()
        self._expect_op("=")
        iterable = self._parse_expr()
        body = self._parse_statements(frozenset({"end"}))
        self._expect_keyword("end")
        return ast.For(var=var, iterable=iterable, body=body, location=loc)

    # -- expressions ----------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_binary(1)

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        if min_prec <= _RANGE_PREC:
            return self._parse_range_level(min_prec)
        return self._parse_binary_above_range(min_prec)

    def _parse_range_level(self, min_prec: int) -> ast.Expr:
        left = self._parse_binary_tail(min_prec, upto=_RANGE_PREC)
        if self._peek().is_op(":") and not self._colon_is_subscript():
            loc = self._next().location
            second = self._parse_binary_above_range(_RANGE_PREC + 1)
            if self._peek().is_op(":") and not self._colon_is_subscript():
                self._next()
                third = self._parse_binary_above_range(_RANGE_PREC + 1)
                rng: ast.Expr = ast.Range(
                    start=left, stop=third, step=second, location=loc
                )
            else:
                rng = ast.Range(start=left, stop=second, location=loc)
            return self._continue_binary(rng, min_prec, upto=_RANGE_PREC)
        return left

    def _colon_is_subscript(self) -> bool:
        # Inside a subscript list a trailing `:` before `,` or `)` would
        # be a whole-dimension colon; bare `:` operands are handled in
        # _parse_primary, so a `:` reaching here is always a range.
        return False

    def _parse_binary_tail(self, min_prec: int, upto: int) -> ast.Expr:
        left = self._parse_binary_above_range(upto + 1)
        return self._continue_binary(left, min_prec, upto)

    def _continue_binary(
        self, left: ast.Expr, min_prec: int, upto: int
    ) -> ast.Expr:
        while True:
            tok = self._peek()
            prec = _PRECEDENCE.get(tok.text) if tok.kind is TokenKind.OP else None
            if prec is None or prec < min_prec or prec > upto:
                return left
            if self._in_matrix_element_boundary():
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = ast.BinaryOp(
                op=tok.text, left=left, right=right, location=tok.location
            )

    def _parse_binary_above_range(self, min_prec: int) -> ast.Expr:
        if min_prec <= 8:
            left = self._parse_unary()
            return self._continue_binary(left, min_prec, upto=8)
        return self._parse_unary()

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_op("-") or tok.is_op("+") or tok.is_op("~"):
            self._next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.UnaryOp(op=tok.text, operand=operand, location=tok.location)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_postfix()
        tok = self._peek()
        if tok.is_op("^") or tok.is_op(".^"):
            self._next()
            # Power is right-assoc in MATLAB via unary on the exponent.
            exponent = self._parse_unary_for_power()
            return ast.BinaryOp(
                op=tok.text, left=base, right=exponent, location=tok.location
            )
        return base

    def _parse_unary_for_power(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_op("-") or tok.is_op("+"):
            self._next()
            operand = self._parse_unary_for_power()
            if tok.text == "+":
                return operand
            return ast.UnaryOp(op="-", operand=operand, location=tok.location)
        return self._parse_power()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_op("(") and not self._space_before_paren(tok):
                self._next()
                self._paren_depth += 1
                args = self._parse_arg_list()
                self._expect_op(")")
                self._paren_depth -= 1
                expr = ast.Apply(func=expr, args=args, location=tok.location)
            elif tok.is_op("'") or tok.is_op(".'"):
                self._next()
                expr = ast.Transpose(
                    operand=expr,
                    conjugate=(tok.text == "'"),
                    location=tok.location,
                )
            else:
                return expr

    def _space_before_paren(self, tok: Token) -> bool:
        """Inside `[...]`, `a (1)` starts a new element, `a(1)` indexes."""
        if self._bracket_depth == 0:
            return False
        prev = self._tokens[self._pos - 1]
        return not _adjacent(prev, tok)

    def _parse_arg_list(self) -> list[ast.Expr]:
        args: list[ast.Expr] = []
        while not self._peek().is_op(")"):
            if self._peek().is_op(":") and self._next_is_arg_end(1):
                loc = self._next().location
                args.append(ast.ColonAll(location=loc))
            else:
                args.append(self._parse_expr())
            if not self._accept_op(","):
                break
        return args

    def _next_is_arg_end(self, offset: int) -> bool:
        tok = self._peek(offset)
        return tok.is_op(",") or tok.is_op(")")

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._next()
            text = tok.text
            is_imag = text[-1] in "ij" and not text[-1].isdigit()
            if is_imag:
                text = text[:-1]
            return ast.Num(
                value=float(text), is_imag=is_imag, location=tok.location
            )
        if tok.kind is TokenKind.STRING:
            self._next()
            return ast.Str(value=tok.text, location=tok.location)
        if tok.kind is TokenKind.IDENT:
            self._next()
            return ast.Ident(name=tok.text, location=tok.location)
        if tok.is_keyword("end"):
            if self._paren_depth > 0:
                self._next()
                return ast.EndMarker(location=tok.location)
            raise MatlabSyntaxError("'end' outside subscript", tok.location)
        if tok.is_op("("):
            self._next()
            self._paren_depth += 1
            expr = self._parse_expr()
            self._expect_op(")")
            self._paren_depth -= 1
            return expr
        if tok.is_op("["):
            return self._parse_matrix()
        raise MatlabSyntaxError(
            f"unexpected token {tok.text!r} in expression", tok.location
        )

    # -- matrix literals -------------------------------------------------

    def _parse_matrix(self) -> ast.Expr:
        loc = self._expect_op("[").location
        self._bracket_depth += 1
        rows: list[list[ast.Expr]] = []
        row: list[ast.Expr] = []
        while True:
            tok = self._peek()
            if tok.is_op("]"):
                self._next()
                break
            if tok.kind is TokenKind.EOF:
                raise MatlabSyntaxError("unterminated matrix literal", loc)
            if tok.is_op(";") or tok.kind is TokenKind.NEWLINE:
                self._next()
                if row:
                    rows.append(row)
                    row = []
                continue
            if tok.is_op(","):
                self._next()
                continue
            row.append(self._parse_expr())
        if row:
            rows.append(row)
        self._bracket_depth -= 1
        return ast.MatrixLit(rows=rows, location=loc)

    def _in_matrix_element_boundary(self) -> bool:
        """Decide if a `+`/`-` inside ``[...]`` starts a new element.

        ``[a -b]`` → boundary (space before the sign, none after);
        ``[a - b]`` and ``[a-b]`` → binary operator.
        """
        if self._bracket_depth == 0 or self._paren_depth > 0:
            return False
        tok = self._peek()
        if not (tok.is_op("-") or tok.is_op("+")):
            return False
        prev = self._tokens[self._pos - 1]
        nxt = self._peek(1)
        space_before = not _adjacent(prev, tok)
        space_after = not _adjacent(tok, nxt)
        return space_before and not space_after


def _token_end_column(tok: Token) -> int:
    width = len(tok.text)
    if tok.kind is TokenKind.STRING:
        width += 2  # the surrounding quotes
    return tok.location.column + width


def _adjacent(a: Token, b: Token) -> bool:
    return (
        a.location.line == b.location.line
        and _token_end_column(a) == b.location.column
    )


def parse_source(text: str, filename: str = "<source>") -> list[ast.FunctionDef]:
    """Parse one M-file's text into its function definitions."""
    default = filename.rsplit("/", 1)[-1].removesuffix(".m")
    return Parser(tokenize(text, filename), filename).parse_file(default)


def parse_program(
    sources: dict[str, str], entry: str | None = None
) -> ast.Program:
    """Parse a set of M-files (name → text) into a :class:`Program`.

    ``entry`` defaults to the function whose name matches the first
    source file given.
    """
    program = ast.Program()
    first_name: str | None = None
    for filename, text in sources.items():
        funcs = parse_source(text, filename)
        for func in funcs:
            if func.name in program.functions:
                raise MatlabSyntaxError(
                    f"duplicate function {func.name!r}", func.location
                )
            program.functions[func.name] = func
        if funcs and first_name is None:
            first_name = funcs[0].name
    program.entry = entry or first_name or ""
    if program.entry not in program.functions:
        raise MatlabSyntaxError(f"entry function {program.entry!r} not found")
    return program
