"""AST node definitions for the MATLAB subset.

The tree is deliberately small: MATLAB's expression grammar collapses
calls and indexing into one :class:`Apply` node (``a(i)`` is indexing if
``a`` is a variable and a call otherwise — only name resolution during
lowering can tell), which mirrors how MATLAB itself parses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.source import Location, UNKNOWN_LOCATION


@dataclass(slots=True)
class Node:
    pass


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Expr(Node):
    location: Location = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass(slots=True)
class Num(Expr):
    """Numeric literal; ``is_imag`` marks ``3i``-style imaginary literals."""

    value: float
    is_imag: bool = False


@dataclass(slots=True)
class Str(Expr):
    value: str


@dataclass(slots=True)
class Ident(Expr):
    name: str


@dataclass(slots=True)
class ColonAll(Expr):
    """A bare ``:`` subscript selecting a whole dimension."""


@dataclass(slots=True)
class EndMarker(Expr):
    """The ``end`` keyword inside a subscript list."""


@dataclass(slots=True)
class UnaryOp(Expr):
    op: str  # '-', '+', '~'
    operand: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '.*', '/', './', '\\', '^', '.^', '==', ...
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Transpose(Expr):
    operand: Expr
    conjugate: bool = True  # `'` conjugates; `.'` does not


@dataclass(slots=True)
class Range(Expr):
    """``start:stop`` or ``start:step:stop``."""

    start: Expr
    stop: Expr
    step: Expr | None = None


@dataclass(slots=True)
class Apply(Expr):
    """``f(args)`` — either a function call or an array index."""

    func: Expr
    args: list[Expr] = field(default_factory=list)


@dataclass(slots=True)
class MatrixLit(Expr):
    """``[r1c1, r1c2; r2c1, r2c2]`` — rows of horizontally-glued pieces."""

    rows: list[list[Expr]] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt(Node):
    location: Location = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass(slots=True)
class Assign(Stmt):
    """``lhs = rhs`` where lhs is an Ident or an Apply (L-indexing)."""

    target: Expr
    value: Expr = None  # type: ignore[assignment]
    display: bool = False  # no trailing `;` => echo the result


@dataclass(slots=True)
class MultiAssign(Stmt):
    """``[a, b] = f(...)`` — multiple return values."""

    targets: list[Expr]
    value: Expr = None  # type: ignore[assignment]
    display: bool = False


@dataclass(slots=True)
class ExprStmt(Stmt):
    """A bare expression statement (usually a call like ``disp(x)``)."""

    value: Expr
    display: bool = False


@dataclass(slots=True)
class If(Stmt):
    """``if/elseif/else`` — branches is a list of (condition, body)."""

    branches: list[tuple[Expr, list[Stmt]]] = field(default_factory=list)
    orelse: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class While(Stmt):
    condition: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class For(Stmt):
    """``for var = iterable`` — iterable is typically a Range."""

    var: str
    iterable: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


@dataclass(slots=True)
class Return(Stmt):
    pass


# --------------------------------------------------------------------------
# Functions and programs
# --------------------------------------------------------------------------


@dataclass(slots=True)
class FunctionDef(Node):
    """One MATLAB function: ``function [outs] = name(ins)``."""

    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    location: Location = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass(slots=True)
class Program(Node):
    """A set of parsed M-files; the first function is the entry point.

    ``functions`` maps function name to definition.  A *script* M-file
    (statements with no ``function`` header) is wrapped into a function
    of no arguments named after the file.
    """

    functions: dict[str, FunctionDef] = field(default_factory=dict)
    entry: str = ""

    def entry_function(self) -> FunctionDef:
        return self.functions[self.entry]
