"""Deterministic interpreter for a :class:`~repro.faults.plan.FaultPlan`.

Production modules consult a :class:`FaultInjector` at named sites;
with no plan (or no matching rules) every consultation is a cheap
no-op, so the injector can stay threaded through the hot path
permanently.  Three consultation styles cover every site:

* :meth:`interrupt` — control faults: raises :class:`FaultInjected`
  (CRASH), raises ``OSError(ENOSPC)``, or sleeps (HANG);
* :meth:`mangle` — data faults: truncates (TORN_WRITE) or flips bytes
  in (CORRUPT_BYTES) a payload about to be written;
* :meth:`pick` — caller-interpreted faults (WORKER_DEATH,
  DROP_CONNECTION, DELAY): returns the fired rule, the caller acts.

Whether the *n*-th consultation of a site fires a rule is a pure
function of ``(plan.seed, site, n, rule position)`` — a SHA-256-driven
coin flip — so a chaos schedule replays exactly given the same
per-site consultation order.  Every injected fault is recorded on
:attr:`FaultInjector.injected` (and reported through the optional
``on_fire`` hook) so tests and metrics can account for precisely what
went wrong.
"""

from __future__ import annotations

import errno
import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.faults.plan import (
    CORRUPT_BYTES,
    CRASH,
    ENOSPC,
    FaultPlan,
    FaultRule,
    HANG,
    TORN_WRITE,
)


class FaultInjected(RuntimeError):
    """The exception a CRASH-kind fault raises at its site."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site


@dataclass(frozen=True, slots=True)
class InjectedFault:
    """One fault that actually fired, for logs and assertions."""

    site: str
    kind: str
    hit: int          # which consultation of the site (1-based)

    def to_dict(self) -> dict:
        return {"site": self.site, "kind": self.kind, "hit": self.hit}


def _coin(seed: int, site: str, hit: int, slot: int) -> float:
    """Uniform [0, 1) decided only by the schedule coordinates."""
    digest = hashlib.sha256(
        f"{seed}\x00{site}\x00{hit}\x00{slot}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(slots=True)
class FaultInjector:
    """Thread-safe, deterministic executor of one fault plan."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    #: optional callback invoked with each :class:`InjectedFault`.
    on_fire: object = None
    sleep: object = time.sleep          # injectable for fast tests
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _hits: dict = field(default_factory=dict)       # site -> count
    _fires: dict = field(default_factory=dict)      # (site, slot) -> count
    injected: list = field(default_factory=list)

    @property
    def enabled(self) -> bool:
        return bool(self.plan.rules)

    # -- the decision procedure ------------------------------------------

    def pick(self, site: str) -> FaultRule | None:
        """Consult ``site``; return the rule that fires, if any.

        At most one rule fires per consultation (the first match in
        plan order), so compound schedules stay easy to reason about.
        """
        if not self.plan.rules:
            return None
        rules = [
            (slot, rule)
            for slot, rule in enumerate(self.plan.rules)
            if rule.site == site
        ]
        if not rules:
            return None
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for slot, rule in rules:
                fired = self._fires.get((site, slot), 0)
                if rule.max_fires and fired >= rule.max_fires:
                    continue
                if _coin(self.plan.seed, site, hit, slot) < rule.rate:
                    self._fires[(site, slot)] = fired + 1
                    fault = InjectedFault(site, rule.kind, hit)
                    self.injected.append(fault)
                    break
            else:
                return None
        if self.on_fire is not None:
            self.on_fire(fault)
        return rule

    # -- consultation styles ---------------------------------------------

    def interrupt(self, site: str) -> None:
        """Control-fault consultation: may raise or sleep, else no-op."""
        rule = self.pick(site)
        if rule is None:
            return
        if rule.kind == CRASH:
            raise FaultInjected(site)
        if rule.kind == ENOSPC:
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if rule.kind == HANG:
            self.sleep(rule.delay_seconds)

    def mangle(self, site: str, data: bytes) -> bytes:
        """Data-fault consultation: may corrupt the payload in flight."""
        rule = self.pick(site)
        if rule is None:
            return data
        if rule.kind == TORN_WRITE:
            return data[: len(data) // 2]
        if rule.kind == CORRUPT_BYTES:
            if not data:
                return b"\xff"
            mangled = bytearray(data)
            step = max(1, len(mangled) // 8)
            for index in range(0, len(mangled), step):
                mangled[index] ^= 0xFF
            return bytes(mangled)
        if rule.kind == ENOSPC:
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        return data

    # -- bookkeeping ------------------------------------------------------

    def counts(self) -> dict[tuple[str, str], int]:
        """(site, kind) -> number of injections so far."""
        with self._lock:
            out: dict[tuple[str, str], int] = {}
            for fault in self.injected:
                key = (fault.site, fault.kind)
                out[key] = out.get(key, 0) + 1
            return out


#: Shared inert injector for call sites that want a non-None default.
NO_FAULTS = FaultInjector()
