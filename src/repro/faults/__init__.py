"""Deterministic, seeded fault injection (``repro.faults``).

The robustness counterpart to :mod:`repro.verify`: the verifier proves
a result sound, this package makes the *paths to a result* fail on
purpose — torn cache writes, corrupted bytes, full disks, compiler
crashes and hangs, dying workers, dropped connections — under a seeded
schedule (:class:`FaultPlan`) a :class:`FaultInjector` replays
deterministically.  Production modules accept an optional injector and
pay nothing when it is absent; chaos tests hand every layer the same
schedule and assert the system-level invariants (server stays up, no
corrupt response is ever served, degraded results are flagged and
still verify).
"""

from repro.faults.injector import (
    FaultInjected,
    FaultInjector,
    InjectedFault,
    NO_FAULTS,
)
from repro.faults.plan import (
    ALL_KINDS,
    ALL_SITES,
    CORRUPT_BYTES,
    CRASH,
    DELAY,
    DROP_CONNECTION,
    ENABLE_FAULTS_ENV,
    ENOSPC,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    HANG,
    SITE_CACHE_WRITE,
    SITE_CC_COMPILE,
    SITE_GCTD,
    SITE_HTTP_RESPONSE,
    SITE_POOL_WORKER,
    TORN_WRITE,
    WORKER_DEATH,
    chaos_plan,
    faults_enabled,
    load_fault_plan,
)

__all__ = [
    "ALL_KINDS",
    "ALL_SITES",
    "CORRUPT_BYTES",
    "CRASH",
    "DELAY",
    "DROP_CONNECTION",
    "ENABLE_FAULTS_ENV",
    "ENOSPC",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "HANG",
    "InjectedFault",
    "NO_FAULTS",
    "SITE_CACHE_WRITE",
    "SITE_CC_COMPILE",
    "SITE_GCTD",
    "SITE_HTTP_RESPONSE",
    "SITE_POOL_WORKER",
    "TORN_WRITE",
    "WORKER_DEATH",
    "chaos_plan",
    "faults_enabled",
    "load_fault_plan",
]
