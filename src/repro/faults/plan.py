"""Seeded fault schedules: what goes wrong, where, and how often.

A :class:`FaultPlan` is a pure-data description of a chaos experiment:
a seed plus a list of :class:`FaultRule`\\ s, each binding one
*injection site* (a dotted name a production module consults, e.g.
``cache.write``) to one *fault kind* (what happens there) with a
firing rate and an optional cap.  The plan is deliberately inert — it
does nothing until a :class:`~repro.faults.injector.FaultInjector`
interprets it — and fully serializable, so a chaos run is reproducible
from a JSON file plus the seed inside it.

Determinism contract: whether the *n*-th consultation of a site fires
a rule depends only on ``(seed, site, n, rule)`` — never on wall-clock
time, thread identity, or Python's global RNG — so two runs that
consult the sites in the same per-site order inject exactly the same
faults.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

# -- fault kinds -----------------------------------------------------------

#: write only a prefix of the payload (a crash mid-write / torn page).
TORN_WRITE = "torn_write"
#: flip bytes somewhere in the payload (bit rot, bad RAM, bad disk).
CORRUPT_BYTES = "corrupt_bytes"
#: raise ``OSError(ENOSPC)`` — the disk is full.
ENOSPC = "enospc"
#: raise :class:`~repro.faults.injector.FaultInjected` (component crash).
CRASH = "crash"
#: sleep ``delay_seconds`` at the site (hang / pathological slowness).
HANG = "hang"
#: kill the worker thread servicing the request (BaseException-grade).
WORKER_DEATH = "worker_death"
#: close the connection without writing the HTTP response.
DROP_CONNECTION = "drop_connection"
#: delay the HTTP response by ``delay_seconds`` before writing it.
DELAY = "delay"

ALL_KINDS = (
    TORN_WRITE,
    CORRUPT_BYTES,
    ENOSPC,
    CRASH,
    HANG,
    WORKER_DEATH,
    DROP_CONNECTION,
    DELAY,
)

# -- injection sites -------------------------------------------------------

#: artifact-cache entry writes (plan/report/c_source/meta payloads).
SITE_CACHE_WRITE = "cache.write"
#: C-backend invocation (:func:`repro.backend.cc.compile_and_run`).
SITE_CC_COMPILE = "cc.compile"
#: worker-pool job pickup (:class:`repro.server.pool.WorkerPool`).
SITE_POOL_WORKER = "pool.worker"
#: HTTP response write (:mod:`repro.server.app` connection loop).
SITE_HTTP_RESPONSE = "http.response"
#: the GCTD pass inside :func:`repro.compiler.pipeline.compile_program`.
SITE_GCTD = "gctd.run"

ALL_SITES = (
    SITE_CACHE_WRITE,
    SITE_CC_COMPILE,
    SITE_POOL_WORKER,
    SITE_HTTP_RESPONSE,
    SITE_GCTD,
)

#: environment variable gating fault plans in real server processes.
ENABLE_FAULTS_ENV = "REPRO_ENABLE_FAULTS"


class FaultPlanError(ValueError):
    """A fault-plan document failed validation."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One scheduled failure mode at one site."""

    site: str
    kind: str
    #: probability each consultation of ``site`` fires this rule.
    rate: float = 1.0
    #: stop firing after this many injections (0 = unlimited).
    max_fires: int = 0
    #: sleep length for HANG/DELAY kinds.
    delay_seconds: float = 0.05

    def validate(self) -> None:
        if self.kind not in ALL_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {ALL_KINDS})"
            )
        if not self.site:
            raise FaultPlanError("rule needs a nonempty site")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(
                f"rate must be in [0, 1], got {self.rate}"
            )
        if self.max_fires < 0:
            raise FaultPlanError("max_fires must be >= 0")
        if self.delay_seconds < 0:
            raise FaultPlanError("delay_seconds must be >= 0")

    def to_dict(self) -> dict:
        out: dict = {"site": self.site, "kind": self.kind}
        if self.rate != 1.0:
            out["rate"] = self.rate
        if self.max_fires:
            out["max_fires"] = self.max_fires
        if self.kind in (HANG, DELAY):
            out["delay_seconds"] = self.delay_seconds
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        if not isinstance(payload, dict):
            raise FaultPlanError("each rule must be an object")
        unknown = set(payload) - {
            "site", "kind", "rate", "max_fires", "delay_seconds"
        }
        if unknown:
            raise FaultPlanError(f"unknown rule keys: {sorted(unknown)}")
        rule = cls(
            site=str(payload.get("site", "")),
            kind=str(payload.get("kind", "")),
            rate=float(payload.get("rate", 1.0)),
            max_fires=int(payload.get("max_fires", 0)),
            delay_seconds=float(payload.get("delay_seconds", 0.05)),
        )
        rule.validate()
        return rule


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seed plus the rules it drives.  Pure data; see the injector."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    name: str = ""

    def validate(self) -> None:
        for rule in self.rules:
            rule.validate()

    def for_site(self, site: str) -> tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.site == site)

    def to_dict(self) -> dict:
        out: dict = {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }
        if self.name:
            out["name"] = self.name
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        unknown = set(payload) - {"seed", "rules", "name"}
        if unknown:
            raise FaultPlanError(f"unknown plan keys: {sorted(unknown)}")
        raw_rules = payload.get("rules", [])
        if not isinstance(raw_rules, list):
            raise FaultPlanError("'rules' must be a list")
        plan = cls(
            seed=int(payload.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in raw_rules),
            name=str(payload.get("name", "")),
        )
        plan.validate()
        return plan


def faults_enabled() -> bool:
    """Whether the environment opts in to fault injection."""
    return os.environ.get(ENABLE_FAULTS_ENV, "") == "1"


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Read and validate a fault-plan JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise FaultPlanError(f"cannot read fault plan {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"fault plan {path} is not JSON: {exc}")
    return FaultPlan.from_dict(payload)


def chaos_plan(seed: int, rate: float = 0.2) -> FaultPlan:
    """A ready-made plan covering every site with mixed fault kinds.

    The default schedule for chaos tests: every production injection
    site misbehaves at ``rate``, with short hangs so deadline paths
    are exercised without slowing the suite down.
    """
    return FaultPlan(
        seed=seed,
        name=f"chaos-{seed}",
        rules=(
            FaultRule(SITE_CACHE_WRITE, TORN_WRITE, rate=rate),
            FaultRule(SITE_CACHE_WRITE, CORRUPT_BYTES, rate=rate),
            FaultRule(SITE_CACHE_WRITE, ENOSPC, rate=rate / 2),
            FaultRule(SITE_GCTD, CRASH, rate=rate),
            FaultRule(
                SITE_GCTD, HANG, rate=rate / 2, delay_seconds=0.02
            ),
            FaultRule(SITE_POOL_WORKER, WORKER_DEATH, rate=rate / 2),
            FaultRule(
                SITE_POOL_WORKER, HANG, rate=rate / 2,
                delay_seconds=0.02,
            ),
            FaultRule(SITE_HTTP_RESPONSE, DROP_CONNECTION, rate=rate / 2),
            FaultRule(
                SITE_HTTP_RESPONSE, DELAY, rate=rate / 2,
                delay_seconds=0.02,
            ),
        ),
    )
