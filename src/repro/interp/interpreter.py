"""A tree-walking MATLAB interpreter (the MATLAB 6.1 stand-in).

Evaluates the *AST* directly — independent of the IR pipeline — so it
doubles as the semantic oracle for differential testing: interpreter
output must equal both executors' output and the compiled C's output.

Timing follows an interpretive cost model: per-node dispatch and
name-table lookups on top of the same library-call costs mcc pays
(MATLAB's built-in operations and mcc's library are the same code, as
the paper notes).  Memory is modelled like mcc's boxes but with the
interpreter process's much larger image.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frontend import ast_nodes as ast
from repro.frontend.source import MatlabError
from repro.memsim.costs import CLOCK_HZ, CostModel, DEFAULT_COSTS
from repro.memsim.meter import MemoryReport
from repro.runtime import ops
from repro.runtime.builtins import RuntimeContext, call_builtin
from repro.runtime.errors import MatlabRuntimeError
from repro.runtime.indexing import COLON, subsasgn, subsref
from repro.runtime.marray import MArray
from repro.runtime.names import BUILTIN_NAMES, CONSTANT_BUILTINS

#: a -nojvm MATLAB 6.1 process image
INTERP_IMAGE_BYTES = 11 * 1024 * 1024

from repro.vm.work import _TRANSCENDENTALS  # shared cost classification


class InterpreterError(MatlabError):
    pass


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    pass


_BINOP_FNS = {
    "+": ops.add,
    "-": ops.sub,
    "*": ops.mul,
    ".*": ops.elmul,
    "/": ops.div,
    "./": ops.eldiv,
    "\\": ops.ldiv,
    ".\\": ops.elldiv,
    "^": ops.pow_,
    ".^": ops.elpow,
    "<": ops.lt,
    "<=": ops.le,
    ">": ops.gt,
    ">=": ops.ge,
    "==": ops.eq,
    "~=": ops.ne,
    "&": ops.and_,
    "|": ops.or_,
}

_CONSTANTS = {
    "pi": np.pi,
    "eps": 2.220446049250313e-16,
    "Inf": np.inf,
    "inf": np.inf,
    "NaN": np.nan,
    "nan": np.nan,
}


@dataclass(slots=True)
class InterpResult:
    output: str
    report: MemoryReport
    steps: int
    env: dict[str, MArray] = field(default_factory=dict)


class Interpreter:
    def __init__(
        self,
        program: ast.Program,
        ctx: RuntimeContext | None = None,
        costs: CostModel = DEFAULT_COSTS,
        max_steps: int = 20_000_000,
    ) -> None:
        self.program = program
        self.ctx = ctx or RuntimeContext()
        self.costs = costs
        self.max_steps = max_steps
        self.clock = 0.0
        self.steps = 0
        self._heap_live = 0.0
        self._heap_weighted = 0.0
        self._last_sample = 0.0
        self._call_depth = 0

    # ------------------------------------------------------------------

    def run(self) -> InterpResult:
        entry = self.program.entry_function()
        scope = self._call_function(entry, [])
        seconds = self.clock / CLOCK_HZ
        avg_heap_kb = (
            self._heap_weighted / self.clock / 1024.0 if self.clock else 0.0
        )
        report = MemoryReport(
            avg_heap_kb=avg_heap_kb,
            avg_dynamic_kb=avg_heap_kb + 16.0,
            avg_virtual_kb=INTERP_IMAGE_BYTES / 1024.0 + avg_heap_kb,
            avg_resident_kb=INTERP_IMAGE_BYTES / 1024.0 * 0.6 + avg_heap_kb,
            execution_seconds=seconds,
        )
        return InterpResult(
            output=self.ctx.captured(),
            report=report,
            steps=self.steps,
            env=scope,
        )

    def _tick(self, cycles: float, heap_delta: float = 0.0) -> None:
        self._heap_weighted += self._heap_live * cycles
        self.clock += cycles
        self._heap_live = max(0.0, self._heap_live + heap_delta)
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError("interpreter step limit exceeded")

    # -- functions -------------------------------------------------------

    def _call_function(
        self, func: ast.FunctionDef, args: list[MArray]
    ) -> dict[str, MArray]:
        if self._call_depth > 128:
            raise InterpreterError("call depth limit exceeded")
        self._call_depth += 1
        scope: dict[str, MArray] = {}
        for param, arg in zip(func.inputs, args):
            scope[param] = arg
        try:
            self._exec_block(func.body, scope)
        except _ReturnSignal:
            pass
        finally:
            self._call_depth -= 1
        return scope

    def _call_user(self, name: str, args: list[MArray],
                   nargout: int) -> list[MArray]:
        func = self.program.functions[name]
        scope = self._call_function(func, args)
        outs = []
        for out_name in func.outputs[: max(1, nargout)]:
            if out_name not in scope:
                raise InterpreterError(
                    f"output {out_name!r} of {name!r} never assigned"
                )
            outs.append(scope[out_name])
        return outs

    # -- statements ------------------------------------------------------

    def _exec_block(self, stmts: list[ast.Stmt], scope) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, scope)

    def _exec_stmt(self, stmt: ast.Stmt, scope) -> None:
        self._tick(self.costs.interp_dispatch)
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, scope)
        elif isinstance(stmt, ast.MultiAssign):
            self._exec_multi_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            value = self._eval(stmt.value, scope, statement=True)
            if value is not None:
                scope["ans"] = value
                if stmt.display:
                    self._display("ans", value)
        elif isinstance(stmt, ast.If):
            for cond, body in stmt.branches:
                if self._eval(cond, scope).is_true():
                    self._exec_block(body, scope)
                    return
            self._exec_block(stmt.orelse, scope)
        elif isinstance(stmt, ast.While):
            while self._eval(stmt.condition, scope).is_true():
                try:
                    self._exec_block(stmt.body, scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.For):
            iterable = self._eval(stmt.iterable, scope)
            for value in iterable.flat():
                scope[stmt.var] = MArray.from_scalar(complex(value))
                try:
                    self._exec_block(stmt.body, scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal()
        else:
            raise InterpreterError(
                f"unsupported statement {type(stmt).__name__}"
            )

    def _display(self, name: str, value: MArray) -> None:
        self.ctx.write(f"{name} =\n")
        call_builtin(self.ctx, "disp", [value])

    def _exec_assign(self, stmt: ast.Assign, scope) -> None:
        value = self._eval(stmt.value, scope)
        target = stmt.target
        if isinstance(target, ast.Ident):
            scope[target.name] = value
            self._tick(
                self.costs.interp_name_lookup,
                heap_delta=value.byte_size(),
            )
            if stmt.display:
                self._display(target.name, value)
            return
        assert isinstance(target, ast.Apply)
        assert isinstance(target.func, ast.Ident)
        name = target.func.name
        base = scope.get(name, MArray.empty())
        subs = self._eval_subscripts(target.args, base, scope)
        updated = subsasgn(base, value, subs)
        scope[name] = updated
        self._tick(
            self.costs.library_call,
            heap_delta=updated.byte_size() - base.byte_size(),
        )
        if stmt.display:
            self._display(name, updated)

    def _exec_multi_assign(self, stmt: ast.MultiAssign, scope) -> None:
        value = stmt.value
        assert isinstance(value, ast.Apply)
        assert isinstance(value.func, ast.Ident)
        fname = value.func.name
        args = [self._eval(a, scope) for a in value.args]
        nargout = len(stmt.targets)
        if fname in self.program.functions:
            results = self._call_user(fname, args, nargout)
        else:
            results = call_builtin(self.ctx, fname, args, nargout)
        self._tick(self.costs.library_call * max(1, nargout))
        for target, result in zip(stmt.targets, results):
            assert isinstance(target, ast.Ident)
            scope[target.name] = result
            if stmt.display:
                self._display(target.name, result)

    # -- expressions ----------------------------------------------------

    def _eval(self, expr: ast.Expr, scope, statement: bool = False):
        self._tick(self.costs.interp_dispatch * 0.1)
        if isinstance(expr, ast.Num):
            value = 1j * expr.value if expr.is_imag else expr.value
            return MArray.from_scalar(value)
        if isinstance(expr, ast.Str):
            return MArray.from_string(expr.value)
        if isinstance(expr, ast.Ident):
            return self._eval_ident(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, scope)
            self._tick(self.costs.library_call + operand.numel)
            return ops.neg(operand) if expr.op == "-" else ops.not_(operand)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binop(expr, scope)
        if isinstance(expr, ast.Transpose):
            operand = self._eval(expr.operand, scope)
            self._tick(self.costs.library_call + operand.numel)
            return ops.transpose(operand, expr.conjugate)
        if isinstance(expr, ast.Range):
            start = self._eval(expr.start, scope)
            step = (
                self._eval(expr.step, scope)
                if expr.step is not None
                else MArray.from_scalar(1.0)
            )
            stop = self._eval(expr.stop, scope)
            result = ops.make_range(start, step, stop)
            self._tick(self.costs.library_call + result.numel)
            return result
        if isinstance(expr, ast.MatrixLit):
            return self._eval_matrix(expr, scope)
        if isinstance(expr, ast.Apply):
            return self._eval_apply(expr, scope, statement)
        raise InterpreterError(
            f"unsupported expression {type(expr).__name__}"
        )

    def _eval_ident(self, expr: ast.Ident, scope) -> MArray:
        name = expr.name
        self._tick(self.costs.interp_name_lookup)
        if name in scope:
            return scope[name]
        if name in _CONSTANTS:
            return MArray.from_scalar(_CONSTANTS[name])
        if name in ("i", "j"):
            return MArray.from_scalar(1j)
        if name in self.program.functions:
            return self._call_user(name, [], 1)[0]
        if name in BUILTIN_NAMES and name not in CONSTANT_BUILTINS:
            return call_builtin(self.ctx, name, [], 1)[0]
        raise MatlabRuntimeError(f"undefined name {name!r}")

    def _eval_binop(self, expr: ast.BinaryOp, scope) -> MArray:
        if expr.op == "&&":
            left = self._eval(expr.left, scope)
            if not left.is_true():
                return MArray.from_scalar(False)
            return MArray.from_scalar(self._eval(expr.right, scope).is_true())
        if expr.op == "||":
            left = self._eval(expr.left, scope)
            if left.is_true():
                return MArray.from_scalar(True)
            return MArray.from_scalar(self._eval(expr.right, scope).is_true())
        left = self._eval(expr.left, scope)
        right = self._eval(expr.right, scope)
        result = _BINOP_FNS[expr.op](left, right)
        per_element = 150.0 if expr.op in ("^", ".^") else 1.0
        self._tick(
            self.costs.library_call
            + self.costs.type_check * 2
            + self.costs.element_op * per_element * result.numel,
            heap_delta=result.byte_size(),
        )
        self._tick(0.0, heap_delta=-result.byte_size() * 0.5)
        return result

    def _eval_matrix(self, expr: ast.MatrixLit, scope) -> MArray:
        if not expr.rows:
            return MArray.empty()
        rows = []
        for row in expr.rows:
            parts = [self._eval(e, scope) for e in row]
            rows.append(ops.horzcat(parts) if len(parts) > 1 else parts[0])
        result = ops.vertcat(rows) if len(rows) > 1 else rows[0]
        self._tick(self.costs.library_call + result.numel)
        return result

    def _eval_apply(self, expr: ast.Apply, scope, statement: bool):
        assert isinstance(expr.func, ast.Ident)
        name = expr.func.name
        if name in scope:
            base = scope[name]
            subs = self._eval_subscripts(expr.args, base, scope)
            result = subsref(base, subs)
            self._tick(
                self.costs.library_call
                + self.costs.type_check
                + result.numel,
                heap_delta=result.byte_size() * 0.5,
            )
            return result
        args = [self._eval(a, scope) for a in expr.args]
        self._tick(self.costs.library_call + self.costs.type_check)
        if name in self.program.functions:
            results = self._call_user(name, args, 1)
            return results[0] if results else None
        if name in BUILTIN_NAMES:
            results = call_builtin(self.ctx, name, args, 1)
            result = results[0] if results else None
            elems = max(
                (a.numel for a in args), default=1
            )
            if result is not None:
                elems = max(elems, result.numel)
            per_element = 150.0 if name in _TRANSCENDENTALS else 1.0
            self._tick(
                self.costs.element_op * per_element * elems,
                heap_delta=(result.byte_size() if result is not None else 0),
            )
            return result
        raise MatlabRuntimeError(f"unknown function {name!r}")

    def _eval_subscripts(self, arg_exprs, base: MArray, scope) -> list:
        subs = []
        count = len(arg_exprs)
        for position, arg in enumerate(arg_exprs, start=1):
            if isinstance(arg, ast.ColonAll):
                subs.append(COLON)
            else:
                subs.append(
                    self._eval_with_end(arg, base, position, count, scope)
                )
        return subs

    def _eval_with_end(self, expr, base, position, count, scope):
        """Evaluate a subscript, resolving `end` against the base."""
        if isinstance(expr, ast.EndMarker):
            if count == 1:
                return MArray.from_scalar(base.numel)
            shape = base.shape
            extent = shape[position - 1] if position <= len(shape) else 1
            return MArray.from_scalar(extent)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval_with_end(
                expr.left, base, position, count, scope
            )
            right = self._eval_with_end(
                expr.right, base, position, count, scope
            )
            return _BINOP_FNS[expr.op](left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval_with_end(
                expr.operand, base, position, count, scope
            )
            return ops.neg(operand) if expr.op == "-" else ops.not_(operand)
        if isinstance(expr, ast.Range):
            start = self._eval_with_end(
                expr.start, base, position, count, scope
            )
            step = (
                self._eval_with_end(expr.step, base, position, count, scope)
                if expr.step is not None
                else MArray.from_scalar(1.0)
            )
            stop = self._eval_with_end(
                expr.stop, base, position, count, scope
            )
            return ops.make_range(start, step, stop)
        return self._eval(expr, scope)


def interpret(
    program: ast.Program,
    ctx: RuntimeContext | None = None,
    max_steps: int = 20_000_000,
) -> InterpResult:
    """Run a parsed program under the tree-walking interpreter."""
    return Interpreter(program, ctx, max_steps=max_steps).run()
