"""Tree-walking MATLAB interpreter (semantic oracle, Figure 5's intrp)."""

from repro.interp.interpreter import (
    InterpResult,
    Interpreter,
    InterpreterError,
    interpret,
)

__all__ = ["InterpResult", "Interpreter", "InterpreterError", "interpret"]
