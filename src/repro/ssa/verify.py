"""SSA well-formedness checks used by the test suite and pass manager."""

from __future__ import annotations

from repro.ir.cfg import IRError, IRFunction
from repro.ir.dominance import compute_dominators
from repro.ir.instr import Branch, Var


def verify_ssa(func: IRFunction) -> None:
    """Raise :class:`IRError` if ``func`` is not in valid SSA form.

    Checks: single definition per name; every φ has one operand per
    predecessor; every non-φ use is dominated by its definition; φ
    operands are defined on (i.e. dominate the end of) their incoming
    edge's predecessor.
    """
    func.verify()
    dom = compute_dominators(func)
    preds = func.predecessors()

    # Single definition; record def sites.
    def_site: dict[str, tuple[int, int]] = {}
    for param in func.params:
        def_site[param] = (func.entry, -1)
    for bid in dom.order:
        for pos, instr in enumerate(func.blocks[bid].instrs):
            for res in instr.results:
                if res in def_site:
                    raise IRError(f"SSA: {res} defined more than once")
                def_site[res] = (bid, pos)

    def check_use(name: str, use_block: int, use_pos: int) -> None:
        if name not in def_site:
            raise IRError(f"SSA: use of undefined name {name}")
        def_block, def_pos = def_site[name]
        if def_block == use_block:
            if def_pos >= use_pos:
                raise IRError(
                    f"SSA: {name} used at B{use_block}:{use_pos} before "
                    f"its definition at position {def_pos}"
                )
        elif not dom.dominates(def_block, use_block):
            raise IRError(
                f"SSA: definition of {name} (B{def_block}) does not "
                f"dominate its use (B{use_block})"
            )

    for bid in dom.order:
        block = func.blocks[bid]
        for pos, instr in enumerate(block.instrs):
            if instr.is_phi:
                assert instr.phi_blocks is not None
                if sorted(instr.phi_blocks) != sorted(preds[bid]):
                    raise IRError(
                        f"SSA: φ in B{bid} operands {instr.phi_blocks} do "
                        f"not match predecessors {preds[bid]}"
                    )
                for arg, pred in zip(instr.args, instr.phi_blocks):
                    if isinstance(arg, Var):
                        if arg.name not in def_site:
                            raise IRError(
                                f"SSA: φ operand {arg.name} undefined"
                            )
                        def_block, _ = def_site[arg.name]
                        if not dom.dominates(def_block, pred):
                            raise IRError(
                                f"SSA: φ operand {arg.name} (def in "
                                f"B{def_block}) not available on edge "
                                f"B{pred}→B{bid}"
                            )
            else:
                for arg in instr.args:
                    if isinstance(arg, Var):
                        check_use(arg.name, bid, pos)
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.condition, Var):
            check_use(term.condition.name, bid, len(block.instrs))
