"""SSA inversion: translate out of SSA by reintroducing copies.

The paper (§2.2.1) leans on this step: GCTD's Phase 1 coalesces each φ
result with its operands whenever they don't interfere, so that the
copies inserted here become *identity assignments* (same color ⇒ same
storage) that code generation drops.

The implementation handles the two classic correctness traps:

* **critical edges** are split so a copy inserted for edge P→B cannot
  execute on other paths out of P;
* **parallel-copy semantics** — all φs of a block read their operands
  simultaneously, so the per-edge copy set is sequentialized with a
  dependency-respecting order, breaking cycles with a temporary (the
  "swap problem").
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.cfg import Block, IRFunction
from repro.ir.instr import Branch, Instr, Jump, Operand, Var


def split_critical_edges(func: IRFunction) -> int:
    """Split edges whose source has >1 successor and target >1 preds."""
    preds = func.predecessors()
    split_count = 0
    for bid in list(func.blocks):
        block = func.blocks[bid]
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        succs = term.successors()
        for succ in succs:
            if len(preds[succ]) <= 1:
                continue
            middle = func.new_block()
            middle.terminator = Jump(succ)
            if term.true_target == succ:
                term.true_target = middle.id
            if term.false_target == succ:
                term.false_target = middle.id
            # Retarget the φs' incoming-block records.
            for phi in func.blocks[succ].phis():
                assert phi.phi_blocks is not None
                phi.phi_blocks = [
                    middle.id if pb == bid else pb for pb in phi.phi_blocks
                ]
            split_count += 1
            preds = func.predecessors()
    return split_count


def _sequentialize_parallel_copies(
    copies: list[tuple[str, Operand]], fresh_temp
) -> list[tuple[str, Operand]]:
    """Order (dst, src) parallel copies; break cycles via a temporary.

    Standard algorithm: repeatedly emit a copy whose destination is not
    the source of any pending copy; if none exists, the remaining copies
    form one or more cycles — rotate one open with a temp.
    """
    pending = [
        (dst, src) for dst, src in copies
        if not (isinstance(src, Var) and src.name == dst)
    ]
    ordered: list[tuple[str, Operand]] = []
    while pending:
        src_names = {
            s.name for _, s in pending if isinstance(s, Var)
        }
        emitted = False
        for i, (dst, src) in enumerate(pending):
            if dst not in src_names:
                ordered.append((dst, src))
                pending.pop(i)
                emitted = True
                break
        if emitted:
            continue
        # All pending destinations are also sources: a cycle.  Save one
        # destination into a temp and redirect its readers.
        dst, src = pending.pop(0)
        temp = fresh_temp()
        ordered.append((temp, Var(dst)))
        pending = [
            (d, Var(temp) if isinstance(s, Var) and s.name == dst else s)
            for d, s in pending
        ]
        ordered.append((dst, src))
    return ordered


def invert_ssa(func: IRFunction) -> IRFunction:
    """Replace every φ with copies on the incoming edges (in place).

    After this pass the function is no longer in SSA form (names may be
    written on several paths), but it is executable IR: GCTD colors are
    attached to SSA names, which are preserved as-is.
    """
    split_critical_edges(func)

    # Collect per-edge parallel copy sets: (pred_block, succ_block)
    edge_copies: dict[int, list[tuple[str, Operand]]] = defaultdict(list)
    for block in func.blocks.values():
        for phi in block.phis():
            assert phi.phi_blocks is not None
            for arg, pred in zip(phi.args, phi.phi_blocks):
                edge_copies[pred].append((phi.results[0], arg))
        block.instrs = block.non_phis()

    for pred_id, copies in edge_copies.items():
        ordered = _sequentialize_parallel_copies(copies, func.new_temp)
        pred = func.blocks[pred_id]
        for dst, src in ordered:
            pred.append(Instr(op="copy", results=[dst], args=[src]))
    return func


def fold_identity_copies(
    func: IRFunction, same_storage
) -> int:
    """Drop ``x = y`` copies where GCTD bound x and y to one storage.

    ``same_storage(a, b)`` is a predicate (typically: same color/group
    under the allocation plan).  Returns the number of removed copies.
    This realizes the paper's "trivially removable identity assignment".
    """
    removed = 0
    for block in func.blocks.values():
        kept: list[Instr] = []
        for instr in block.instrs:
            if (
                instr.op == "copy"
                and len(instr.args) == 1
                and isinstance(instr.args[0], Var)
                and same_storage(instr.results[0], instr.args[0].name)
            ):
                removed += 1
                continue
            kept.append(instr)
        block.instrs = kept
    return removed
