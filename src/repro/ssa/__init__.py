"""SSA construction, inversion, and verification."""

from repro.ssa.construct import base_name, construct_ssa
from repro.ssa.invert import (
    fold_identity_copies,
    invert_ssa,
    split_critical_edges,
)
from repro.ssa.verify import verify_ssa

__all__ = [
    "base_name",
    "construct_ssa",
    "fold_identity_copies",
    "invert_ssa",
    "split_critical_edges",
    "verify_ssa",
]
