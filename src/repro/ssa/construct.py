"""SSA construction (Cytron et al., with the semi-pruned refinement).

φ-functions are placed at the iterated dominance frontier of each
variable's definition blocks, restricted to *global* names (names live
across block boundaries) so single-block temporaries — which SO-form
lowering produces in large numbers — don't generate junk φs.

SSA names use the ``base#version`` scheme; ``#`` cannot occur in MATLAB
identifiers, so SSA names can never collide with source names.  Uses
reached by no definition (a run-time error in MATLAB) are given an
explicit ``undef`` definition in the entry block so that every later
pass can assume def-before-use.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.cfg import IRFunction
from repro.ir.dominance import DominatorInfo, compute_dominators
from repro.ir.instr import Branch, Instr, Var


def base_name(ssa_name: str) -> str:
    """Strip the SSA version: ``x#3`` → ``x``."""
    return ssa_name.split("#", 1)[0]


def _global_names(func: IRFunction) -> tuple[set[str], dict[str, set[int]]]:
    """Names used in a block before any local def, plus def-site blocks."""
    globals_: set[str] = set()
    def_blocks: dict[str, set[int]] = defaultdict(set)
    for bid in func.block_order():
        block = func.blocks[bid]
        killed: set[str] = set()
        for instr in block.instrs:
            for used in instr.used_vars():
                if used not in killed:
                    globals_.add(used)
            for res in instr.results:
                killed.add(res)
                def_blocks[res].add(bid)
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.condition, Var):
            if term.condition.name not in killed:
                globals_.add(term.condition.name)
    for param in func.params:
        def_blocks[param].add(func.entry)
    return globals_, def_blocks


class SSABuilder:
    def __init__(self, func: IRFunction):
        self._func = func
        self._dom: DominatorInfo = compute_dominators(func)
        self._counters: dict[str, int] = defaultdict(int)
        self._stacks: dict[str, list[str]] = defaultdict(list)
        self._undef_instrs: list[Instr] = []

    def build(self) -> IRFunction:
        func = self._func
        globals_, def_blocks = _global_names(func)
        preds = func.predecessors()

        # --- φ insertion at iterated dominance frontiers ---
        for name in sorted(globals_):
            sites = def_blocks.get(name, set())
            if not sites:
                continue  # used but never defined: handled during rename
            worklist = list(sites)
            has_phi: set[int] = set()
            while worklist:
                bid = worklist.pop()
                for fb in self._dom.frontier.get(bid, ()):
                    if fb in has_phi:
                        continue
                    has_phi.add(fb)
                    block = func.blocks[fb]
                    phi = Instr(
                        op="phi",
                        results=[name],
                        args=[Var(name) for _ in preds[fb]],
                        phi_blocks=list(preds[fb]),
                    )
                    block.instrs.insert(0, phi)
                    if fb not in sites:
                        sites.add(fb)
                        worklist.append(fb)

        # --- renaming over the dominator tree ---
        for param in func.params:
            self._stacks[param].append(self._new_version(param))
        func.params = [self._stacks[p][-1] for p in list(func.params)]
        self._rename_block(func.entry)

        # Materialize undef definitions in the entry block header.
        if self._undef_instrs:
            entry = func.entry_block()
            insert_at = len(entry.phis())
            for instr in self._undef_instrs:
                entry.instrs.insert(insert_at, instr)
        return func

    # ------------------------------------------------------------------

    def _new_version(self, name: str) -> str:
        self._counters[name] += 1
        return f"{name}#{self._counters[name]}"

    def _current(self, name: str) -> str:
        stack = self._stacks[name]
        if not stack:
            # Use before any definition: synthesize an undef def that
            # sticks for the rest of the function.
            version = self._new_version(name)
            stack.append(version)
            self._undef_instrs.append(
                Instr(op="undef", results=[version], args=[])
            )
        return stack[-1]

    def _rename_block(self, root: int) -> None:
        """Iterative dominator-tree walk (avoids Python recursion limits)."""
        stack: list[tuple[int, list[str], int]] = [(root, [], 0)]
        self._enter_block(root, stack[-1][1])
        while stack:
            bid, pushed, child_idx = stack[-1]
            children = self._dom.children.get(bid, [])
            if child_idx < len(children):
                stack[-1] = (bid, pushed, child_idx + 1)
                child = children[child_idx]
                frame: tuple[int, list[str], int] = (child, [], 0)
                stack.append(frame)
                self._enter_block(child, frame[1])
            else:
                for name in pushed:
                    self._stacks[name].pop()
                stack.pop()

    def _enter_block(self, bid: int, pushed: list[str]) -> None:
        func = self._func
        block = func.blocks[bid]

        for instr in block.instrs:
            if not instr.is_phi:
                instr.args = [
                    Var(self._current(a.name)) if isinstance(a, Var) else a
                    for a in instr.args
                ]
            new_results = []
            for res in instr.results:
                version = self._new_version(res)
                self._stacks[res].append(version)
                pushed.append(res)
                new_results.append(version)
            instr.results = new_results

        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.condition, Var):
            term.condition = Var(self._current(term.condition.name))

        # Fill φ operands in successors for the edge from this block.
        for succ in block.successors():
            for phi in func.blocks[succ].phis():
                assert phi.phi_blocks is not None
                for i, pred in enumerate(phi.phi_blocks):
                    if pred == bid:
                        arg = phi.args[i]
                        if isinstance(arg, Var) and "#" not in arg.name:
                            phi.args[i] = Var(self._current(arg.name))


def construct_ssa(func: IRFunction) -> IRFunction:
    """Convert ``func`` to SSA form in place (returns it for chaining)."""
    return SSABuilder(func).build()
