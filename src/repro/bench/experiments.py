"""Regeneration of every table and figure in the paper's evaluation.

One :func:`collect` pass per benchmark produces everything the paper
reports; the ``table*_rows``/``fig*_rows`` functions then slice it into
the exact rows/series of Tables 1–2 and Figures 2–6.  ``format_rows``
renders the same ASCII layout the harness prints.

Results are cached per process (the full suite takes tens of seconds),
so the per-figure benchmark files can share one collection pass.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass

from repro.bench.suite import (
    BENCHMARK_NAMES,
    SUITE,
    compile_benchmark,
    count_lines,
    load_sources,
)
from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.core.gctd import GCTDOptions
from repro.runtime.builtins import RuntimeContext

_SEED = 20030609


@dataclass(slots=True)
class BenchRecord:
    """Everything measured for one benchmark."""

    name: str
    compilation: object
    mat2c: object            # ExecutionResult (GCTD on)
    mcc: object              # ExecutionResult (mcc model)
    interp: object           # InterpResult
    mat2c_nogctd: object     # ExecutionResult (GCTD off)

    @property
    def speedup_vs_mcc(self) -> float:
        return (
            self.mcc.report.execution_seconds
            / self.mat2c.report.execution_seconds
        )

    @property
    def gctd_speedup(self) -> float:
        return (
            self.mat2c_nogctd.report.execution_seconds
            / self.mat2c.report.execution_seconds
        )


_RECORDS: dict[str, BenchRecord] = {}

#: Side-artifact name for a cached measurement record (see
#: :func:`collect_record`); keyed next to the compilation entry, so a
#: source/option/pipeline-version change invalidates it too.
_RECORD_EXTRA = f"bench-record-seed{_SEED}.pkl"


def _nogctd_options() -> CompilerOptions:
    return CompilerOptions(gctd=GCTDOptions(enabled=False))


def _measure(
    name: str, compilation=None, nogctd_compilation=None
) -> BenchRecord:
    """Run one benchmark under all four models and cross-check outputs."""
    if compilation is None:
        compilation = compile_benchmark(name)
    if nogctd_compilation is None:
        nogctd_compilation = compile_benchmark(
            name, options=_nogctd_options()
        )
    mat2c = compilation.run_mat2c(RuntimeContext(seed=_SEED))
    mcc = compilation.run_mcc(RuntimeContext(seed=_SEED))
    interp = compilation.run_interpreter(RuntimeContext(seed=_SEED))
    mat2c_off = nogctd_compilation.run_mat2c(RuntimeContext(seed=_SEED))
    if mat2c.output != mcc.output or mat2c.output != interp.output:
        raise AssertionError(f"{name}: execution models disagree")
    if mat2c.output != mat2c_off.output:
        raise AssertionError(f"{name}: GCTD changed program output")
    return BenchRecord(
        name=name,
        compilation=compilation,
        mat2c=mat2c,
        mcc=mcc,
        interp=interp,
        mat2c_nogctd=mat2c_off,
    )


def collect(name: str) -> BenchRecord:
    """Measure one benchmark, memoized per process."""
    record = _RECORDS.get(name)
    if record is None:
        record = _RECORDS[name] = _measure(name)
    return record


def install_records(records: dict[str, BenchRecord]) -> None:
    """Seed the per-process memo (e.g. from a parallel batch sweep)."""
    _RECORDS.update(records)


def _collect_worker(name: str) -> tuple[str, BenchRecord]:
    """Pool entry point for the parallel sweep (must stay top-level)."""
    return name, _measure(name)


def collect_all(jobs: int | None = None) -> dict[str, BenchRecord]:
    """Measure the whole suite, fanning out over a process pool.

    ``jobs=1`` forces the old serial sweep; anything else saturates
    available cores via the service layer's batch machinery (degrading
    to serial if the pool cannot start).  Results are deterministic
    either way — every model run is seeded.
    """
    missing = [name for name in BENCHMARK_NAMES if name not in _RECORDS]
    if jobs != 1 and len(missing) > 1:
        from repro.service.driver import parallel_map

        outcomes, _executor = parallel_map(_collect_worker, missing, jobs)
        install_records(dict(outcomes))
    return {name: collect(name) for name in BENCHMARK_NAMES}


def collect_record(
    name: str, cache=None, tracer=None
) -> tuple[BenchRecord, dict]:
    """Measure one benchmark through the artifact cache.

    Compilations go through ``cache`` (so identical sources/options
    hit), and the full measurement record is memoized as a pickled
    side artifact next to the compilation entry, keyed by the request
    fingerprint and the run seed.  Returns ``(record, info)`` where
    ``info`` carries timing/caching metadata for the bench report.
    """
    sources = load_sources(name)
    entry = f"{name}_drv"
    info: dict = {"name": name, "cache_hit": False, "record_cached": False}
    fingerprint = None
    if cache is not None:
        fingerprint = cache.fingerprint(sources, entry, CompilerOptions())
        info["fingerprint"] = fingerprint
        blob = cache.load_extra(fingerprint, _RECORD_EXTRA)
        if blob is not None:
            try:
                record = pickle.loads(blob)
            except Exception:
                record = None  # corrupted side artifact: remeasure
            if record is not None:
                info["cache_hit"] = True
                info["record_cached"] = True
                info["compile_seconds"] = 0.0
                info["measure_seconds"] = 0.0
                return record, info

    start = time.perf_counter()
    compilation = compile_program(
        sources, entry, CompilerOptions(), tracer=tracer, cache=cache
    )
    nogctd = compile_program(
        sources, entry, _nogctd_options(), tracer=tracer, cache=cache
    )
    compiled = time.perf_counter()
    record = _measure(name, compilation, nogctd)
    measured = time.perf_counter()
    info["compile_seconds"] = compiled - start
    info["measure_seconds"] = measured - compiled
    if tracer is not None:
        info["cache_hit"] = tracer.cache_hits > 0
    if cache is not None and fingerprint is not None:
        cache.store_extra(
            fingerprint,
            _RECORD_EXTRA,
            pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL),
        )
    return record, info


def _record_worker(payload: dict) -> tuple[BenchRecord | None, dict]:
    """Pool entry point for the bench command's cached sweep."""
    from repro.service.cache import ArtifactCache
    from repro.service.telemetry import Tracer

    cache = (
        ArtifactCache(payload["cache_root"])
        if payload.get("cache_root")
        else None
    )
    tracer = (
        Tracer(label=payload["name"]) if payload.get("trace") else None
    )
    try:
        record, info = collect_record(payload["name"], cache, tracer)
    except Exception as exc:
        # Per-benchmark failures stay per-benchmark: the sweep
        # completes and `repro bench` reports them with a nonzero
        # exit code instead of sinking the whole run.
        record = None
        info = {
            "name": payload["name"],
            "cache_hit": False,
            "record_cached": False,
            "error": f"{type(exc).__name__}: {exc}",
        }
    if tracer is not None:
        info["traces"] = [tracer.to_dict()]
    return record, info


def collect_records(
    names=None,
    cache_root: str | None = None,
    jobs: int | None = None,
    trace: bool = False,
):
    """Cached, parallel measurement sweep for ``python -m repro bench``.

    Returns ``(records, infos, executor_label)``.
    """
    from repro.service.driver import parallel_map

    if names is None:
        names = BENCHMARK_NAMES
    payloads = [
        {"name": name, "cache_root": cache_root or "", "trace": trace}
        for name in names
    ]
    outcomes, executor = parallel_map(_record_worker, payloads, jobs)
    records = {
        info["name"]: record for record, info in outcomes if record
    }
    infos = [info for _record, info in outcomes]
    return records, infos, executor


# --------------------------------------------------------------------------
# Table 1 — benchmark suite description
# --------------------------------------------------------------------------


def table1_rows() -> list[dict]:
    rows = []
    for name in BENCHMARK_NAMES:
        info = SUITE[name]
        sources = load_sources(name)
        rows.append(
            {
                "benchmark": name,
                "synopsis": info.synopsis,
                "origin": info.origin,
                "m_files": len(sources),
                "lines": count_lines(sources),
                "3d": "yes" if info.three_dimensional else "",
            }
        )
    return rows


# --------------------------------------------------------------------------
# Table 2 — array storage coalescing reductions
# --------------------------------------------------------------------------


def table2_rows() -> list[dict]:
    rows = []
    for name in BENCHMARK_NAMES:
        stats = collect(name).compilation.report
        paper_s, paper_d = SUITE[name].paper_reduction
        rows.append(
            {
                "benchmark": name,
                "static/dynamic reduction": (
                    f"{stats.static_subsumed}/{stats.dynamic_subsumed}"
                ),
                "original variable count": stats.original_variable_count,
                "storage reduction (KB)": round(
                    stats.storage_reduction_kb, 2
                ),
                "paper s/d": f"{paper_s}/{paper_d}",
                "paper KB": SUITE[name].paper_storage_kb,
            }
        )
    return rows


# --------------------------------------------------------------------------
# Figure 2 — average stack and stack+heap levels (+ kcore-min)
# --------------------------------------------------------------------------


def fig2_rows() -> list[dict]:
    rows = []
    for name in BENCHMARK_NAMES:
        record = collect(name)
        m, c = record.mat2c.report, record.mcc.report
        reduction = (
            (c.avg_dynamic_kb - m.avg_dynamic_kb) / m.avg_dynamic_kb * 100
            if m.avg_dynamic_kb > 0
            else 0.0
        )
        rows.append(
            {
                "benchmark": name,
                "mat2c stack (KB)": round(m.avg_stack_kb, 1),
                "mcc stack (KB)": round(c.avg_stack_kb, 1),
                "mat2c stack+heap (KB)": round(m.avg_dynamic_kb, 1),
                "mcc stack+heap (KB)": round(c.avg_dynamic_kb, 1),
                "dynamic reduction %": round(reduction, 1),
                "mat2c kcore-min": f"{m.kcore_min:.3g}",
                "mcc kcore-min": f"{c.kcore_min:.3g}",
            }
        )
    return rows


# --------------------------------------------------------------------------
# Figure 3 — average virtual-memory levels
# --------------------------------------------------------------------------


def fig3_rows() -> list[dict]:
    rows = []
    for name in BENCHMARK_NAMES:
        record = collect(name)
        m, c = record.mat2c.report, record.mcc.report
        saving = (
            (c.avg_virtual_kb - m.avg_virtual_kb) / m.avg_virtual_kb * 100
            if m.avg_virtual_kb
            else 0.0
        )
        rows.append(
            {
                "benchmark": name,
                "mat2c VM (KB)": round(m.avg_virtual_kb, 1),
                "mcc VM (KB)": round(c.avg_virtual_kb, 1),
                "VM saving %": round(saving, 1),
            }
        )
    return rows


# --------------------------------------------------------------------------
# Figure 4 — average resident-set sizes
# --------------------------------------------------------------------------


def fig4_rows() -> list[dict]:
    rows = []
    for name in BENCHMARK_NAMES:
        record = collect(name)
        m, c = record.mat2c.report, record.mcc.report
        saving = (
            (c.avg_resident_kb - m.avg_resident_kb)
            / m.avg_resident_kb
            * 100
            if m.avg_resident_kb
            else 0.0
        )
        rows.append(
            {
                "benchmark": name,
                "mat2c RSS (KB)": round(m.avg_resident_kb, 1),
                "mcc RSS (KB)": round(c.avg_resident_kb, 1),
                "RSS saving %": round(saving, 1),
            }
        )
    return rows


# --------------------------------------------------------------------------
# Figure 5 — comparative execution times (mcc / mat2c / interpreter)
# --------------------------------------------------------------------------


def fig5_rows() -> list[dict]:
    rows = []
    for name in BENCHMARK_NAMES:
        record = collect(name)
        rows.append(
            {
                "benchmark": name,
                "mat2c (s)": f"{record.mat2c.report.execution_seconds:.4g}",
                "mcc (s)": f"{record.mcc.report.execution_seconds:.4g}",
                "intrp (s)": f"{record.interp.report.execution_seconds:.4g}",
                "speedup over mcc": round(record.speedup_vs_mcc, 1),
                "paper speedup": SUITE[name].paper_speedup,
            }
        )
    return rows


# --------------------------------------------------------------------------
# Figure 6 — effect of the GCTD pass on execution times
# --------------------------------------------------------------------------


def fig6_rows() -> list[dict]:
    rows = []
    for name in BENCHMARK_NAMES:
        record = collect(name)
        rows.append(
            {
                "benchmark": name,
                "with GCTD (s)": (
                    f"{record.mat2c.report.execution_seconds:.4g}"
                ),
                "without GCTD (s)": (
                    f"{record.mat2c_nogctd.report.execution_seconds:.4g}"
                ),
                "relative speedup": round(record.gctd_speedup, 2),
                "dynamic KB with": round(
                    record.mat2c.report.avg_dynamic_kb, 1
                ),
                "dynamic KB without": round(
                    record.mat2c_nogctd.report.avg_dynamic_kb, 1
                ),
            }
        )
    return rows


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------


def format_rows(title: str, rows: list[dict]) -> str:
    if not rows:
        return f"{title}\n(no data)\n"
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), *(len(str(r[h])) for r in rows))
        for h in headers
    }
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(widths[h]) for h in headers))
    for row in rows:
        lines.append(
            "  ".join(str(row[h]).ljust(widths[h]) for h in headers)
        )
    return "\n".join(lines) + "\n"


def run_all_experiments(records=None) -> str:
    """Regenerate every table and figure; returns the full report.

    ``records`` (name → BenchRecord) lets a batch driver inject
    already measured results, e.g. the bench command's cached sweep.
    """
    if records:
        install_records(records)
    sections = [
        format_rows("Table 1: Benchmark Suite Description", table1_rows()),
        format_rows(
            "Table 2: Array Storage Coalescing Reductions", table2_rows()
        ),
        format_rows(
            "Figure 2: Average Stack and Stack+Heap Levels", fig2_rows()
        ),
        format_rows("Figure 3: Average Virtual Memory Levels", fig3_rows()),
        format_rows("Figure 4: Average Resident Set Levels", fig4_rows()),
        format_rows("Figure 5: Comparative Execution Times", fig5_rows()),
        format_rows(
            "Figure 6: Effect of Coalescing on Execution Times", fig6_rows()
        ),
    ]
    return "\n".join(sections)
