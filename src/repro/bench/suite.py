"""The 11-program benchmark suite (paper Table 1).

Loads the M-files from ``examples/mfiles/``, compiles them through the
full pipeline, and runs them under the three execution models.  The
table metadata mirrors the paper's Table 1; line counts are measured
from the actual sources (nonempty, noncomment lines, as the paper
counts them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.compiler.pipeline import (
    CompilationResult,
    CompilerOptions,
    compile_program,
)
from repro.runtime.builtins import RuntimeContext

#: repo-root-relative location of the benchmark M-files
MFILES_ROOT = Path(__file__).resolve().parents[3] / "examples" / "mfiles"


@dataclass(frozen=True, slots=True)
class BenchmarkInfo:
    name: str
    synopsis: str
    origin: str
    three_dimensional: bool = False
    #: paper's Table 2 row: (static, dynamic) subsumed variable counts
    paper_reduction: tuple[int, int] = (0, 0)
    paper_storage_kb: float = 0.0
    #: paper's Figure 5 speedup of mat2c over mcc
    paper_speedup: float = 1.0


SUITE: dict[str, BenchmarkInfo] = {
    "adpt": BenchmarkInfo(
        "adpt",
        "Adaptive Quadrature by Simpson's Rule",
        "FALCON",
        paper_reduction=(127, 74),
        paper_storage_kb=0.96,
        paper_speedup=1.1,
    ),
    "capr": BenchmarkInfo(
        "capr",
        "Transmission Line Capacitance",
        "Chalmers University of Technology, Sweden",
        paper_reduction=(84, 75),
        paper_storage_kb=0.68,
        paper_speedup=2.1,
    ),
    "clos": BenchmarkInfo(
        "clos",
        "Transitive Closure",
        "OTTER",
        paper_reduction=(24, 0),
        paper_storage_kb=1216.14,
        paper_speedup=1.3,
    ),
    "crni": BenchmarkInfo(
        "crni",
        "Crank-Nicholson Heat Equation Solver",
        "FALCON",
        paper_reduction=(73, 0),
        paper_storage_kb=4055.85,
        paper_speedup=82.6,
    ),
    "diff": BenchmarkInfo(
        "diff",
        "Young's Two-Slit Diffraction Experiment",
        "The MathWorks Central File Exchange",
        paper_reduction=(48, 1),
        paper_storage_kb=12.77,
        paper_speedup=2.4,
    ),
    "dich": BenchmarkInfo(
        "dich",
        "Dirichlet Solution to Laplace's Equation",
        "FALCON",
        paper_reduction=(82, 0),
        paper_storage_kb=144.90,
        paper_speedup=257.9,
    ),
    "edit": BenchmarkInfo(
        "edit",
        "Edit Distance",
        "The MathWorks Central File Exchange",
        paper_reduction=(25, 21),
        paper_storage_kb=0.21,
        paper_speedup=6.2,
    ),
    "fdtd": BenchmarkInfo(
        "fdtd",
        "Finite Difference Time Domain (FDTD) Technique",
        "Chalmers University of Technology, Sweden",
        three_dimensional=True,
        paper_reduction=(111, 0),
        paper_storage_kb=4374.61,
        paper_speedup=2.5,
    ),
    "fiff": BenchmarkInfo(
        "fiff",
        "Finite-Difference Solution to the Wave Equation",
        "FALCON",
        paper_reduction=(51, 0),
        paper_storage_kb=12712.92,
        paper_speedup=91.1,
    ),
    "nb1d": BenchmarkInfo(
        "nb1d",
        "One-Dimensional N-Body Simulation",
        "OTTER",
        paper_reduction=(66, 63),
        paper_storage_kb=0.55,
        paper_speedup=11.4,
    ),
    "nb3d": BenchmarkInfo(
        "nb3d",
        "Three-Dimensional N-Body Simulation",
        "Modified nb1d",
        three_dimensional=True,
        paper_reduction=(58, 54),
        paper_storage_kb=0.59,
        paper_speedup=1.7,
    ),
}

BENCHMARK_NAMES = tuple(SUITE)


def load_sources(name: str) -> dict[str, str]:
    """Read a benchmark's M-files (driver first)."""
    directory = MFILES_ROOT / name
    if not directory.is_dir():
        raise FileNotFoundError(f"no benchmark directory {directory}")
    sources: dict[str, str] = {}
    driver = directory / f"{name}_drv.m"
    sources[driver.name] = driver.read_text()
    for path in sorted(directory.glob("*.m")):
        if path.name != driver.name:
            sources[path.name] = path.read_text()
    return sources


def count_lines(sources: dict[str, str]) -> int:
    """Nonempty, noncomment lines (the paper's Table 1 metric)."""
    total = 0
    for text in sources.values():
        for line in text.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                total += 1
    return total


def compile_benchmark(
    name: str, options: CompilerOptions | None = None
) -> CompilationResult:
    sources = load_sources(name)
    return compile_program(
        sources, entry=f"{name}_drv", options=options
    )


@dataclass(slots=True)
class BenchmarkRun:
    name: str
    compilation: CompilationResult
    mat2c: object = None
    mcc: object = None
    interp: object = None


def run_benchmark(
    name: str,
    models: tuple[str, ...] = ("mat2c", "mcc", "interp"),
    seed: int = 20030609,
    options: CompilerOptions | None = None,
) -> BenchmarkRun:
    """Compile and execute one benchmark under the selected models."""
    compilation = compile_benchmark(name, options)
    run = BenchmarkRun(name=name, compilation=compilation)
    if "mat2c" in models:
        run.mat2c = compilation.run_mat2c(RuntimeContext(seed=seed))
    if "mcc" in models:
        run.mcc = compilation.run_mcc(RuntimeContext(seed=seed))
    if "interp" in models:
        run.interp = compilation.run_interpreter(RuntimeContext(seed=seed))
    return run
