"""Benchmark suite loading and execution (paper Tables 1–2, Figs 2–6)."""

from repro.bench.suite import (
    BENCHMARK_NAMES,
    BenchmarkInfo,
    BenchmarkRun,
    MFILES_ROOT,
    SUITE,
    compile_benchmark,
    count_lines,
    load_sources,
    run_benchmark,
)

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkInfo",
    "BenchmarkRun",
    "MFILES_ROOT",
    "SUITE",
    "compile_benchmark",
    "count_lines",
    "load_sources",
    "run_benchmark",
]
